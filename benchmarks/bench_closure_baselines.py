"""Single-processor transitive closure baselines ([16] in the paper).

The per-fragment subqueries can use "any suitable single-processor algorithm"
(Sec. 2.1); this benchmark compares the implemented choices — naive,
semi-naive, smart (squaring), Warshall, and per-source Dijkstra — on a Table 1
sized transportation graph fragment, both for correctness (identical results)
and running time.
"""

from __future__ import annotations

import pytest

from repro.closure import (
    dijkstra_closure,
    naive_transitive_closure,
    seminaive_transitive_closure,
    smart_transitive_closure,
    warshall_closure,
)
from repro.fragmentation import GroundTruthFragmenter

from .conftest import print_report


@pytest.fixture(scope="module")
def fragment_graph(table1_network):
    """The first cluster of a Table 1 transportation graph (25 nodes)."""
    fragmentation = GroundTruthFragmenter(table1_network.clusters).fragment(table1_network.graph)
    return fragmentation.fragment_subgraph(0)


def test_closure_baselines_agree(fragment_graph):
    """All single-processor algorithms compute the same shortest-path closure."""
    semi = seminaive_transitive_closure(fragment_graph)
    warshall = warshall_closure(fragment_graph)
    dijkstra = dijkstra_closure(fragment_graph)
    # The iterative closures also derive (i, i) facts on symmetric graphs;
    # per-source Dijkstra reports proper pairs only, so compare on those.
    semi_pairs = {pair for pair in semi.values if pair[0] != pair[1]}
    warshall_pairs = {pair for pair in warshall.values if pair[0] != pair[1]}
    assert semi_pairs == warshall_pairs == set(dijkstra.values)
    for pair, value in dijkstra.values.items():
        assert semi.values[pair] == pytest.approx(value)
        assert warshall.values[pair] == pytest.approx(value)
    print_report(
        "Single-processor closure baselines",
        f"fragment: {fragment_graph.node_count()} nodes, {fragment_graph.edge_count()} edges\n"
        f"semi-naive iterations: {semi.statistics.iterations}, "
        f"tuples produced: {semi.statistics.tuples_produced}\n"
        f"warshall relaxations:  {warshall.statistics.tuples_produced}",
    )


@pytest.mark.benchmark(group="closure-baselines")
def test_seminaive_benchmark(benchmark, fragment_graph):
    benchmark(seminaive_transitive_closure, fragment_graph)


@pytest.mark.benchmark(group="closure-baselines")
def test_naive_benchmark(benchmark, fragment_graph):
    benchmark(naive_transitive_closure, fragment_graph)


@pytest.mark.benchmark(group="closure-baselines")
def test_smart_benchmark(benchmark, fragment_graph):
    benchmark(smart_transitive_closure, fragment_graph)


@pytest.mark.benchmark(group="closure-baselines")
def test_warshall_benchmark(benchmark, fragment_graph):
    benchmark(warshall_closure, fragment_graph)


@pytest.mark.benchmark(group="closure-baselines")
def test_dijkstra_closure_benchmark(benchmark, fragment_graph):
    benchmark(dijkstra_closure, fragment_graph)
