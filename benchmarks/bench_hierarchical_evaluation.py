"""Sec. 5 extension: Parallel Hierarchical Evaluation.

When the fragmentation graph is complex, enumerating fragment chains gets
expensive; the high-speed-network plan always uses three fragments.  This
benchmark compares planning/evaluation of the plain engine with the
hierarchical engine on a many-cluster network, and validates both against the
centralised answer.
"""

from __future__ import annotations

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import DisconnectionSetEngine, HierarchicalEngine
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)

from .conftest import print_report


@pytest.fixture(scope="module")
def many_cluster_network():
    config = TransportationGraphConfig(
        cluster_count=6,
        nodes_per_cluster=12,
        cluster_c1=280.0,
        cluster_c2=0.03,
        inter_cluster_edges=2,
        topology="cycle",
    )
    return generate_transportation_graph(config, seed=23)


@pytest.fixture(scope="module")
def engines(many_cluster_network):
    fragmentation = GroundTruthFragmenter(many_cluster_network.clusters).fragment(
        many_cluster_network.graph
    )
    return (
        DisconnectionSetEngine(fragmentation),
        HierarchicalEngine(fragmentation),
    )


def test_hierarchical_correctness_report(many_cluster_network, engines):
    """Both engines return the centralised answer; the hierarchical plan uses 3 fragments."""
    plain, hierarchical = engines
    graph = many_cluster_network.graph
    queries = cross_cluster_queries(
        many_cluster_network.clusters, 6, seed=2, minimum_cluster_distance=2
    )
    plain_fragments = []
    hierarchical_fragments = []
    for query in queries:
        reference = shortest_path_cost(graph, query.source, query.target)
        plain_answer = plain.query(query.source, query.target)
        hierarchical_answer = hierarchical.query(query.source, query.target)
        assert plain_answer.value == pytest.approx(reference)
        assert hierarchical_answer.value == pytest.approx(reference)
        plain_fragments.append(len(plain_answer.report.site_work))
        hierarchical_fragments.append(len(hierarchical_answer.report.site_work))
    backbone = hierarchical.backbone_statistics()
    body = (
        f"queries: {len(queries)} (non-adjacent cluster pairs, cyclic fragmentation graph)\n"
        f"fragments touched per query (plain engine):        {plain_fragments}\n"
        f"fragments touched per query (hierarchical engine): {hierarchical_fragments}\n"
        f"backbone fragment: {backbone.node_count} nodes, {backbone.edge_count} edges"
    )
    print_report("Parallel hierarchical evaluation (Sec. 5 extension)", body)
    assert max(hierarchical_fragments) <= 3


@pytest.mark.benchmark(group="hierarchical")
def test_plain_engine_benchmark(benchmark, many_cluster_network, engines):
    plain, _ = engines
    queries = cross_cluster_queries(
        many_cluster_network.clusters, 4, seed=5, minimum_cluster_distance=2
    )
    benchmark(lambda: [plain.query(q.source, q.target) for q in queries])


@pytest.mark.benchmark(group="hierarchical")
def test_hierarchical_engine_benchmark(benchmark, many_cluster_network, engines):
    _, hierarchical = engines
    queries = cross_cluster_queries(
        many_cluster_network.clusters, 4, seed=5, minimum_cluster_distance=2
    )
    benchmark(lambda: [hierarchical.query(q.source, q.target) for q in queries])
