"""Observability overhead: telemetry must not tax the hot path it watches.

The telemetry subsystem instruments every stage of the serving hot path —
root spans per call, child spans for cache lookup / planning / evaluation,
registry counters and latency histograms, a bounded structured query log.
This benchmark prices that instrumentation and asserts the bill stays small:

* **instrumented** — tracing on, query log on (the service default),
* **uninstrumented** — tracing and query log toggled off live (the registry
  remains in both — it *is* the statistics).

Both modes run on ONE service instance, toggled between rounds: two
separately constructed services differ by more than the instrumentation
costs (allocation layout, CPU frequency drift across their build times), so
an A-instance/B-instance comparison measures the machine, not the spans.
Rounds are finely interleaved off/on with alternating order, each of several
independent blocks compares the per-mode MEDIANS, and the lowest block ratio
decides: interleaving makes clock drift common-mode, the median rejects
scheduler spikes, and best-of-blocks discards the windows a drift episode
contaminated — all of which, on a millisecond-scale loop, dwarf the
microseconds a span costs.

The asserted hot path is the **batched round** — an evaluated
``query_batch`` (cache cleared first) plus a cached one — the serving fast
path this repository's batch planner, placement routing and result cache
exist for; its instrumented minimum must stay within 5% of the
uninstrumented one.  Single-query streams are measured and reported too
(separately for the evaluated and the cached path), without a gate: a
cache hit answers in a few tens of microseconds, so even two span
allocations are a double-digit *relative* cost there while the *absolute*
cost stays below ~5µs — the report keeps that honest instead of hiding
the cached path inside a blended number.

A second gated section prices the request-lifecycle observability stack
end to end: every round wrapped in a context-adopting request root span
(the distributed-trace propagation the network server performs per
request) **with the continuous sampling profiler actively sampling** the
serving thread, against the bare hot path with the profiler paused.  That
full bill must also stay within the 5% budget, and the run asserts the
profiler actually took samples while it was being priced.

The run also asserts that instrumentation changes no answer and that it
actually recorded what it priced (traces finished, query log filled,
Prometheus output parseable).

Figures are written to ``BENCH_observability.json``.  Run
``python benchmarks/bench_observability_overhead.py`` directly (``--tiny``
for the CI smoke configuration), or through pytest
(``pytest benchmarks/bench_observability_overhead.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.fragmentation import CenterBasedFragmenter
from repro.observability import SamplingProfiler
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.service import QueryService

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_observability_overhead.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_OBSERVABILITY_OUT", "BENCH_observability.json")
OVERHEAD_BUDGET = 1.05  # the instrumented batched round may cost at most 5% extra


def build_workload(*, tiny: bool = False):
    """Return (graph, fragmentation, queries) for the sample transportation net."""
    # The tiny clusters are deliberately not minimal: the overhead ratio's
    # denominator must contain real kernel work, or the few microseconds a
    # span costs get divided by almost nothing and the gate measures the
    # graph generator's choices instead of the instrumentation's bill.
    config = TransportationGraphConfig(
        cluster_count=3 if tiny else 4,
        nodes_per_cluster=14 if tiny else 16,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=23)
    fragmentation = CenterBasedFragmenter(
        config.cluster_count, center_selection="distributed"
    ).fragment(network.graph)
    queries = cross_cluster_queries(
        network.clusters, 8 if tiny else 16, seed=5, minimum_cluster_distance=1
    )
    return network.graph, fragmentation, [(q.source, q.target) for q in queries]


def _set_instrumented(service, on: bool) -> None:
    if on:
        service.tracer.enable()
        service.query_log.enable()
    else:
        service.tracer.disable()
        service.query_log.disable()


def _batched_round(service, queries):
    """The asserted hot path: an evaluated batch plus a cached batch."""
    service.cache.clear()
    started = time.perf_counter()
    first = service.query_batch(queries)
    second = service.query_batch(queries)
    elapsed = time.perf_counter() - started
    return [a.value for a in first] + [a.value for a in second], elapsed


def _single_evaluated_round(service, queries):
    """Single queries against a cold cache (every one evaluates)."""
    service.cache.clear()
    started = time.perf_counter()
    answers = [service.query(s, t).value for s, t in queries]
    return answers, time.perf_counter() - started


def _single_cached_round(service, queries):
    """Single queries against a warm cache (every one hits)."""
    started = time.perf_counter()
    answers = [service.query(s, t).value for s, t in queries]
    return answers, time.perf_counter() - started


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


BLOCKS = 3  # independent measurement windows; the least-noisy one decides


def _compare(service, round_fn, queries, rounds, reference):
    """Price ``round_fn`` instrumented vs bare on one service, robustly.

    A shared machine's clock drifts on second timescales (frequency scaling,
    noisy neighbours) by more than the few percent being measured.  Three
    defences stack here:

    * within each iteration the two modes run back to back (sharing the
      moment's CPU state) with their order alternating (so "measured
      second" bias cancels);
    * within each block the per-mode MEDIANS are compared — interleaving
      makes drift common-mode and the median rejects scheduler spikes;
    * ``BLOCKS`` independent blocks are measured and the LOWEST block ratio
      is the verdict: drift episodes contaminate a block's ratio upward,
      so the least-contaminated window is the best estimate — the classic
      fastest-of-N-runs argument, applied per block.
    """
    bare_times = []
    instrumented_times = []
    block_ratios = []
    for _ in range(BLOCKS):
        block_bare = []
        block_instrumented = []
        for iteration in range(rounds):
            modes = (False, True) if iteration % 2 == 0 else (True, False)
            for on in modes:
                _set_instrumented(service, on)
                answers, seconds = round_fn(service, queries)
                (block_instrumented if on else block_bare).append(seconds)
                assert answers == reference, (
                    "instrumentation must not change any answer"
                )
        block_ratios.append(_median(block_instrumented) / _median(block_bare))
        bare_times.extend(block_bare)
        instrumented_times.extend(block_instrumented)
    return {
        "bare_seconds": bare_times,
        "instrumented_seconds": instrumented_times,
        "bare_min": min(bare_times),
        "instrumented_min": min(instrumented_times),
        "bare_median": _median(bare_times),
        "instrumented_median": _median(instrumented_times),
        "min_ratio": round(min(instrumented_times) / min(bare_times), 4),
        "block_ratios": [round(ratio, 4) for ratio in block_ratios],
        "overhead_ratio": round(min(block_ratios), 4),
    }


def _propagated_round(service, queries):
    """The batched round under a full request trace context (the serving shape).

    This is what one network request costs the service: a root span adopting
    a freshly minted :class:`TraceContext` (the propagation machinery the
    server runs per request), with the batch's own spans nesting under it.
    """
    tracer = service.tracer
    service.cache.clear()
    started = time.perf_counter()
    with tracer.request_span("request", context=tracer.new_context()):
        first = service.query_batch(queries)
        second = service.query_batch(queries)
    elapsed = time.perf_counter() - started
    return [a.value for a in first] + [a.value for a in second], elapsed


def _compare_propagation(service, profiler, queries, rounds, reference):
    """Price trace propagation plus live profiler sampling, robustly.

    The on mode is the serving tier's full observability bill: tracing and
    query log enabled, every round wrapped in a context-adopting request
    span, and the sampling profiler actively sampling the serving thread.
    The off mode is the bare hot path with the profiler *paused* — same
    thread, same sampler thread parked on its event, so the comparison
    prices exactly what enabling observability costs, not thread churn.
    The same interleaving/median/best-of-blocks defences as :func:`_compare`
    apply.
    """
    bare_times = []
    on_times = []
    block_ratios = []
    for _ in range(BLOCKS):
        block_bare = []
        block_on = []
        for iteration in range(rounds):
            modes = (False, True) if iteration % 2 == 0 else (True, False)
            for on in modes:
                _set_instrumented(service, on)
                if on:
                    profiler.resume()
                    answers, seconds = _propagated_round(service, queries)
                    profiler.pause()
                    block_on.append(seconds)
                else:
                    answers, seconds = _batched_round(service, queries)
                    block_bare.append(seconds)
                assert answers == reference, (
                    "propagation must not change any answer"
                )
        block_ratios.append(_median(block_on) / _median(block_bare))
        bare_times.extend(block_bare)
        on_times.extend(block_on)
    return {
        "bare_seconds": bare_times,
        "instrumented_seconds": on_times,
        "bare_min": min(bare_times),
        "instrumented_min": min(on_times),
        "bare_median": _median(bare_times),
        "instrumented_median": _median(on_times),
        "min_ratio": round(min(on_times) / min(bare_times), 4),
        "block_ratios": [round(ratio, 4) for ratio in block_ratios],
        "overhead_ratio": round(min(block_ratios), 4),
    }


def bench_propagation(service, queries, rounds, *, profiler_interval=0.002):
    """Price the tentpole: context propagation + continuous profiling on."""
    profiler = SamplingProfiler(profiler_interval, tracer=service.tracer)
    profiler.start()  # samples the calling thread — where the rounds run
    profiler.pause()  # the comparison gates sampling per mode
    try:
        _set_instrumented(service, False)
        reference, _ = _batched_round(service, queries)
        figures = _compare_propagation(service, profiler, queries, rounds, reference)
    finally:
        profiler.stop()
    figures["profiler_interval_seconds"] = profiler_interval
    figures["profiler_samples"] = profiler.samples
    figures["profiler_backend_shares"] = profiler.backend_shares()
    return figures


def bench_overhead(fragmentation, queries, rounds):
    """Price the batched hot path (asserted) and the single-query paths."""
    service = QueryService(fragmentation)
    # A constructor-disabled service for the "telemetry truly off" receipts.
    bare = QueryService(fragmentation, tracing=False, query_log_size=0)

    # Warm both (first-touch compact caches, interned structures) and pin the
    # reference answers the instrumented service must keep returning.
    batch_reference, _ = _batched_round(bare, queries)
    answers, _ = _batched_round(service, queries)
    assert answers == batch_reference, "instrumentation must not change any answer"
    single_reference, _ = _single_evaluated_round(service, queries)

    batch = _compare(service, _batched_round, queries, rounds, batch_reference)
    single_evaluated = _compare(
        service, _single_evaluated_round, queries, rounds, single_reference
    )
    # Warm the cache once, then every round is pure hits.
    _single_evaluated_round(service, queries)
    single_cached = _compare(
        service, _single_cached_round, queries, rounds, single_reference
    )

    return service, bare, {
        "rounds": rounds,
        "queries_per_round": 2 * len(queries),
        "budget_ratio": OVERHEAD_BUDGET,
        "batched": batch,
        "single_evaluated": single_evaluated,
        "single_cached": single_cached,
    }


def telemetry_receipts(instrumented, bare):
    """Prove the priced instrumentation actually recorded the workload."""
    tracer = instrumented.tracer
    query_log = instrumented.query_log
    trace = tracer.recent(1)[0]
    prometheus = instrumented.metrics("prometheus")
    samples = [
        line for line in prometheus.splitlines() if line and not line.startswith("#")
    ]
    for sample in samples:  # every sample line must split into name+labels / value
        name, _, value = sample.rpartition(" ")
        assert name, f"unparseable exposition line: {sample!r}"
        float(value)
    quantiles = instrumented.stats.latency_quantiles()
    return {
        "traces_finished": tracer.traces_finished,
        "last_trace_spans": trace.span_names(),
        "query_log_recorded": query_log.recorded,
        "query_log_retained": len(query_log),
        "bare_traces_finished": bare.tracer.traces_finished,
        "bare_query_log_recorded": bare.query_log.recorded,
        "prometheus_samples": len(samples),
        "evaluated_latency_quantiles": quantiles,
    }


def run_overhead_comparison(*, tiny: bool = False, output: str = OUTPUT_FILE):
    graph, fragmentation, queries = build_workload(tiny=tiny)
    rounds = 14 if tiny else 16  # iterations per block (x BLOCKS blocks)

    instrumented, bare, overhead = bench_overhead(fragmentation, queries, rounds)
    overhead["propagation"] = bench_propagation(instrumented, queries, rounds)
    receipts = telemetry_receipts(instrumented, bare)

    assert overhead["batched"]["overhead_ratio"] <= OVERHEAD_BUDGET, (
        f"instrumented batched hot path is "
        f"{overhead['batched']['overhead_ratio']}x the bare one, over the "
        f"{OVERHEAD_BUDGET}x budget"
    )
    assert overhead["propagation"]["overhead_ratio"] <= OVERHEAD_BUDGET, (
        f"trace propagation + live profiling costs "
        f"{overhead['propagation']['overhead_ratio']}x the bare hot path, "
        f"over the {OVERHEAD_BUDGET}x budget"
    )
    assert overhead["propagation"]["profiler_samples"] > 0, (
        "the profiler was on during the propagation rounds but took no samples"
    )
    # The cached single-query path cannot meet a relative budget (its base is
    # tens of microseconds) — bound its absolute bill instead.
    cached = overhead["single_cached"]
    per_query_cost = (
        cached["instrumented_median"] - cached["bare_median"]
    ) / len(queries)
    assert per_query_cost < 20e-6, (
        f"telemetry costs {per_query_cost * 1e6:.1f}µs per cached query, "
        "expected well under 20µs"
    )
    assert receipts["traces_finished"] > 0, "tracing was on but produced no traces"
    assert receipts["query_log_recorded"] > 0, "query log was on but recorded nothing"
    assert receipts["bare_traces_finished"] == 0, "tracing=False must produce no traces"
    assert receipts["bare_query_log_recorded"] == 0, "query_log_size=0 must record nothing"
    assert receipts["prometheus_samples"] > 0

    report = {
        "benchmark": "observability_overhead",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "fragments": fragmentation.fragment_count(),
            "queries": len(queries),
        },
        "overhead": overhead,
        "cached_query_cost_seconds": per_query_cost,
        "telemetry": receipts,
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{fragmentation.fragment_count()} fragments, "
        f"{len(queries)} distinct queries x {BLOCKS} blocks of {rounds} "
        "interleaved round pairs per path",
        "",
        f"{'hot path':<26} {'bare med':>10} {'instrumented':>13} {'ratio':>8}",
        *(
            f"{label:<26} {overhead[key]['bare_median']:>10.6f} "
            f"{overhead[key]['instrumented_median']:>13.6f} "
            f"{overhead[key]['overhead_ratio']:>8.4f}"
            for label, key in (
                ("batched (asserted)", "batched"),
                ("propagation+profiler", "propagation"),
                ("single, evaluated", "single_evaluated"),
                ("single, cached", "single_cached"),
            )
        ),
        f"batched and propagation budgets {OVERHEAD_BUDGET}x; cached single "
        f"queries pay {per_query_cost * 1e6:.1f}µs each (absolute bound "
        "20µs); identical answers throughout",
        "",
        f"receipts: {receipts['traces_finished']} traces, "
        f"{receipts['query_log_recorded']} query-log entries, "
        f"{receipts['prometheus_samples']} Prometheus samples, "
        f"{overhead['propagation']['profiler_samples']} profiler samples; "
        f"last trace spans {receipts['last_trace_spans']}",
        "",
        f"figures written to {output}",
    ]
    print_report("Observability overhead: instrumented vs bare hot path", "\n".join(lines))
    return report


def test_observability_overhead_report():
    """The telemetry bill stays within budget and the receipts exist."""
    report = run_overhead_comparison(tiny=True)
    assert report["overhead"]["batched"]["overhead_ratio"] <= OVERHEAD_BUDGET
    assert report["overhead"]["propagation"]["overhead_ratio"] <= OVERHEAD_BUDGET
    assert report["overhead"]["propagation"]["profiler_samples"] > 0
    assert report["telemetry"]["traces_finished"] > 0
    assert report["telemetry"]["query_log_recorded"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: small graph, few rounds",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_overhead_comparison(tiny=arguments.tiny, output=arguments.output)
