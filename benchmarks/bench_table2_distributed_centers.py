"""Table 2: plain vs distributed center selection on large transportation graphs.

Paper workload: 4 clusters x 150 nodes (~3167 edges).  Reproduction target:
selecting centers with the coordinate-spreading refinement collapses both the
fragment-size deviation AF (paper: 636.3 -> 12.4) and the disconnection-set
size DS (paper: 69.5 -> 4.3).
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TABLE2, format_table, run_table2

from .conftest import print_report


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2(trials=1, seed=42)


def test_table2_report(table2_rows):
    """Print the regenerated Table 2 next to the paper's reference values."""
    measured = format_table(table2_rows.as_rows(), ["algorithm", "F", "DS", "AF", "ADS"])
    reference = format_table(
        [{"algorithm": name, **values} for name, values in PAPER_TABLE2.items()],
        ["algorithm", "F", "DS", "AF", "ADS"],
    )
    print_report(
        "Table 2 - distributed centers (4 clusters x 150 nodes)",
        f"measured:\n{measured}\n\npaper:\n{reference}",
    )
    plain = table2_rows.row("center-based").average
    distributed = table2_rows.row("center-based-distributed").average
    assert distributed["AF"] < plain["AF"]
    assert distributed["DS"] < plain["DS"]


@pytest.mark.benchmark(group="table2")
def test_table2_distributed_centers_benchmark(benchmark, table2_network):
    """Time the distributed-centers fragmentation of the full-size graph."""
    from repro.fragmentation import CenterBasedFragmenter

    fragmenter = CenterBasedFragmenter(4, center_selection="distributed")
    fragmentation = benchmark(fragmenter.fragment, table2_network.graph)
    assert fragmentation.fragment_count() == 4


@pytest.mark.benchmark(group="table2")
def test_table2_random_centers_benchmark(benchmark, table2_network):
    """Time the plain (random-centers) fragmentation of the full-size graph."""
    from repro.fragmentation import CenterBasedFragmenter

    fragmenter = CenterBasedFragmenter(4, center_selection="random", seed=42)
    fragmentation = benchmark(fragmenter.fragment, table2_network.graph)
    assert fragmentation.fragment_count() == 4
