"""Figure 3 / Sec. 4.1: the transportation-graph generator and its calibration.

Fig. 3 defines the evaluation workload: clusters with dense internal
connectivity, loosely interconnected.  The paper reports the generated
instances through their aggregate statistics (429 edges and 2.25 inter-cluster
edges for Table 1's 4x25 graphs; 3167 edges for Table 2's 4x150 graphs); this
benchmark regenerates those statistics over several seeds and times the
generator itself.
"""

from __future__ import annotations

import pytest

from repro.generators import (
    generate_transportation_graph,
    paper_table1_config,
    paper_table2_config,
)
from repro.graph import clustering_ratio, mean

from .conftest import print_report

SEEDS = range(5)


def test_fig3_calibration_report():
    """Print generator statistics next to the paper's reported workload numbers."""
    table1_edges = []
    table1_inter = []
    table1_ratio = []
    for seed in SEEDS:
        network = generate_transportation_graph(paper_table1_config(), seed=seed)
        table1_edges.append(float(network.graph.undirected_edge_count()))
        table1_inter.append(float(len(network.inter_cluster_pairs)) / 3.0)  # per adjacent pair
        table1_ratio.append(clustering_ratio(network.graph, network.clusters))
    body = (
        f"Table 1 workload (4 clusters x 25 nodes), {len(list(SEEDS))} seeds:\n"
        f"  average undirected edges: {mean(table1_edges):.1f}   (paper: 429)\n"
        f"  average inter-cluster edges per adjacent pair: {mean(table1_inter):.2f}   (paper: 2.25)\n"
        f"  intra-cluster edge ratio: {mean(table1_ratio):.3f}   (paper: 'loosely interconnected clusters')"
    )
    print_report("Fig. 3 - transportation graph generator calibration", body)
    assert 330 <= mean(table1_edges) <= 530
    assert mean(table1_ratio) > 0.9


def test_fig3_table2_calibration_report():
    """Same calibration check for the Table 2 workload (4 clusters x 150 nodes)."""
    edges = []
    for seed in range(2):
        network = generate_transportation_graph(paper_table2_config(), seed=seed)
        edges.append(float(network.graph.undirected_edge_count()))
    print_report(
        "Fig. 3 - Table 2 workload calibration",
        f"average undirected edges: {mean(edges):.1f}   (paper: 3167)",
    )
    assert 2500 <= mean(edges) <= 3900


@pytest.mark.benchmark(group="fig3")
def test_fig3_generator_benchmark_small(benchmark):
    """Time the generation of one Table 1 sized transportation graph."""
    network = benchmark(generate_transportation_graph, paper_table1_config(), seed=0)
    assert network.graph.node_count() == 100


@pytest.mark.benchmark(group="fig3")
def test_fig3_generator_benchmark_large(benchmark):
    """Time the generation of one Table 2 sized transportation graph."""
    network = benchmark(generate_transportation_graph, paper_table2_config(), seed=0)
    assert network.graph.node_count() == 600
