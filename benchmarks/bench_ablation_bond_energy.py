"""Ablation: bond-energy design choices (restarts and split policy).

The paper leaves two knobs to the implementer: how many starting columns the
BEA ordering tries (it prescribes all of them, which is expensive) and the
local split condition (threshold vs local minimum).  This ablation measures
the effect of both on the disconnection-set size and on running time.
"""

from __future__ import annotations

import pytest

from repro.fragmentation import BondEnergyFragmenter, characterize

from .conftest import print_report


@pytest.fixture(scope="module")
def graph(table1_network):
    return table1_network.graph


def test_ablation_restarts_report(graph):
    """More BEA restarts never hurt the ordering quality (DS stays small)."""
    lines = ["restarts  DS     AF"]
    results = {}
    for restarts in (1, 2, 4, 8):
        fragmentation = BondEnergyFragmenter(4, restarts=restarts).fragment(graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        results[restarts] = characteristics.average_disconnection_set_size
        lines.append(
            f"{restarts:^8}  {characteristics.average_disconnection_set_size:5.1f}  "
            f"{characteristics.fragment_size_deviation:5.1f}"
        )
    print_report("Ablation - BEA ordering restarts", "\n".join(lines))
    assert min(results.values()) <= results[1] + 1e-9


def test_ablation_split_policy_report(graph):
    """Compare the threshold and local-minimum split policies."""
    lines = ["policy          DS     fragments"]
    for policy in ("threshold", "local_minimum"):
        fragmentation = BondEnergyFragmenter(4, split_policy=policy).fragment(graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        lines.append(
            f"{policy:<14}  {characteristics.average_disconnection_set_size:5.1f}  "
            f"{characteristics.fragment_count:^9}"
        )
        fragmentation.validate()
    print_report("Ablation - bond-energy split policy", "\n".join(lines))


@pytest.mark.benchmark(group="ablation-bond-energy")
@pytest.mark.parametrize("restarts", [1, 4])
def test_bond_energy_restarts_benchmark(benchmark, graph, restarts):
    """Time the bond-energy fragmentation at different restart counts."""
    fragmenter = BondEnergyFragmenter(4, restarts=restarts)
    fragmentation = benchmark(fragmenter.fragment, graph)
    assert fragmentation.fragment_count() <= 4
