"""Ablation: update maintenance cost and full route reconstruction.

Two operational aspects the paper flags but does not quantify:

* "the careful treatment of updates" — measured here as the complementary
  information refresh work triggered by edge insertions/deletions on a
  deployed fragmentation, compared with the cost of answering queries
  (the amortisation argument of Sec. 2.1);
* answering the *route* (not only the cost) of a shortest-path query, which
  needs the complementary information to be stored with paths.
"""

from __future__ import annotations

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import (
    FragmentedDatabase,
    RouteReconstructingEngine,
    precompute_complementary_information,
)
from repro.fragmentation import GroundTruthFragmenter
from repro.generators import cross_cluster_queries

from .conftest import print_report


@pytest.fixture(scope="module")
def deployed(table1_network):
    fragmentation = GroundTruthFragmenter(table1_network.clusters).fragment(table1_network.graph)
    return table1_network, fragmentation


def test_update_cost_report(deployed):
    """Print the maintenance work triggered by a small update batch."""
    network, fragmentation = deployed
    database = FragmentedDatabase(fragmentation)
    database.engine()  # initial deployment
    nodes = sorted(network.clusters[0])
    # A batch of updates local to one cluster.
    database.insert_edge(nodes[0], nodes[5], 3.0, symmetric=True)
    database.insert_edge(nodes[1], "new-station", 2.0, symmetric=True)
    database.update_edge_weight(nodes[0], nodes[5], 4.0)
    database.delete_edge(nodes[0], nodes[5], symmetric=True)
    engine = database.engine()  # triggers the lazy refresh
    query = cross_cluster_queries(network.clusters, 1, seed=3, minimum_cluster_distance=3)[0]
    answer = engine.shortest_path_cost(query.source, query.target)
    stats = database.statistics.as_dict()
    body = "\n".join(f"{key}: {value}" for key, value in stats.items())
    print_report("Update maintenance cost (Sec. 2.1 amortisation argument)", body)
    assert stats["engine_rebuilds"] == 2
    assert answer == pytest.approx(shortest_path_cost(database.graph, query.source, query.target))


def test_route_reconstruction_report(deployed):
    """Routes reconstructed distributedly match the centralised optimum."""
    network, fragmentation = deployed
    engine = RouteReconstructingEngine(fragmentation)
    queries = cross_cluster_queries(network.clusters, 5, seed=7, minimum_cluster_distance=3)
    lines = []
    for query in queries:
        answer = engine.shortest_path(query.source, query.target)
        reference = shortest_path_cost(network.graph, query.source, query.target)
        assert answer.cost == pytest.approx(reference)
        walk_cost = sum(
            network.graph.edge_weight(a, b) for a, b in zip(answer.route, answer.route[1:])
        )
        assert walk_cost == pytest.approx(answer.cost)
        lines.append(
            f"{query.source} -> {query.target}: cost {answer.cost:.1f}, {answer.hops()} hops, "
            f"chain {list(answer.chain)}"
        )
    print_report("Route reconstruction across fragments", "\n".join(lines))


@pytest.mark.benchmark(group="updates")
def test_refresh_after_update_benchmark(benchmark, deployed):
    """Time one insert + engine refresh cycle."""
    network, fragmentation = deployed

    def insert_and_refresh():
        database = FragmentedDatabase(fragmentation)
        database.insert_edge(0, 1, 2.0)
        database.engine()
        return database

    database = benchmark(insert_and_refresh)
    assert database.statistics.edges_inserted == 1


@pytest.mark.benchmark(group="updates")
def test_complementary_with_paths_benchmark(benchmark, deployed):
    """Time the path-storing complementary precomputation (route support)."""
    _, fragmentation = deployed
    info = benchmark(precompute_complementary_information, fragmentation, store_paths=True)
    assert info.paths


@pytest.mark.benchmark(group="updates")
def test_route_query_benchmark(benchmark, deployed):
    """Time one cross-network route reconstruction."""
    network, fragmentation = deployed
    engine = RouteReconstructingEngine(fragmentation)
    query = cross_cluster_queries(network.clusters, 1, seed=11, minimum_cluster_distance=3)[0]
    answer = benchmark(engine.shortest_path, query.source, query.target)
    assert answer.route
