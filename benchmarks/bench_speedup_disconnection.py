"""Sec. 1 / Sec. 2.1 claim: "for good fragmentations, it gives a linear speed-up".

This benchmark regenerates the speed-up series: the same cross-cluster query
workload is simulated under fragmentations of increasing fragment count and
the parallel/sequential cost ratio is reported, together with the comparison
against the centralised full-closure baseline.
"""

from __future__ import annotations

import pytest

from repro.fragmentation import CenterBasedFragmenter, GroundTruthFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.parallel import ParallelSimulator, speedup_curve

from .conftest import print_report


def _network(cluster_count: int):
    config = TransportationGraphConfig(
        cluster_count=cluster_count,
        nodes_per_cluster=20,
        cluster_c1=520.0,
        cluster_c2=0.03,
        inter_cluster_edges=2,
    )
    return generate_transportation_graph(config, seed=17)


@pytest.fixture(scope="module")
def speedup_series():
    """Speed-up at 2, 4 and 6 fragments over end-to-end query workloads."""
    points = []
    for cluster_count in (2, 4, 6):
        network = _network(cluster_count)
        queries = cross_cluster_queries(
            network.clusters, 6, seed=3, minimum_cluster_distance=cluster_count - 1
        )
        curve = speedup_curve(
            network.graph,
            lambda count: CenterBasedFragmenter(count, center_selection="distributed"),
            fragment_counts=[cluster_count],
            queries=queries,
        )
        points.append(curve[0])
    return points


def test_speedup_series_report(speedup_series):
    """Print the speed-up series (the paper's linear speed-up claim)."""
    lines = ["fragments  speedup  iteration_reduction"]
    for point in speedup_series:
        lines.append(
            f"{point.fragment_count:^9}  {point.speedup:6.2f}  {point.iteration_reduction():8.2f}"
        )
    print_report("Speed-up vs number of fragments (disconnection set approach)", "\n".join(lines))
    speedups = [point.speedup for point in speedup_series]
    # Speed-up grows with the number of fragments and stays within the
    # linear-speed-up envelope (<= fragment count).
    assert speedups == sorted(speedups)
    for point in speedup_series:
        assert 1.0 <= point.speedup <= point.fragment_count + 0.5


def test_speedup_vs_centralized_report():
    """Compare the per-query disconnection-set cost with a full centralised closure."""
    network = _network(4)
    fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
    simulator = ParallelSimulator(fragmentation)
    queries = cross_cluster_queries(network.clusters, 5, seed=9, minimum_cluster_distance=3)
    result = simulator.simulate_workload(queries, include_centralized_baseline=True)
    body = (
        f"parallel time (simulated): {result.total_parallel_time:10.0f}\n"
        f"sequential same-plan time: {result.total_sequential_time:10.0f}\n"
        f"centralised full closure:  {result.centralized_time:10.0f}\n"
        f"speed-up vs sequential:    {result.overall_speedup():10.2f}\n"
        f"speed-up vs centralised:   {result.speedup_vs_centralized():10.2f}"
    )
    print_report("Disconnection set approach vs centralised evaluation", body)
    assert result.overall_speedup() > 1.0
    assert result.speedup_vs_centralized() > 1.0


@pytest.mark.benchmark(group="speedup")
def test_speedup_simulation_benchmark(benchmark):
    """Time the simulation of a 6-query end-to-end workload on 4 fragments."""
    network = _network(4)
    fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
    simulator = ParallelSimulator(fragmentation)
    queries = cross_cluster_queries(network.clusters, 6, seed=3, minimum_cluster_distance=3)
    result = benchmark(simulator.simulate_workload, queries)
    assert result.overall_speedup() >= 1.0
