"""Serving latency under preemption: point-query p99 in a mixed workload.

The network serving tier exists for exactly one promise: a whole-graph
transitive closure must not starve the point queries sharing the server.
This benchmark prices that promise on a real ``ClosureServer`` (asyncio TCP,
newline-delimited JSON, loopback) over ONE prepared ``QueryService``, in
three phases:

* **light_only** — a client issues point queries alone: the p99 baseline;
* **mixed_preemptive** — the same point-query stream while a second client
  continuously evaluates whole-graph ``closure *`` calls through the
  preemption machinery (bounded quanta, continuation tokens, resume);
* **mixed_blocking** — the same mixed workload against a server with
  ``preemption=False``: every closure call runs to completion in a single
  event-loop turn, which is what a naive server does.

Asserted:

* with preemption ON, the mixed-workload point-query p99 stays within a
  bounded multiple of the light-only baseline (the bound allows one quantum
  of head-of-line wait — that is the preemption contract, not a regression);
* with preemption OFF, the p99 demonstrably degrades (a bounded multiple of
  the preemptive p99, in the wrong direction) — the machinery is load-bearing,
  not decorative;
* the suspended/resumed whole-graph closure streamed during the preemptive
  phase returns rows **identical** to an uninterrupted in-process run —
  preemption is invisible in the answers.

Figures are written to ``BENCH_serving.json``.  Run
``python benchmarks/bench_serving_latency.py`` directly (``--tiny`` for the
CI smoke configuration), or through pytest
(``pytest benchmarks/bench_serving_latency.py -s``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from pathlib import Path

from repro.fragmentation import CenterBasedFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.graph.compact import CompactGraph
from repro.service import QueryService
from repro.serving import (
    ALL_SOURCES,
    AdmissionConfig,
    ClosureServer,
    PreemptableClosureIterator,
    ServingConfig,
)

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_serving_latency.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_SERVING_OUT", "BENCH_serving.json")

QUANTUM_SECONDS = 0.002
PAGE_SIZE = 128
# The preemptive mixed p99 may be at most this multiple of the larger of
# (light-only p99, one quantum): a point query may legitimately wait out one
# running quantum, so the quantum is the honest floor of the bound.
PREEMPTIVE_MULTIPLE = 8.0
# Preemption OFF must cost at least this multiple of preemption ON at p99 —
# the degradation the machinery exists to prevent.
DEGRADE_MULTIPLE = 2.0


def build_workload(*, tiny: bool = False):
    """One transportation network, its fragmentation, and the light queries."""
    config = TransportationGraphConfig(
        cluster_count=4 if tiny else 5,
        nodes_per_cluster=24 if tiny else 30,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=7)
    fragmentation = CenterBasedFragmenter(
        config.cluster_count, center_selection="distributed"
    ).fragment(network.graph)
    queries = cross_cluster_queries(
        network.clusters, 12 if tiny else 20, seed=5, minimum_cluster_distance=1
    )
    return network.graph, fragmentation, [(q.source, q.target) for q in queries]


def serving_config(*, preemption: bool) -> ServingConfig:
    return ServingConfig(
        quantum_seconds=QUANTUM_SECONDS,
        page_size=PAGE_SIZE,
        quanta_per_call=1,
        preemption=preemption,
        # The benchmark prices quanta and event-loop fairness, not the rate
        # limiter: admission must never reject either client here.
        admission=AdmissionConfig(client_rate=1e9, client_burst=1e9),
    )


class _Client:
    def __init__(self, host, port):
        self._address = (host, port)
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(*self._address)
        return self

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def rpc(self, **payload):
        self.writer.write(json.dumps(payload).encode() + b"\n")
        await self.writer.drain()
        response = json.loads(await self.reader.readline())
        assert response.get("ok"), response
        return response

    async def closure_call(self, **payload):
        """One closure/resume call: returns (rows, continuation-or-None)."""
        self.writer.write(json.dumps(payload).encode() + b"\n")
        await self.writer.drain()
        rows, token = [], None
        while True:
            message = json.loads(await self.reader.readline())
            assert message.get("ok"), message
            rows.extend(message.get("page") or [])
            if message.get("done"):
                break
            if message.get("suspended"):
                token = message["continuation"]
                break
        return rows, token


async def _light_stream(client, queries, count):
    """Issue ``count`` point queries; returns their wall-clock latencies."""
    latencies = []
    for index in range(count):
        source, target = queries[index % len(queries)]
        started = time.perf_counter()
        await client.rpc(op="query", args=[str(source), str(target)])
        latencies.append(time.perf_counter() - started)
    return latencies


async def _heavy_loop(client, first_run_rows):
    """Evaluate whole-graph closures back to back until cancelled.

    The first complete token-resumed run's rows are collected into
    ``first_run_rows`` for the identity assertion.
    """
    completed = 0
    try:
        while True:
            rows, token = await client.closure_call(op="closure", args=[ALL_SOURCES])
            while token:
                more, token = await client.closure_call(op="resume", args=[token])
                rows.extend(more)
            if completed == 0:
                first_run_rows.extend(rows)
            completed += 1
    except asyncio.CancelledError:
        return completed


async def _run_phase(service, *, preemption, queries, count, heavy):
    """One benchmark phase on a fresh server over the shared service."""
    server = ClosureServer(service, serving_config(preemption=preemption))
    host, port = await server.start()
    light = await _Client(host, port).connect()
    await light.rpc(op="hello", args=["light"])
    heavy_task = None
    heavy_client = None
    first_run_rows = []
    try:
        if heavy:
            heavy_client = await _Client(host, port).connect()
            await heavy_client.rpc(op="hello", args=["heavy"])
            heavy_task = asyncio.get_running_loop().create_task(
                _heavy_loop(heavy_client, first_run_rows)
            )
            # Make sure the heavy stream is actually occupying the server
            # before the measured light queries begin.
            await asyncio.sleep(QUANTUM_SECONDS * 4)
        latencies = await _light_stream(light, queries, count)
    finally:
        if heavy_task is not None:
            heavy_task.cancel()
            try:
                await heavy_task
            except asyncio.CancelledError:
                pass
        if heavy_client is not None:
            await heavy_client.close()
        await light.close()
        await server.aclose()
    return latencies, first_run_rows


def _quantile(latencies, q):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def _phase_figures(latencies):
    return {
        "queries": len(latencies),
        "p50_ms": round(_quantile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(_quantile(latencies, 0.99) * 1e3, 4),
        "max_ms": round(max(latencies) * 1e3, 4),
        "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 4),
    }


def uninterrupted_reference(service):
    """The whole-graph closure rows an uninterrupted in-process run yields."""
    iterator = PreemptableClosureIterator(
        CompactGraph.from_digraph(service.database.graph),
        ALL_SOURCES,
        kind=service.semiring.name,
        catalog_version=service.catalog_version,
    )
    rows = []
    while not iterator.exhausted:
        rows.extend(iterator.run_quantum(float("inf")).rows)
    return [list(row) for row in rows]


async def _bench(service, queries, count):
    # Warm the service (result cache, compact mirrors) with one unmeasured
    # pass so every phase sees the same steady state.
    warm_server = ClosureServer(service, serving_config(preemption=True))
    host, port = await warm_server.start()
    warm = await _Client(host, port).connect()
    await _light_stream(warm, queries, len(queries))
    await warm.close()
    await warm_server.aclose()

    light_only, _ = await _run_phase(
        service, preemption=True, queries=queries, count=count, heavy=False
    )
    preemptive, streamed_rows = await _run_phase(
        service, preemption=True, queries=queries, count=count, heavy=True
    )
    blocking, _ = await _run_phase(
        service, preemption=False, queries=queries, count=count, heavy=True
    )
    return light_only, preemptive, blocking, streamed_rows


def run_serving_latency(*, tiny: bool = False, output: str = OUTPUT_FILE):
    graph, fragmentation, queries = build_workload(tiny=tiny)
    count = 150 if tiny else 400
    service = QueryService(fragmentation)

    light_only, preemptive, blocking, streamed_rows = asyncio.run(
        _bench(service, queries, count)
    )

    reference = uninterrupted_reference(service)
    assert streamed_rows == reference, (
        "the token-resumed whole-graph closure must stream rows identical "
        f"to an uninterrupted run (streamed {len(streamed_rows)}, "
        f"reference {len(reference)})"
    )

    figures = {
        "light_only": _phase_figures(light_only),
        "mixed_preemptive": _phase_figures(preemptive),
        "mixed_blocking": _phase_figures(blocking),
    }
    p99_light = _quantile(light_only, 0.99)
    p99_on = _quantile(preemptive, 0.99)
    p99_off = _quantile(blocking, 0.99)
    bound = PREEMPTIVE_MULTIPLE * max(p99_light, QUANTUM_SECONDS)
    assert p99_on <= bound, (
        f"preemptive mixed p99 {p99_on * 1e3:.2f}ms exceeds the bound "
        f"{bound * 1e3:.2f}ms ({PREEMPTIVE_MULTIPLE}x max(light-only p99, "
        "one quantum)) — preemption is not containing the heavy query"
    )
    assert p99_off >= DEGRADE_MULTIPLE * p99_on, (
        f"blocking mixed p99 {p99_off * 1e3:.2f}ms is not at least "
        f"{DEGRADE_MULTIPLE}x the preemptive {p99_on * 1e3:.2f}ms — the "
        "baseline does not demonstrate the starvation preemption prevents"
    )

    report = {
        "benchmark": "serving_latency",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "fragments": fragmentation.fragment_count(),
            "distinct_queries": len(queries),
            "light_queries_per_phase": count,
            "closure_rows": len(reference),
        },
        "config": {
            "quantum_seconds": QUANTUM_SECONDS,
            "page_size": PAGE_SIZE,
            "preemptive_multiple": PREEMPTIVE_MULTIPLE,
            "degrade_multiple": DEGRADE_MULTIPLE,
        },
        "phases": figures,
        "p99_bound_ms": round(bound * 1e3, 4),
        "preemptive_vs_light_ratio": round(p99_on / p99_light, 4),
        "blocking_vs_preemptive_ratio": round(p99_off / p99_on, 4),
        "resume_identical": True,
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{fragmentation.fragment_count()} fragments; {count} point queries "
        f"per phase against a continuous whole-graph closure stream "
        f"({len(reference)} rows per closure)",
        "",
        f"{'phase':<20} {'p50':>9} {'p99':>9} {'max':>9}",
        *(
            f"{name:<20} {f['p50_ms']:>7.2f}ms {f['p99_ms']:>7.2f}ms "
            f"{f['max_ms']:>7.2f}ms"
            for name, f in figures.items()
        ),
        "",
        f"preemptive p99 is {report['preemptive_vs_light_ratio']}x the "
        f"light-only baseline (bound {report['p99_bound_ms']}ms); disabling "
        f"preemption degrades p99 {report['blocking_vs_preemptive_ratio']}x "
        f"(required >= {DEGRADE_MULTIPLE}x)",
        "suspended/resumed closure rows identical to the uninterrupted run",
        "",
        f"figures written to {output}",
    ]
    print_report("Serving latency: preemptable closures vs blocking", "\n".join(lines))
    return report


def test_serving_latency_report():
    """Preemption bounds mixed-workload p99; disabling it degrades; resume exact."""
    report = run_serving_latency(tiny=True)
    assert report["resume_identical"]
    assert report["blocking_vs_preemptive_ratio"] >= DEGRADE_MULTIPLE


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: smaller graph, fewer queries",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_serving_latency(tiny=arguments.tiny, output=arguments.output)
