"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure-level claim of the paper and
prints the corresponding rows (run with ``pytest benchmarks/ --benchmark-only -s``
to see them); the ``benchmark`` fixture times the computational core so the
harness doubles as a performance regression check.
"""

from __future__ import annotations

import pytest


def print_report(title: str, body: str) -> None:
    """Print a benchmark report block (visible with ``-s`` or on failures)."""
    separator = "=" * max(len(title), 20)
    print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


@pytest.fixture(scope="session")
def table1_network():
    """One full-size Table 1 transportation graph (4 clusters x 25 nodes)."""
    from repro.generators import generate_transportation_graph, paper_table1_config

    return generate_transportation_graph(paper_table1_config(), seed=42)


@pytest.fixture(scope="session")
def table2_network():
    """One full-size Table 2 transportation graph (4 clusters x 150 nodes)."""
    from repro.generators import generate_transportation_graph, paper_table2_config

    return generate_transportation_graph(paper_table2_config(), seed=42)
