"""Serving throughput: the amortisation claim behind the whole approach.

The paper's preparation (fragmentation + complementary information) only pays
off when it is reused across many queries.  This benchmark measures exactly
that, in queries per second, for a skewed repeat-heavy workload:

* **cold engine** — the pre-service behaviour: every query rebuilds the
  engine (complementary information included) from scratch,
* **warm service** — one :class:`~repro.service.QueryService` answering the
  same stream, amortising preparation and hitting the result cache,
* **batched service** — the same stream submitted as one batch, additionally
  sharing duplicated queries and overlapping local subqueries.

Run ``python benchmarks/bench_service_throughput.py`` directly, or through
pytest (``pytest benchmarks/bench_service_throughput.py -s``).
"""

from __future__ import annotations

import random
import time

from repro.disconnection import DisconnectionSetEngine
from repro.fragmentation import CenterBasedFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.service import QueryService

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_service_throughput.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


REPEATED_QUERIES = 60
DISTINCT_QUERIES = 12


def build_workload():
    """Return (fragmentation, queries): a skewed stream over a 4-cluster network."""
    config = TransportationGraphConfig(
        cluster_count=4,
        nodes_per_cluster=12,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=23)
    fragmentation = CenterBasedFragmenter(4, center_selection="distributed").fragment(
        network.graph
    )
    distinct = cross_cluster_queries(
        network.clusters, DISTINCT_QUERIES, seed=5, minimum_cluster_distance=2
    )
    # Zipf-ish skew: a few hot queries dominate, as in a serving workload.
    rng = random.Random(77)
    stream = [distinct[min(rng.randrange(len(distinct)), rng.randrange(len(distinct)))]
              for _ in range(REPEATED_QUERIES)]
    return fragmentation, [(query.source, query.target) for query in stream]


def run_cold(fragmentation, queries):
    """Rebuild the engine per query (the pre-service, one-shot behaviour)."""
    started = time.perf_counter()
    values = []
    for source, target in queries:
        engine = DisconnectionSetEngine(fragmentation)
        values.append(engine.query(source, target).value)
    return values, time.perf_counter() - started


def run_warm(fragmentation, queries):
    """One resident service answering the stream query by query."""
    service = QueryService(fragmentation)
    started = time.perf_counter()
    values = [service.query(source, target).value for source, target in queries]
    return values, time.perf_counter() - started, service


def run_batched(fragmentation, queries):
    """One resident service answering the stream as a single batch."""
    service = QueryService(fragmentation)
    started = time.perf_counter()
    values = [answer.value for answer in service.query_batch(queries)]
    return values, time.perf_counter() - started, service


def run_throughput_comparison():
    fragmentation, queries = build_workload()
    cold_values, cold_time = run_cold(fragmentation, queries)
    warm_values, warm_time, warm_service = run_warm(fragmentation, queries)
    batch_values, batch_time, batch_service = run_batched(fragmentation, queries)

    assert warm_values == cold_values, "warm service must return the cold engine's answers"
    assert batch_values == cold_values, "batched service must return the cold engine's answers"

    count = len(queries)
    rows = [
        ("cold engine (rebuild per query)", cold_time, count / cold_time),
        ("warm service (cached)", warm_time, count / warm_time),
        ("batched service", batch_time, count / batch_time),
    ]
    lines = [f"{count} queries ({DISTINCT_QUERIES} distinct) over "
             f"{fragmentation.fragment_count()} fragments", ""]
    lines.append(f"{'mode':<34} {'seconds':>9} {'queries/sec':>12}")
    for label, seconds, qps in rows:
        lines.append(f"{label:<34} {seconds:>9.4f} {qps:>12.1f}")
    warm_stats = warm_service.stats
    batch_stats = batch_service.stats
    lines.append("")
    lines.append(
        f"warm service: hit rate {warm_stats.hit_rate():.2f}, "
        f"{warm_stats.local_evaluations} local evaluations"
    )
    lines.append(
        f"batched service: {batch_stats.duplicate_queries_saved} duplicates deduped, "
        f"{batch_stats.shared_subqueries_saved} shared subqueries saved"
    )
    print_report("Service throughput: cold engine vs warm service vs batched service", "\n".join(lines))
    return {
        "cold_qps": count / cold_time,
        "warm_qps": count / warm_time,
        "batch_qps": count / batch_time,
        "warm_hit_rate": warm_stats.hit_rate(),
        "batch_shared_subqueries": batch_stats.shared_subqueries_saved,
        "batch_duplicates": batch_stats.duplicate_queries_saved,
    }


def test_service_throughput_report():
    """Warm and batched serving must beat rebuilding the engine per query."""
    figures = run_throughput_comparison()
    assert figures["warm_qps"] > figures["cold_qps"]
    assert figures["batch_qps"] > figures["cold_qps"]
    assert figures["warm_hit_rate"] > 0.5
    assert figures["batch_duplicates"] > 0
    assert figures["batch_shared_subqueries"] > 0


if __name__ == "__main__":
    run_throughput_comparison()
