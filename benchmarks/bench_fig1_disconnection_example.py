"""Figures 1-2: the disconnection set approach on a 3-fragment network.

The paper's Figs. 1-2 illustrate a query between a node of fragment G1 and a
node of fragment G3 flowing through the chain G1 - G2 - G3 and the
corresponding fragmentation graph.  This benchmark replays that scenario on
the European railway example (Amsterdam -> Milan through Germany), checks the
chain structure, and times both the disconnection-set evaluation and the
centralised baseline.
"""

from __future__ import annotations

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import DisconnectionSetEngine
from repro.fragmentation import FragmentationGraph, GroundTruthFragmenter
from repro.generators import european_railway_example

from .conftest import print_report


@pytest.fixture(scope="module")
def railway_setup():
    graph, countries = european_railway_example()
    clusters = [set(cities) for cities in countries.values()]
    fragmentation = GroundTruthFragmenter(clusters).fragment(graph)
    engine = DisconnectionSetEngine(fragmentation)
    return graph, fragmentation, engine


def test_fig1_chain_structure_report(railway_setup):
    """Print the fragmentation graph and the Amsterdam -> Milan chain."""
    graph, fragmentation, engine = railway_setup
    fragmentation_graph = FragmentationGraph(fragmentation)
    answer = engine.query("amsterdam", "milan")
    body = (
        f"fragmentation graph edges: {fragmentation_graph.edges()}\n"
        f"loosely connected: {fragmentation_graph.is_loosely_connected()}\n"
        f"amsterdam -> milan chain: {answer.chain}\n"
        f"disconnection-set cost: {answer.value:.1f}\n"
        f"centralised cost:       {shortest_path_cost(graph, 'amsterdam', 'milan'):.1f}\n"
        f"sites involved: {sorted(answer.report.site_work)}"
    )
    print_report("Fig. 1/2 - disconnection set approach on a 3-fragment network", body)
    assert answer.chain is not None and len(answer.chain) == 3
    assert fragmentation_graph.is_loosely_connected()
    assert answer.value == pytest.approx(shortest_path_cost(graph, "amsterdam", "milan"))


@pytest.mark.benchmark(group="fig1")
def test_fig1_disconnection_query_benchmark(benchmark, railway_setup):
    """Time the disconnection-set evaluation of the cross-fragment query."""
    _, _, engine = railway_setup
    answer = benchmark(engine.query, "amsterdam", "milan")
    assert answer.exists()


@pytest.mark.benchmark(group="fig1")
def test_fig1_centralized_query_benchmark(benchmark, railway_setup):
    """Time the centralised Dijkstra baseline for the same query."""
    graph, _, _ = railway_setup
    cost = benchmark(shortest_path_cost, graph, "amsterdam", "milan")
    assert cost > 0
