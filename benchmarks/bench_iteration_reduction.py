"""Sec. 2.1 claim: fragmentation reduces the number of fixpoint iterations.

"The number of iterations required before reaching a fixpoint is given by the
maximum diameter of the graph; if the graph is fragmented in n fragments of
equal size, the diameter of each subgraph is highly reduced."  This benchmark
measures the iteration counts of full vs per-fragment semi-naive closures and
times both.
"""

from __future__ import annotations

import pytest

from repro.closure import seminaive_transitive_closure
from repro.fragmentation import GroundTruthFragmenter, fragment_diameters
from repro.graph import hop_diameter

from .conftest import print_report


@pytest.fixture(scope="module")
def fragmented(table1_network):
    return GroundTruthFragmenter(table1_network.clusters).fragment(table1_network.graph)


def test_iteration_reduction_report(table1_network, fragmented):
    """Print graph vs fragment diameters and the corresponding iteration counts."""
    graph = table1_network.graph
    graph_diameter = hop_diameter(graph)
    diameters = fragment_diameters(fragmented)
    global_closure = seminaive_transitive_closure(graph)
    local_iterations = []
    for fragment in fragmented.fragments:
        local = seminaive_transitive_closure(fragmented.fragment_subgraph(fragment.fragment_id))
        local_iterations.append(local.statistics.iterations)
    body = (
        f"whole graph diameter: {graph_diameter}, semi-naive iterations: "
        f"{global_closure.statistics.iterations}\n"
        f"fragment diameters:   {diameters}\n"
        f"fragment iterations:  {local_iterations}\n"
        f"iteration reduction:  {global_closure.statistics.iterations / max(local_iterations):.2f}x"
    )
    print_report("Iteration reduction through fragmentation (Sec. 2.1)", body)
    assert max(local_iterations) < global_closure.statistics.iterations
    assert max(diameters) < graph_diameter


@pytest.mark.benchmark(group="iterations")
def test_global_closure_benchmark(benchmark, table1_network):
    """Time the semi-naive closure of the whole (unfragmented) graph."""
    result = benchmark(seminaive_transitive_closure, table1_network.graph)
    assert result.size() > 0


@pytest.mark.benchmark(group="iterations")
def test_largest_fragment_closure_benchmark(benchmark, fragmented):
    """Time the semi-naive closure of the largest single fragment."""
    largest = max(fragmented.fragments, key=lambda fragment: fragment.edge_count())
    subgraph = fragmented.fragment_subgraph(largest.fragment_id)
    result = benchmark(seminaive_transitive_closure, subgraph)
    assert result.size() > 0
