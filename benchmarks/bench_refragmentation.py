"""Live refragmentation: the boundary-redraw subsystem's receipts.

Three claims are measured and asserted on the sample transportation workload:

* **Locality recovery** — a deliberately eroded (hash) layout over a
  clustered graph is redrawn by the :class:`RefragmentationAdvisor`'s
  recommendation: distinct border nodes, cross-fragment edge ratio and
  complementary fact count all shrink, and every answer after the live
  redraw equals a from-scratch build's.
* **Scoped redraw** — under an active ``PlacedWorkerPool``, a redraw that
  moves a few nodes between two adjacent clusters rebuilds *only* the
  affected fragments: unchanged fragments' compact states stay
  object-identical, the workers keep their PIDs, and the re-shipped edge
  count is a fraction of what a full rebuild re-ships.
* **Replay parity** — a replica restoring a pre-redraw snapshot replays a
  delta-log tail *containing the refragment record* and answers exactly like
  the live database.

Figures are written to ``BENCH_refragmentation.json``.  Run
``python benchmarks/bench_refragmentation.py`` directly (``--tiny`` for the
CI smoke configuration), or through pytest
(``pytest benchmarks/bench_refragmentation.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import time
from pathlib import Path

from repro.closure import shortest_path_cost
from repro.fragmentation import GroundTruthFragmenter, HashFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.refragmentation import RefragmentationAdvisor, measure_layout
from repro.service import QueryService


def _same_answers(left, right):
    """Value-identical answer streams, tolerating last-ULP float reassociation."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if isinstance(a, float) and isinstance(b, float):
            if abs(a - b) > 1e-9 * max(1.0, abs(a), abs(b)):
                return False
        elif a != b:
            return False
    return True

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_refragmentation.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_REFRAGMENTATION_OUT", "BENCH_refragmentation.json")
WORKERS = 2


def build_workload(*, tiny: bool = False):
    """Return (network, clustered blocks, queries) for the sample graph."""
    config = TransportationGraphConfig(
        cluster_count=3 if tiny else 4,
        nodes_per_cluster=8 if tiny else 14,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=31)
    queries = cross_cluster_queries(
        network.clusters, 6 if tiny else 14, seed=9, minimum_cluster_distance=1
    )
    return network, [(q.source, q.target) for q in queries]


def bench_locality_recovery(network, queries):
    """An eroded layout is redrawn by the advisor; locality and parity asserted."""
    graph = network.graph
    cluster_count = len(network.clusters)
    eroded = HashFragmenter(cluster_count).fragment(graph)
    advisor = RefragmentationAdvisor(
        fragmenter_factory=lambda g, n: GroundTruthFragmenter(
            [set(cluster) for cluster in network.clusters]
        )
    )
    service = QueryService(eroded)
    before = measure_layout(eroded)
    answers_before = [service.query(s, t).value for s, t in queries]
    started = time.perf_counter()
    result = service.refragment(advisor=advisor)
    redraw_seconds = time.perf_counter() - started
    after = measure_layout(service.database.fragmentation())
    assert after.border_nodes < before.border_nodes, (
        "the advisor's redraw must recover locality"
    )
    answers_after = [service.query(s, t).value for s, t in queries]
    fresh = QueryService(service.database.fragmentation())
    answers_fresh = [fresh.query(s, t).value for s, t in queries]
    assert _same_answers(answers_after, answers_fresh), (
        "answers after a live redraw must equal a from-scratch build's"
    )
    assert _same_answers(answers_after, answers_before), (
        "a redraw changes the layout, never the answers"
    )
    return {
        "scoped": result is not None,
        "redraw_seconds": redraw_seconds,
        "signals_before": before.as_dict(),
        "signals_after": after.as_dict(),
        "border_nodes_recovered": before.border_nodes - after.border_nodes,
        "complementary_facts_saved": before.complementary_facts - after.complementary_facts,
        "identical_answers": True,
    }


def bench_scoped_redraw(network, queries):
    """A local redraw under a live routed pool rebuilds only what moved."""
    graph = network.graph
    blocks = [set(cluster) for cluster in network.clusters]
    fragmentation = GroundTruthFragmenter(blocks).fragment(graph)
    # Move two nodes between the *last two* clusters; the others are untouched.
    shifted = [set(block) for block in blocks]
    movers = sorted(shifted[-1])[:2]
    for node in movers:
        shifted[-2].add(node)
        shifted[-1].discard(node)
    with QueryService(fragmentation, placement="cost_balanced", workers=WORKERS) as service:
        for source, target in queries:
            service.query(source, target)
        pool = service._pool
        pids_before = pool.worker_pids()
        compact_before = {
            site.fragment_id: site.compact() for site in service.engine().catalog.sites()
        }
        result = service.refragment(GroundTruthFragmenter(shifted))
        assert result is not None, "the redraw must be absorbed in place"
        assert pool.worker_pids() == pids_before, "workers must keep their PIDs"
        for fragment_id in result.unchanged:
            assert (
                service.engine().catalog.site(fragment_id).compact()
                is compact_before[fragment_id]
            ), "unchanged fragments' compact states must stay object-identical"
        total_edges = graph.edge_count()
        answers = [service.query(s, t).value for s, t in queries]
        fresh = QueryService(service.database.fragmentation())
        assert _same_answers(answers, [fresh.query(s, t).value for s, t in queries])
        return {
            "fragments": fragmentation.fragment_count(),
            "fragments_rebuilt": len(result.changed),
            "fragments_kept": len(result.unchanged),
            "moved_edges": result.moved_edges,
            "full_rebuild_edges": total_edges,
            "edge_ship_fraction": round(result.moved_edges / total_edges, 4),
            "worker_pids_stable": True,
            "identical_answers": True,
        }


def bench_replay_parity(network, queries):
    """A replica replays a tail containing the refragment record exactly."""
    graph = network.graph
    blocks = [set(cluster) for cluster in network.clusters]
    live = QueryService(GroundTruthFragmenter(blocks).fragment(graph))
    rng = random.Random(17)
    nodes = sorted(graph.nodes())
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "snap"
        live.snapshot(snap)
        for _ in range(4):
            source, target = rng.sample(nodes, 2)
            live.update_edge(source, target, rng.uniform(0.5, 3.0))
        shifted = [set(block) for block in blocks]
        mover = sorted(shifted[0])[0]
        shifted[1].add(mover)
        shifted[0].discard(mover)
        live.refragment(GroundTruthFragmenter(shifted))
        for _ in range(3):
            source, target = rng.sample(nodes, 2)
            live.update_edge(source, target, rng.uniform(0.5, 3.0))
        restored = QueryService.from_snapshot(snap, replay_log=live.database.delta_log)
        replayed = restored.stats.replayed_records
        assert replayed == 8, f"expected 8 replayed records, got {replayed}"
        for source, target in queries:
            got = restored.query(source, target).value
            want = shortest_path_cost(live.database.graph, source, target)
            assert abs(got - want) < 1e-9, (source, target, got, want)
    return {
        "replayed_records": replayed,
        "crossed_refragment_record": True,
        "identical_answers": True,
    }


def run_refragmentation_benchmark(*, tiny: bool = False, output: str = OUTPUT_FILE):
    network, queries = build_workload(tiny=tiny)
    graph = network.graph

    locality = bench_locality_recovery(network, queries)
    scoped = bench_scoped_redraw(network, queries)
    replay = bench_replay_parity(network, queries)

    report = {
        "benchmark": "refragmentation",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "clusters": len(network.clusters),
            "workers": WORKERS,
            "queries": len(queries),
        },
        "locality_recovery": locality,
        "scoped_redraw": scoped,
        "replay": replay,
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    before = locality["signals_before"]
    after = locality["signals_after"]
    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{len(network.clusters)} clusters, {len(queries)} probe queries",
        "",
        "advisor-driven redraw of an eroded hash layout "
        f"({'scoped' if locality['scoped'] else 'full rebuild'}, "
        f"{locality['redraw_seconds']:.3f}s):",
        f"{'':<4}{'':<24} {'before':>10} {'after':>10}",
        f"{'':<4}{'border nodes':<24} {before['border_nodes']:>10} {after['border_nodes']:>10}",
        f"{'':<4}{'cross-edge ratio':<24} {before['cross_edge_ratio']:>10} {after['cross_edge_ratio']:>10}",
        f"{'':<4}{'complementary facts':<24} {before['complementary_facts']:>10} {after['complementary_facts']:>10}",
        "",
        f"scoped redraw under the routed pool: rebuilt "
        f"{scoped['fragments_rebuilt']} of {scoped['fragments']} fragments, "
        f"re-shipped {scoped['moved_edges']} of {scoped['full_rebuild_edges']} edges "
        f"({scoped['edge_ship_fraction']:.0%} of a full rebuild), worker PIDs stable",
        "",
        f"replica replayed {replay['replayed_records']} records across the "
        "refragment record with identical answers",
        "",
        f"figures written to {output}",
    ]
    print_report("Live refragmentation: locality, scoping, replay", "\n".join(lines))
    return report


def test_refragmentation_report():
    """The ISSUE's acceptance criteria, asserted end to end."""
    report = run_refragmentation_benchmark(tiny=True)
    locality = report["locality_recovery"]
    assert locality["identical_answers"]
    assert locality["border_nodes_recovered"] > 0
    scoped = report["scoped_redraw"]
    assert scoped["worker_pids_stable"]
    assert scoped["fragments_kept"] >= 1
    assert scoped["moved_edges"] < scoped["full_rebuild_edges"]
    assert report["replay"]["crossed_refragment_record"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: small graph (sanity, not timing)",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_refragmentation_benchmark(tiny=arguments.tiny, output=arguments.output)
