"""Incremental maintenance vs full invalidation: the update subsystem's receipts.

Two claims are measured and asserted on the sample transportation workload:

* **Locality** — a single-edge update on a multi-fragment catalog dirties
  only the fragment that absorbed it: every other fragment's site object,
  compact graph object, and CSR arrays are object-identical before and after,
  and cached answers that do not depend on the dirty fragment keep serving.
* **Throughput** — under a mixed read/write workload an incremental service
  (scoped complementary repair + per-fragment invalidation) beats the
  full-invalidate baseline (``incremental=False``: every update tears the
  engine down and the next query pays a complete complementary
  recomputation), while returning bit-identical answers.
* **O(delta) writes** — a single-edge ``apply_delta`` absorbed as an overlay
  splice beats the compact-every-apply rebuild (``overlay_threshold=0``) at
  two scales (largest fragment, whole graph) with bit-identical answers, and
  queries reading *through* a non-empty overlay stay within 10% of
  compacted-CSR latency.

Figures are written to ``BENCH_updates.json``.  Run
``python benchmarks/bench_incremental_updates.py`` directly (``--tiny`` for
the CI smoke configuration), or through pytest
(``pytest benchmarks/bench_incremental_updates.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from time import perf_counter

from repro.closure import select_kernel
from repro.closure.backends import BACKEND_BIGINT
from repro.closure.kernels import array_dijkstra, reachability_rows
from repro.fragmentation import CenterBasedFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.graph import CompactDelta, CompactGraph, DiGraph
from repro.service import QueryService

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_incremental_updates.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_UPDATES_OUT", "BENCH_updates.json")


def build_workload(*, tiny: bool = False):
    """Return (graph, fragmentation, queries) for the sample transportation net."""
    config = TransportationGraphConfig(
        cluster_count=3 if tiny else 4,
        nodes_per_cluster=8 if tiny else 16,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=23)
    fragmentation = CenterBasedFragmenter(
        config.cluster_count, center_selection="distributed"
    ).fragment(network.graph)
    queries = cross_cluster_queries(
        network.clusters, 4 if tiny else 12, seed=5, minimum_cluster_distance=1
    )
    return network.graph, fragmentation, [(q.source, q.target) for q in queries]


def _interior_non_edge(fragmentation):
    """Find two interior nodes of one fragment with no edge between them.

    Inserting a (heavy) edge there is the maximally local update: both
    endpoints belong to exactly one fragment, so no disconnection set's
    membership changes, and the huge weight guarantees no border-to-border
    value improves.
    """
    for fragment in fragmentation.fragments:
        interior = sorted(fragmentation.interior_nodes(fragment.fragment_id), key=repr)
        for i, a in enumerate(interior):
            for b in interior[i + 1:]:
                if not fragmentation.graph.has_edge(a, b):
                    return fragment.fragment_id, a, b
    raise RuntimeError("no fragment with an interior non-edge in this workload")


def bench_locality(fragmentation, queries):
    """Single-edge update: only the owning fragment's compact state moves."""
    service = QueryService(fragmentation, incremental=True)
    for source, target in queries:  # warm the cache and every site's kernels
        service.query(source, target)
    engine = service.engine()
    catalog = engine.catalog
    fragment_ids = [site.fragment_id for site in catalog.sites()]
    sites_before = {fid: catalog.site(fid) for fid in fragment_ids}
    compact_before = {fid: catalog.site(fid).compact() for fid in fragment_ids}
    offsets_before = {fid: compact_before[fid].forward_csr[0] for fid in fragment_ids}
    edges_before = {fid: compact_before[fid].edge_count() for fid in fragment_ids}

    owner, a, b = _interior_non_edge(fragmentation)
    # A query confined to a *different* fragment: its cached answer depends
    # only on that fragment and must survive the update untouched.  Interior
    # endpoints keep the planner from routing chains through other fragments.
    other = next(
        fid
        for fid in fragment_ids
        if fid != owner and len(fragmentation.interior_nodes(fid)) >= 2
    )
    other_nodes = sorted(fragmentation.interior_nodes(other), key=repr)[:2]
    service.query(other_nodes[0], other_nodes[1])
    cache_entries_before = len(service.cache)

    service.update_edge(a, b, 1.0e9)  # too heavy to improve any stored value

    event_dirty = service.database.delta_log.last().dirty_fragments
    assert event_dirty == (owner,), f"expected only fragment {owner} dirty, got {event_dirty}"
    untouched_identical = True
    for fid in fragment_ids:
        same_site = catalog.site(fid) is sites_before[fid]
        same_compact = catalog.site(fid).compact() is compact_before[fid]
        same_arrays = catalog.site(fid).compact().forward_csr[0] is offsets_before[fid]
        if fid == owner:
            assert same_site and same_compact, "the dirty site is patched in place"
            assert not same_arrays, "the dirty fragment's CSR arrays must be rebuilt"
            assert catalog.site(fid).compact().edge_count() == edges_before[fid] + 1
        else:
            untouched_identical = untouched_identical and same_site and same_compact and same_arrays
    assert untouched_identical, "untouched fragments' compact states must be object-identical"

    cache_entries_after = len(service.cache)
    evicted = service.stats.cache_entries_evicted
    retained = service.query(other_nodes[0], other_nodes[1])
    assert retained.cached, "an answer confined to an untouched fragment must stay cached"
    return {
        "intra_fragment_answer_retained": retained.cached,
        "owner": owner,
        "dirty_fragments": list(event_dirty),
        "fragments": len(fragment_ids),
        "untouched_object_identical": untouched_identical,
        "cache_entries_before": cache_entries_before,
        "cache_entries_after": cache_entries_after,
        "cache_entries_evicted": evicted,
        "scoped_invalidations": service.stats.scoped_invalidations,
    }


def _timed_single_edge_apply(state, delta, *, threshold: int, trials: int = 7):
    """Best-of-``trials`` seconds for one ``apply_delta`` at a threshold.

    ``threshold=0`` compacts inside every apply — the from-scratch rebuild
    baseline; a huge threshold keeps the change in the overlay — the
    O(delta) path.  Each trial starts from a fresh hydration of the same
    state so interning and row order are identical on both sides.
    """
    best = float("inf")
    graph = None
    for _ in range(trials):
        graph = CompactGraph.from_state(state)
        graph.overlay_threshold = threshold
        started = perf_counter()
        graph.apply_delta(delta)
        best = min(best, perf_counter() - started)
    return best, graph


def _min_seconds(function, trials: int):
    best = float("inf")
    for _ in range(trials):
        started = perf_counter()
        function()
        best = min(best, perf_counter() - started)
    return best


def bench_overlay_updates(graph, fragmentation, *, tiny: bool):
    """Single-edge apply_delta: overlay splice vs compact-every-apply rebuild.

    Measured at two scales — the largest bench fragment and the whole graph.
    Answers (edge lists, reachability rows, Dijkstra distances) must be
    bit-identical whether the graph reads through the overlay or from the
    rebuilt CSR; the overlay path must also be selected by the kernel
    dispatcher (``select_kernel`` routes non-empty overlays to the big-int
    mask kernel).
    """
    largest = max(fragmentation.fragments, key=lambda fragment: len(fragment.edges))
    fragment_graph = DiGraph(
        [
            (a, b, graph.edge_weight(a, b))
            for a, b in sorted(largest.edges, key=repr)
        ]
    )
    scales = [
        (f"largest_fragment_{largest.fragment_id}", fragment_graph),
        ("whole_graph", graph),
    ]
    results = {}
    read_ratio = None
    for label, digraph in scales:
        base = CompactGraph.from_digraph(digraph)
        state = base.state()
        nodes = sorted(digraph.nodes(), key=repr)
        delta = CompactDelta(inserts=((nodes[0], nodes[-1], 1.0e9),))
        overlay_seconds, overlay_graph = _timed_single_edge_apply(
            state, delta, threshold=1 << 30
        )
        rebuild_seconds, rebuild_graph = _timed_single_edge_apply(
            state, delta, threshold=0
        )
        assert overlay_graph.has_overlay(), "the O(delta) side must stay an overlay"
        assert not rebuild_graph.has_overlay(), "threshold 0 must compact inside apply"
        assert select_kernel(overlay_graph) == BACKEND_BIGINT, (
            "a non-empty overlay must route to the mask-reading kernel"
        )
        # Bit-identical answers through the overlay: same state hydration on
        # both sides means ids match, so rows compare directly.
        assert sorted(overlay_graph.weighted_edges()) == sorted(
            rebuild_graph.weighted_edges()
        )
        ids = list(range(overlay_graph.node_count()))
        overlay_rows, chosen = reachability_rows(overlay_graph, ids, whole_graph=True)
        rebuild_rows, _ = reachability_rows(
            rebuild_graph, ids, whole_graph=True, backend=BACKEND_BIGINT
        )
        assert chosen == BACKEND_BIGINT and overlay_rows == rebuild_rows
        for source_id in ids[: min(4, len(ids))]:
            assert (
                array_dijkstra(overlay_graph, source_id)[0]
                == array_dijkstra(rebuild_graph, source_id)[0]
            )
        speedup = rebuild_seconds / overlay_seconds if overlay_seconds else float("inf")
        results[label] = {
            "nodes": overlay_graph.node_count(),
            "edges": overlay_graph.edge_count(),
            "overlay_apply_seconds": overlay_seconds,
            "rebuild_apply_seconds": rebuild_seconds,
            "apply_speedup": speedup,
            "overlay_selected": True,
            "identical_answers": True,
        }
        if not tiny:
            assert speedup >= 10.0, (
                f"single-edge apply at {label} must be >=10x faster through the "
                f"overlay, got {speedup:.1f}x"
            )
        if label == "whole_graph":
            # Overlay-read latency: the big-int kernel reads the maintained
            # masks, so a query through a live overlay must cost what the
            # compacted graph costs.  Masks are warm from the row check above.
            trials = 9 if tiny else 25
            through_overlay = _min_seconds(
                lambda: reachability_rows(
                    overlay_graph, ids, whole_graph=True, backend=BACKEND_BIGINT
                ),
                trials,
            )
            overlay_graph.compact_now(reason="benchmark")
            compacted = _min_seconds(
                lambda: reachability_rows(
                    overlay_graph, ids, whole_graph=True, backend=BACKEND_BIGINT
                ),
                trials,
            )
            read_ratio = through_overlay / compacted if compacted else 1.0
            if not tiny:
                assert read_ratio <= 1.10, (
                    f"overlay reads must stay within 10% of compacted-CSR "
                    f"latency, got {read_ratio:.3f}x"
                )
    return {
        "scales": results,
        "overlay_read_over_compacted_latency": read_ratio,
    }


def _mixed_run(fragmentation, queries, update_edges, rounds: int, *, incremental: bool):
    """Interleave query rounds with edge reweights; return answers + figures."""
    service = QueryService(fragmentation, incremental=incremental)
    for source, target in queries:  # warm-up outside the timed window
        service.query(source, target)
    answers = []
    update_seconds = 0.0
    started = time.perf_counter()
    for round_index in range(rounds):
        for source, target in queries:
            answers.append(service.query(source, target).value)
        source, target, weight = update_edges[round_index % len(update_edges)]
        factor = 0.9 if round_index % 2 else 1.1
        update_started = time.perf_counter()
        service.update_edge(source, target, weight * factor)
        update_seconds += time.perf_counter() - update_started
    for source, target in queries:  # settle the final update's cost both ways
        answers.append(service.query(source, target).value)
    elapsed = time.perf_counter() - started
    operations = rounds * (len(queries) + 1) + len(queries)
    database = service.database
    return answers, {
        "seconds": elapsed,
        "ops_per_second": operations / elapsed,
        "update_seconds": update_seconds,
        "updates_applied": service.stats.updates_applied,
        "incremental_updates": database.statistics.incremental_updates,
        "engine_rebuilds": database.statistics.engine_rebuilds,
        "rows_recomputed": database.statistics.rows_recomputed,
        "cache_entries_evicted": service.stats.cache_entries_evicted,
        "hit_rate": round(service.stats.hit_rate(), 4),
    }


def bench_mixed_workload(fragmentation, queries, rounds: int):
    """Incremental vs full-invalidate service on the same read/write stream."""
    update_edges = [
        (source, target, weight)
        for source, target, weight in sorted(fragmentation.graph.weighted_edges(), key=repr)
    ]
    update_edges = update_edges[:: max(1, len(update_edges) // 8)][:8]
    incremental_answers, incremental = _mixed_run(
        fragmentation, queries, update_edges, rounds, incremental=True
    )
    full_answers, full = _mixed_run(
        fragmentation, queries, update_edges, rounds, incremental=False
    )
    assert incremental_answers == full_answers, (
        "incremental and full-invalidate services must return identical answers"
    )
    return {
        "rounds": rounds,
        "queries_per_round": len(queries),
        "identical_answers": True,
        "incremental": incremental,
        "full_invalidate": full,
        "speedup": full["seconds"] / incremental["seconds"],
    }


def run_update_comparison(*, tiny: bool = False, output: str = OUTPUT_FILE):
    graph, fragmentation, queries = build_workload(tiny=tiny)
    rounds = 4 if tiny else 12

    locality = bench_locality(fragmentation, queries)
    overlay = bench_overlay_updates(graph, fragmentation, tiny=tiny)
    mixed = bench_mixed_workload(fragmentation, queries, rounds)

    report = {
        "benchmark": "incremental_updates",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "fragments": fragmentation.fragment_count(),
            "queries": len(queries),
        },
        "locality": locality,
        "overlay": overlay,
        "mixed": mixed,
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    incremental = mixed["incremental"]
    full = mixed["full_invalidate"]
    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{fragmentation.fragment_count()} fragments, {len(queries)} queries, "
        f"{mixed['rounds']} update rounds",
        "",
        f"single-edge locality: dirty={locality['dirty_fragments']} of "
        f"{locality['fragments']} fragments, "
        f"{locality['cache_entries_after']}/{locality['cache_entries_before']} "
        "cached answers kept, untouched compact states object-identical",
        "",
        f"{'single-edge apply_delta':<26} {'overlay s':>11} {'rebuild s':>11} {'speedup':>9}",
        *(
            f"{label:<26} {row['overlay_apply_seconds']:>11.7f} "
            f"{row['rebuild_apply_seconds']:>11.7f} {row['apply_speedup']:>8.1f}x"
            for label, row in overlay["scales"].items()
        ),
        f"overlay-read latency / compacted: "
        f"{overlay['overlay_read_over_compacted_latency']:.3f}x",
        "",
        f"{'mixed read/write':<26} {'seconds':>9} {'ops/s':>9} {'rebuilds':>9} {'hit rate':>9}",
        f"{'incremental':<26} {incremental['seconds']:>9.4f} "
        f"{incremental['ops_per_second']:>9.1f} {incremental['engine_rebuilds']:>9} "
        f"{incremental['hit_rate']:>9.2f}",
        f"{'full invalidate':<26} {full['seconds']:>9.4f} "
        f"{full['ops_per_second']:>9.1f} {full['engine_rebuilds']:>9} "
        f"{full['hit_rate']:>9.2f}",
        "",
        f"speedup {mixed['speedup']:.1f}x, answers identical on every operation",
        "",
        f"figures written to {output}",
    ]
    print_report("Incremental maintenance vs full invalidation", "\n".join(lines))
    return report


def test_incremental_update_report():
    """Updates must stay scoped, answers identical, and throughput must win."""
    report = run_update_comparison(tiny=True)
    assert report["locality"]["untouched_object_identical"]
    assert report["locality"]["dirty_fragments"] == [report["locality"]["owner"]]
    assert report["mixed"]["identical_answers"]
    assert report["mixed"]["speedup"] > 1.0
    assert report["mixed"]["incremental"]["engine_rebuilds"] == 1  # the initial build only
    for row in report["overlay"]["scales"].values():
        assert row["overlay_selected"] and row["identical_answers"]
        assert row["apply_speedup"] > 1.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: small graph, few rounds (sanity, not timing)",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_update_comparison(tiny=arguments.tiny, output=arguments.output)
