"""Figures 6/8: the linear fragmentation sweep and its start-node choice.

Fig. 6 illustrates the sweep producing consecutive fragments; Fig. 8 shows
that sweeping an elongated graph along its long axis (small cross-sections)
produces much smaller disconnection sets than sweeping across it.  This
benchmark measures both sweeps on an elongated grid and on a Table 1
transportation graph.
"""

from __future__ import annotations

import pytest

from repro.fragmentation import FragmentationGraph, LinearFragmenter, characterize
from repro.generators import grid_graph

from .conftest import print_report

ELONGATED = grid_graph(4, 24)
FRAGMENTS = 4


@pytest.fixture(scope="module")
def sweep_results():
    along = LinearFragmenter(FRAGMENTS, sweep="left_to_right").fragment(ELONGATED)
    across = LinearFragmenter(FRAGMENTS, sweep="bottom_to_top").fragment(ELONGATED)
    return along, across


def test_fig8_start_choice_report(sweep_results):
    """Print the DS sizes of the two sweep directions (Fig. 8's comparison)."""
    along, across = sweep_results
    along_stats = characterize(along, include_diameter=False)
    across_stats = characterize(across, include_diameter=False)
    body = (
        f"elongated 4x24 grid, {FRAGMENTS} fragments\n"
        f"  sweep along the long axis : DS = {along_stats.average_disconnection_set_size:.1f}, "
        f"AF = {along_stats.fragment_size_deviation:.1f}\n"
        f"  sweep across the short axis: DS = {across_stats.average_disconnection_set_size:.1f}, "
        f"AF = {across_stats.fragment_size_deviation:.1f}"
    )
    print_report("Fig. 8 - start-node choice for the linear fragmentation", body)
    assert along_stats.average_disconnection_set_size <= across_stats.average_disconnection_set_size
    # Both sweeps keep the defining guarantee: an acyclic fragmentation graph.
    assert FragmentationGraph(along).is_loosely_connected()
    assert FragmentationGraph(across).is_loosely_connected()


def test_fig6_consecutive_fragments(sweep_results):
    """Fragments produced by the sweep overlap only their sweep neighbours (Fig. 6)."""
    along, _ = sweep_results
    fragmentation_graph = FragmentationGraph(along)
    for i, j in fragmentation_graph.edges():
        assert abs(i - j) == 1


@pytest.mark.benchmark(group="fig8")
def test_fig8_linear_sweep_benchmark(benchmark, table1_network):
    """Time the linear fragmentation of a Table 1 transportation graph."""
    fragmenter = LinearFragmenter(4)
    fragmentation = benchmark(fragmenter.fragment, table1_network.graph)
    assert FragmentationGraph(fragmentation).is_loosely_connected()
