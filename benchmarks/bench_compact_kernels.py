"""Dict-based vs compact-kernel evaluation: the hot-path refactor's receipts.

Every hot path of the reproduction — whole-graph closures, per-fragment local
queries, end-to-end service queries — can run either on the mutable
dict-of-dicts :class:`~repro.graph.digraph.DiGraph` or on the immutable CSR
:class:`~repro.graph.compact.CompactGraph` with the bitset/array kernels of
:mod:`repro.closure.kernels`.  This benchmark times both paths on the sample
transportation workload, asserts they return identical answers, and writes
the figures to ``BENCH_kernels.json`` so the performance trajectory of the
repository is recorded machine-readably, run over run.

Run ``python benchmarks/bench_compact_kernels.py`` directly (``--tiny`` for
the CI smoke configuration), or through pytest
(``pytest benchmarks/bench_compact_kernels.py -s``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time
from pathlib import Path

from repro.closure import (
    BACKEND_BIGINT,
    BACKEND_CHAIN,
    BACKEND_NUMPY,
    ChainIndex,
    bfs_closure,
    bitset_reachable,
    compact_reachability_closure,
    compact_shortest_path_closure,
    dijkstra_closure,
    numpy_available,
    reachability_rows,
    reachability_semiring,
    select_kernel,
)
from repro.disconnection import DistributedCatalog, LocalQueryEvaluator, QueryPlanner
from repro.fragmentation import CenterBasedFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.graph import CompactGraph
from repro.service import QueryService

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_compact_kernels.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_KERNELS_OUT", "BENCH_kernels.json")


def build_workload(*, tiny: bool = False):
    """Return (graph, fragmentation, queries) for the sample transportation net."""
    config = TransportationGraphConfig(
        cluster_count=3 if tiny else 4,
        nodes_per_cluster=8 if tiny else 16,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=23)
    fragmentation = CenterBasedFragmenter(
        config.cluster_count, center_selection="distributed"
    ).fragment(network.graph)
    queries = cross_cluster_queries(
        network.clusters, 4 if tiny else 12, seed=5, minimum_cluster_distance=1
    )
    return network.graph, fragmentation, [(q.source, q.target) for q in queries]


def _time(fn, repetitions: int):
    """Return (last_result, total_seconds) over ``repetitions`` calls."""
    started = time.perf_counter()
    result = None
    for _ in range(repetitions):
        result = fn()
    return result, time.perf_counter() - started


def bench_closures(graph, repetitions: int):
    """Whole-graph closures: per-source dict searches vs compact kernels."""
    compact = CompactGraph.from_digraph(graph)
    reach_dict, reach_dict_s = _time(lambda: bfs_closure(graph), repetitions)
    reach_kern, reach_kern_s = _time(
        lambda: compact_reachability_closure(compact), repetitions
    )
    sp_dict, sp_dict_s = _time(lambda: dijkstra_closure(graph), repetitions)
    sp_kern, sp_kern_s = _time(lambda: compact_shortest_path_closure(compact), repetitions)
    assert reach_dict.values == reach_kern.values, "reachability closures must agree"
    assert sp_dict.values == sp_kern.values, "shortest-path closures must agree"
    return {
        "reachability": {
            "dict_s": reach_dict_s,
            "compact_s": reach_kern_s,
            "speedup": reach_dict_s / reach_kern_s,
        },
        "shortest_path": {
            "dict_s": sp_dict_s,
            "compact_s": sp_kern_s,
            "speedup": sp_dict_s / sp_kern_s,
        },
        "pairs": len(reach_dict.values),
    }


def dense_scc_graph(*, tiny: bool = False):
    """A dense, single-SCC graph: the shape where the indexed backends shine.

    A directed ring guarantees one strongly connected component, random
    chords make it dense; the big-int BFS then walks nearly every node from
    every source while the chain index answers from a handful of labels and
    the packed matrix squares whole word blocks.
    """
    n = 48 if tiny else 256
    rng = random.Random(41)
    from repro.graph import DiGraph

    graph = DiGraph()
    for i in range(n):
        graph.add_node(i)
    for i in range(n):
        graph.add_edge(i, (i + 1) % n, 1.0)
    for _ in range(8 * n):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            graph.add_edge(a, b, 1.0)
    return graph


def _dict_rows(graph, closure):
    """Node-id bitset rows from a dict closure (source bit set, like the kernels)."""
    ids = {node: index for index, node in enumerate(graph.nodes())}
    rows = {index: 1 << index for index in ids.values()}
    for (source, target) in closure.values:
        rows[ids[source]] |= 1 << ids[target]
    return rows


def bench_backend_rows(graph, label, repetitions: int):
    """Whole-graph reachability rows, one column per kernel backend.

    Every backend is timed *cold* — structure build plus all rows — because
    that is what a whole-graph closure pays; and every backend's rows are
    asserted bit-identical to the big-int BFS (and to the dict closure)
    before any figure is reported.
    """
    compact = CompactGraph.from_digraph(graph)
    ids = list(range(compact.node_count()))

    dict_closure, dict_s = _time(lambda: bfs_closure(graph), repetitions)
    expected = {i: bitset_reachable(compact, i) for i in ids}
    assert _dict_rows(graph, dict_closure) == expected, "dict and bigint rows must agree"

    def bigint_rows():
        return {i: bitset_reachable(compact, i) for i in ids}

    def chain_rows():
        index = ChainIndex.from_graph(compact)
        return {i: index.reachable_mask(i) for i in ids}

    def numpy_rows():
        from repro.closure import PackedBitMatrix

        matrix = PackedBitMatrix.from_graph(compact)
        rows = matrix.closure_rows()
        return {i: matrix.row_to_mask(rows[i]) for i in ids}

    columns = {"bigint": bigint_rows, "chain": chain_rows}
    if numpy_available():
        columns["numpy"] = numpy_rows
    timings = {"dict": dict_s / repetitions}
    for name, fn in columns.items():
        rows, seconds = _time(fn, repetitions)
        assert rows == expected, f"{name} rows must be bit-identical to bigint"
        timings[name] = seconds / repetitions
    # The dispatcher's rows must match too (it may hit the warm caches).
    dispatched, _ = reachability_rows(compact, ids, whole_graph=True)
    assert dispatched == expected, "dispatched rows must be bit-identical"
    speedups = {
        name: timings["bigint"] / timings[name]
        for name in columns
        if name != "bigint"
    }
    return {
        "scale": label,
        "nodes": compact.node_count(),
        "edges": compact.edge_count(),
        "selected": select_kernel(compact, whole_graph=True),
        "seconds_per_closure": timings,
        "speedup_vs_bigint": speedups,
        "best_speedup_vs_bigint": max(speedups.values()) if speedups else 1.0,
    }


def bench_local_queries(fragmentation, queries, repetitions: int):
    """Per-fragment local-query evaluation (the acceptance-criterion figure).

    Plans the workload's queries once, then evaluates every distinct local
    query spec with the dict-based evaluator and with the compact kernels,
    reachability semiring.  One warm-up pass per path keeps one-time costs
    (compact build, adjacency copies) out of the steady-state figures both
    ways.
    """
    semiring = reachability_semiring()
    catalog = DistributedCatalog(fragmentation, semiring=semiring)
    planner = QueryPlanner(catalog)
    specs = []
    seen = set()
    for source, target in queries:
        for chain_plan in planner.plan(source, target).chains:
            for spec in chain_plan.local_queries:
                if spec.key() not in seen:
                    seen.add(spec.key())
                    specs.append(spec)
    dict_eval = LocalQueryEvaluator(semiring=semiring, use_compact=False)
    kernel_eval = LocalQueryEvaluator(semiring=semiring, use_compact=True)

    def run(evaluator):
        return [
            evaluator.evaluate(catalog.site(spec.fragment_id), spec).values for spec in specs
        ]

    dict_warm = run(dict_eval)
    kernel_warm = run(kernel_eval)
    assert dict_warm == kernel_warm, "both local-query paths must produce identical values"
    _, dict_s = _time(lambda: run(dict_eval), repetitions)
    _, kernel_s = _time(lambda: run(kernel_eval), repetitions)
    return {
        "specs": len(specs),
        "evaluations": len(specs) * repetitions,
        "dict_s": dict_s,
        "compact_s": kernel_s,
        "speedup": dict_s / kernel_s,
    }


def bench_service(fragmentation, queries, rounds: int):
    """End-to-end service queries with the result cache out of the picture."""
    semiring = reachability_semiring()
    figures = {}
    answers = {}
    for label, use_compact in (("dict", False), ("compact", True)):
        service = QueryService(
            fragmentation, semiring=semiring, cache_size=1, use_compact=use_compact
        )
        for source, target in queries:  # warm-up: compact builds, engine prep
            service.query(source, target)
        started = time.perf_counter()
        values = []
        for _ in range(rounds):
            values = [service.query(s, t).value for s, t in queries]
        elapsed = time.perf_counter() - started
        count = rounds * len(queries)
        figures[label] = {"seconds": elapsed, "qps": count / elapsed}
        answers[label] = values
    assert answers["dict"] == answers["compact"], "service answers must agree on both paths"
    figures["speedup"] = figures["dict"]["seconds"] / figures["compact"]["seconds"]
    return figures


def run_kernel_comparison(*, tiny: bool = False, output: str = OUTPUT_FILE):
    graph, fragmentation, queries = build_workload(tiny=tiny)
    closure_reps = 2 if tiny else 5
    local_reps = 3 if tiny else 20
    service_rounds = 1 if tiny else 5

    closures = bench_closures(graph, closure_reps)
    local = bench_local_queries(fragmentation, queries, local_reps)
    service = bench_service(fragmentation, queries, service_rounds)
    backends = [
        bench_backend_rows(graph, "transportation", closure_reps),
        bench_backend_rows(dense_scc_graph(tiny=tiny), "dense_scc", closure_reps),
    ]

    report = {
        "benchmark": "compact_kernels",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "fragments": fragmentation.fragment_count(),
            "queries": len(queries),
        },
        "closure": closures,
        "local_query": local,
        "service": service,
        "backends": backends,
        "numpy_available": numpy_available(),
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{fragmentation.fragment_count()} fragments, {len(queries)} queries",
        "",
        f"{'stage':<38} {'dict s':>9} {'compact s':>10} {'speedup':>8}",
    ]
    for label, figures in (
        ("closure / reachability", closures["reachability"]),
        ("closure / shortest path", closures["shortest_path"]),
        ("local query / reachability", local),
    ):
        lines.append(
            f"{label:<38} {figures['dict_s']:>9.4f} {figures['compact_s']:>10.4f} "
            f"{figures['speedup']:>7.1f}x"
        )
    lines.append(
        f"{'service query / reachability':<38} {service['dict']['seconds']:>9.4f} "
        f"{service['compact']['seconds']:>10.4f} {service['speedup']:>7.1f}x"
    )
    lines.append("")
    lines.append("per-backend whole-graph closure (seconds per run, speedup vs bigint):")
    for row in backends:
        timings = row["seconds_per_closure"]
        cells = "  ".join(
            f"{name}={timings[name]:.4f}s" for name in ("dict", "bigint", "chain", "numpy")
            if name in timings
        )
        ups = "  ".join(
            f"{name} {up:.1f}x" for name, up in sorted(row["speedup_vs_bigint"].items())
        )
        lines.append(
            f"  {row['scale']:<16} n={row['nodes']:<4} m={row['edges']:<5} "
            f"selected={row['selected']:<7} {cells}  [{ups}]"
        )
    lines.append("")
    lines.append(f"figures written to {output}")
    print_report("Compact kernels vs dict-based evaluation", "\n".join(lines))
    return report


def test_compact_kernel_report():
    """Compact kernels must beat the dict paths and agree with them exactly."""
    report = run_kernel_comparison(tiny=True)
    assert report["closure"]["reachability"]["speedup"] > 1.0
    assert report["local_query"]["speedup"] > 1.0
    assert report["service"]["speedup"] > 0.5  # end-to-end includes shared planning cost
    # Identical answers are asserted inside bench_backend_rows for every
    # backend at every scale; here only sanity on the emitted rows.  The
    # >= 3x acceptance figure is checked on the full (non-tiny) workload,
    # where timing is meaningful.
    scales = {row["scale"] for row in report["backends"]}
    assert scales == {"transportation", "dense_scc"}
    for row in report["backends"]:
        assert row["best_speedup_vs_bigint"] > 0.0
        assert row["selected"] in (BACKEND_BIGINT, BACKEND_CHAIN, BACKEND_NUMPY)
    if not report["tiny"]:
        dense = next(r for r in report["backends"] if r["scale"] == "dense_scc")
        assert dense["best_speedup_vs_bigint"] >= 3.0, dense


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: small graph, few repetitions (sanity, not timing)",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_kernel_comparison(tiny=arguments.tiny, output=arguments.output)
