"""The deferred experiment of Sec. 5: which fragmentation characteristic matters?

The paper defers the question "which of the characteristics identified here is
of main importance when striving for an optimal parallel evaluation" to its
PRISMA follow-up.  This benchmark runs that comparison on the simulator: the
same query workload is executed under each fragmentation algorithm (plus the
hash baseline) and the simulated parallel cost, per-site work, and
precomputation size are reported side by side.
"""

from __future__ import annotations

import pytest

from repro.disconnection import precompute_complementary_information
from repro.fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    HashFragmenter,
    LinearFragmenter,
    characterize,
)
from repro.generators import mixed_workload
from repro.parallel import compare_fragmenters

from .conftest import print_report


@pytest.fixture(scope="module")
def comparison(table1_network):
    network = table1_network
    fragmenters = {
        "center-based": CenterBasedFragmenter(4, center_selection="distributed"),
        "bond-energy": BondEnergyFragmenter(4),
        "linear": LinearFragmenter(4),
        "hash-baseline": HashFragmenter(4),
    }
    queries = mixed_workload(network.graph, network.clusters, 8, cross_fraction=0.75, seed=5)
    simulations = compare_fragmenters(network.graph, fragmenters, queries)
    return network, fragmenters, simulations


def test_fragmenter_query_cost_report(comparison):
    """Print per-fragmenter query cost, speed-up and precomputation size."""
    network, fragmenters, simulations = comparison
    lines = ["algorithm       DS     parallel_time  speedup  complementary_facts"]
    rows = {}
    for name, fragmenter in fragmenters.items():
        fragmentation = fragmenter.fragment(network.graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        info = precompute_complementary_information(fragmentation)
        simulation = simulations[name]
        rows[name] = {
            "ds": characteristics.average_disconnection_set_size,
            "parallel": simulation.total_parallel_time,
            "speedup": simulation.overall_speedup(),
            "facts": info.size_in_facts(),
        }
        lines.append(
            f"{name:<14}  {rows[name]['ds']:5.1f}  {rows[name]['parallel']:13.0f}  "
            f"{rows[name]['speedup']:7.2f}  {rows[name]['facts']:10d}"
        )
    print_report("Query cost per fragmentation algorithm (deferred Sec. 5 experiment)", "\n".join(lines))
    # The graph-aware fragmentations beat the hash baseline on both query cost
    # and precomputation size — the paper's central premise.
    graph_aware = min(rows[name]["parallel"] for name in ("center-based", "bond-energy", "linear"))
    assert graph_aware < rows["hash-baseline"]["parallel"]
    assert rows["bond-energy"]["facts"] <= rows["hash-baseline"]["facts"]


@pytest.mark.benchmark(group="query-cost")
@pytest.mark.parametrize("algorithm", ["center-based", "bond-energy", "linear"])
def test_fragmenter_workload_benchmark(benchmark, table1_network, algorithm):
    """Time an 8-query workload simulation under each paper fragmenter."""
    from repro.parallel import ParallelSimulator

    network = table1_network
    fragmenter = {
        "center-based": CenterBasedFragmenter(4, center_selection="distributed"),
        "bond-energy": BondEnergyFragmenter(4),
        "linear": LinearFragmenter(4),
    }[algorithm]
    fragmentation = fragmenter.fragment(network.graph)
    simulator = ParallelSimulator(fragmentation)
    queries = mixed_workload(network.graph, network.clusters, 8, cross_fraction=0.75, seed=5)
    result = benchmark(simulator.simulate_workload, queries)
    assert result.total_parallel_time > 0
