"""Ablation: the value and cost of the complementary information.

The paper identifies the precomputation of complementary information as the
main cost of the disconnection set approach ("the disadvantage ... is mainly
due to the pre-processing required for building the complementary
information") and its correctness role (paths may leave the chain).  This
ablation measures (a) the precomputation cost per fragmentation algorithm,
(b) how intra-fragment answers degrade when the information is dropped.
"""

from __future__ import annotations

import pytest

from repro.closure import shortest_path_cost
from repro.disconnection import DisconnectionSetEngine, precompute_complementary_information
from repro.exceptions import DisconnectedError, NoChainError
from repro.fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    GroundTruthFragmenter,
    LinearFragmenter,
)
from repro.generators import intra_cluster_queries

from .conftest import print_report


def test_ablation_precompute_cost_report(table1_network):
    """Print the complementary-information size and work per fragmenter."""
    network = table1_network
    lines = ["algorithm       facts   search_work"]
    for name, fragmenter in (
        ("center-based", CenterBasedFragmenter(4, center_selection="distributed")),
        ("bond-energy", BondEnergyFragmenter(4)),
        ("linear", LinearFragmenter(4)),
    ):
        fragmentation = fragmenter.fragment(network.graph)
        info = precompute_complementary_information(fragmentation)
        lines.append(f"{name:<14}  {info.size_in_facts():5d}  {info.precompute_work:10d}")
    print_report("Ablation - complementary information precomputation cost", "\n".join(lines))


def test_ablation_shortcuts_affect_intra_fragment_answers(table1_network):
    """Without complementary information, answers that detour outside a fragment degrade."""
    network = table1_network
    fragmentation = GroundTruthFragmenter(network.clusters).fragment(network.graph)
    with_info = DisconnectionSetEngine(fragmentation, use_shortcuts=True)
    without_info = DisconnectionSetEngine(fragmentation, use_shortcuts=False)
    queries = intra_cluster_queries(network.clusters, 20, seed=11)
    degraded = 0
    for query in queries:
        reference = shortest_path_cost(network.graph, query.source, query.target)
        assert with_info.query(query.source, query.target).value == pytest.approx(reference)
        try:
            ablated_value = without_info.query(query.source, query.target).value
        except (DisconnectedError, NoChainError):
            ablated_value = None
        if ablated_value is None or ablated_value > reference + 1e-9:
            degraded += 1
    print_report(
        "Ablation - dropping the complementary information",
        f"intra-fragment queries evaluated: {len(queries)}\n"
        f"answers degraded without complementary information: {degraded}",
    )
    # With the information the engine is always exact (asserted above); the
    # ablated engine is never better than the reference.
    assert degraded >= 0


@pytest.mark.benchmark(group="ablation-complementary")
def test_precompute_benchmark(benchmark, table1_network):
    """Time the complementary-information precomputation for the ground-truth fragmentation."""
    fragmentation = GroundTruthFragmenter(table1_network.clusters).fragment(table1_network.graph)
    info = benchmark(precompute_complementary_information, fragmentation)
    assert info.size_in_facts() >= 0
