"""Shared-nothing placement vs replicated workers: the placement subsystem's receipts.

Four claims are measured and asserted on the sample transportation workload:

* **Equivalence** — the owner-routed pool returns exactly the replicated
  pool's (and the in-process evaluator's) answers on the same query stream.
* **Memory** — each routed worker pins only the fragments it owns: the
  per-worker pinned-site count is at most ``ceil(fragments / workers) +
  replication`` and the per-worker resident payload drops by ~the worker
  count versus the replicated pool's full-catalog copies.
* **Scoped re-pins** — a single-fragment update travels to that fragment's
  owner(s) only (one routed message), not to every worker via a barrier
  broadcast.
* **Rebalancing** — a deliberately skewed plan (every fragment parked on one
  worker) is repaired by ``RebalanceAdvisor`` migrations on the live pool:
  the worker processes keep their PIDs (no restart) and answers stay
  identical throughout.

Figures are written to ``BENCH_placement.json``.  Run
``python benchmarks/bench_placement.py`` directly (``--tiny`` for the CI
smoke configuration), or through pytest
(``pytest benchmarks/bench_placement.py -s``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import time
from pathlib import Path

from repro.fragmentation import CenterBasedFragmenter
from repro.generators import (
    TransportationGraphConfig,
    cross_cluster_queries,
    generate_transportation_graph,
)
from repro.placement import PlacementPlan
from repro.service import QueryService

try:  # pytest provides print_report when collected as part of the harness
    from .conftest import print_report
except ImportError:  # direct `python benchmarks/bench_placement.py` run
    def print_report(title: str, body: str) -> None:
        separator = "=" * max(len(title), 20)
        print(f"\n{separator}\n{title}\n{separator}\n{body}\n")


OUTPUT_FILE = os.environ.get("BENCH_PLACEMENT_OUT", "BENCH_placement.json")
WORKERS = 2


def build_workload(*, tiny: bool = False):
    """Return (graph, fragmentation, queries) for the sample transportation net."""
    config = TransportationGraphConfig(
        cluster_count=3 if tiny else 4,
        nodes_per_cluster=8 if tiny else 16,
        cluster_c1=520.0,
        cluster_c2=0.04,
        inter_cluster_edges=2,
    )
    network = generate_transportation_graph(config, seed=23)
    fragmentation = CenterBasedFragmenter(
        config.cluster_count, center_selection="distributed"
    ).fragment(network.graph)
    queries = cross_cluster_queries(
        network.clusters, 6 if tiny else 16, seed=5, minimum_cluster_distance=1
    )
    return network.graph, fragmentation, [(q.source, q.target) for q in queries]


def _timed_answers(service, queries, rounds):
    answers = []
    started = time.perf_counter()
    for _ in range(rounds):
        for source, target in queries:
            answers.append(service.query(source, target).value)
    return answers, time.perf_counter() - started


def bench_routing_equivalence(fragmentation, queries, rounds):
    """Identical answers in-process vs replicated pool vs owner-routed pool."""
    in_process = QueryService(fragmentation)
    baseline_answers, baseline_seconds = _timed_answers(in_process, queries, rounds)
    with QueryService(fragmentation, workers=WORKERS) as replicated:
        replicated_answers, replicated_seconds = _timed_answers(replicated, queries, rounds)
    with QueryService(fragmentation, placement="cost_balanced", workers=WORKERS) as placed:
        placed_answers, placed_seconds = _timed_answers(placed, queries, rounds)
        owner_dispatch = dict(placed.stats.per_owner_dispatch)
        dispatch_skew = placed.stats.dispatch_skew()
    assert placed_answers == replicated_answers == baseline_answers, (
        "owner-routed, replicated and in-process answers must be identical"
    )
    return {
        "identical_answers": True,
        "rounds": rounds,
        "in_process_seconds": baseline_seconds,
        "replicated_seconds": replicated_seconds,
        "placed_seconds": placed_seconds,
        "per_owner_dispatch": owner_dispatch,
        "dispatch_skew": round(dispatch_skew, 4),
    }


def bench_memory(fragmentation):
    """Per-worker resident state: O(fragments / workers) vs O(fragments)."""
    with QueryService(fragmentation, placement="cost_balanced", workers=WORKERS) as placed:
        engine = placed.engine()
        catalog = engine.catalog
        sites = catalog.compact_sites()
        site_bytes = {
            fragment_id: len(pickle.dumps(site, protocol=pickle.HIGHEST_PROTOCOL))
            for fragment_id, site in sites.items()
        }
        placed._require_placed_pool()  # start the routed pool
        census = placed._pool.pinned_census()
        plan = placed.placement_plan
        fragments = len(sites)
        bound = math.ceil(fragments / plan.worker_count) + plan.replication_factor()
        per_worker_counts = {worker: len(pinned) for worker, pinned in census.items()}
        for worker, pinned in census.items():
            assert len(pinned) <= bound, (
                f"worker {worker} pins {len(pinned)} fragments, over the bound {bound}"
            )
        placed_bytes = {
            worker: sum(site_bytes[f] for f in pinned) for worker, pinned in census.items()
        }
        replicated_per_worker = sum(site_bytes.values())
        reduction = replicated_per_worker / max(max(placed_bytes.values()), 1)
    return {
        "fragments": fragments,
        "workers": plan.worker_count,
        "pinned_per_worker": per_worker_counts,
        "pinned_bound": bound,
        "bytes_per_worker_placed": placed_bytes,
        "bytes_per_worker_replicated": replicated_per_worker,
        "max_worker_reduction": round(reduction, 2),
    }


def bench_scoped_repin(fragmentation, queries):
    """A single-fragment update re-pins its owner(s) only, not the pool."""
    with QueryService(fragmentation, placement="cost_balanced", workers=WORKERS) as placed:
        for source, target in queries:
            placed.query(source, target)
        plan = placed.placement_plan
        source, target, weight = sorted(
            fragmentation.graph.weighted_edges(), key=repr
        )[0]
        owner_fragment = placed.update_edge(source, target, weight * 1.1)
        pool = placed._pool
        expected_workers = tuple(sorted(set(plan.workers_for(owner_fragment))))
        assert pool.last_repin_workers == expected_workers, (
            f"repin reached workers {pool.last_repin_workers}, expected only "
            f"{expected_workers}"
        )
        assert pool.repin_messages == len(expected_workers) < plan.worker_count + 1
        # Answers remain exact after the scoped re-pin: compare against a
        # fresh in-process service prepared from scratch on the updated graph.
        reference = QueryService(placed.database.fragmentation())
        for source_q, target_q in queries:
            assert placed.query(source_q, target_q).value == reference.query(
                source_q, target_q
            ).value, "post-repin answers must match a from-scratch preparation"
        return {
            "updated_fragment": owner_fragment,
            "repin_workers": list(pool.last_repin_workers),
            "repin_messages": pool.repin_messages,
            "worker_count": plan.worker_count,
            "scoped": pool.repin_messages < plan.worker_count,
        }


def bench_rebalance(fragmentation, queries):
    """A forced skewed plan is repaired by advisor migrations, no restart."""
    fragment_ids = [f.fragment_id for f in fragmentation.fragments]
    skewed = PlacementPlan(
        owner_of={f: 0 for f in fragment_ids}, worker_count=WORKERS
    )
    with QueryService(fragmentation, placement=skewed) as placed:
        answers_before = [placed.query(s, t).value for s, t in queries]
        pool = placed._pool
        pids_before = pool.worker_pids()
        skew_before = placed.placement_plan.skew(
            {f: float(placed.stats.per_site_load.get(f, 0)) for f in fragment_ids}
        )
        migrations = placed.rebalance()
        assert migrations, "the advisor must repair an all-on-one plan"
        plan = placed.placement_plan
        skew_after = plan.skew(
            {f: float(placed.stats.per_site_load.get(f, 0)) for f in fragment_ids}
        )
        assert pool.worker_pids() == pids_before, "rebalancing must not restart the pool"
        assert plan.max_pinned() <= plan.pinned_bound()
        placed.cache.clear()  # force fresh evaluation through the new owners
        answers_after = [placed.query(s, t).value for s, t in queries]
        assert answers_after == answers_before, (
            "answers must be identical before and after live rebalancing"
        )
        return {
            "migrations": [
                {
                    "fragment": m.fragment_id,
                    "from_worker": m.from_worker,
                    "to_worker": m.to_worker,
                }
                for m in migrations
            ],
            "skew_before": round(skew_before, 4),
            "skew_after": round(skew_after, 4),
            "pool_restarted": False,
            "identical_answers": True,
        }


def run_placement_comparison(*, tiny: bool = False, output: str = OUTPUT_FILE):
    graph, fragmentation, queries = build_workload(tiny=tiny)
    rounds = 2 if tiny else 4

    equivalence = bench_routing_equivalence(fragmentation, queries, rounds)
    memory = bench_memory(fragmentation)
    repin = bench_scoped_repin(fragmentation, queries)
    rebalance = bench_rebalance(fragmentation, queries)

    report = {
        "benchmark": "placement",
        "tiny": tiny,
        "workload": {
            "nodes": graph.node_count(),
            "edges": graph.edge_count(),
            "fragments": fragmentation.fragment_count(),
            "workers": WORKERS,
            "queries": len(queries),
        },
        "equivalence": equivalence,
        "memory": memory,
        "scoped_repin": repin,
        "rebalance": rebalance,
    }
    Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))

    lines = [
        f"{graph.node_count()} nodes / {graph.edge_count()} edges, "
        f"{fragmentation.fragment_count()} fragments on {WORKERS} owner workers, "
        f"{len(queries)} queries x {rounds} rounds",
        "",
        "answers: owner-routed == replicated == in-process on every query",
        "",
        f"{'per-worker resident state':<30} {'pinned sites':>13} {'payload bytes':>14}",
        *(
            f"{f'worker {worker} (placed)':<30} {memory['pinned_per_worker'][worker]:>13} "
            f"{memory['bytes_per_worker_placed'][worker]:>14}"
            for worker in sorted(memory["pinned_per_worker"])
        ),
        f"{'any worker (replicated)':<30} {memory['fragments']:>13} "
        f"{memory['bytes_per_worker_replicated']:>14}",
        f"pinned bound ceil(F/W)+r = {memory['pinned_bound']}, "
        f"max-worker memory reduction {memory['max_worker_reduction']}x",
        "",
        f"single-fragment update re-pinned workers {repin['repin_workers']} only "
        f"({repin['repin_messages']} message(s) for a {repin['worker_count']}-worker pool)",
        "",
        f"skewed plan repaired live: skew {rebalance['skew_before']} -> "
        f"{rebalance['skew_after']} via {len(rebalance['migrations'])} migration(s), "
        "no pool restart, identical answers",
        "",
        f"figures written to {output}",
    ]
    print_report("Shared-nothing placement vs replicated workers", "\n".join(lines))
    return report


def test_placement_report():
    """The ISSUE's acceptance criteria, asserted end to end."""
    report = run_placement_comparison(tiny=True)
    assert report["equivalence"]["identical_answers"]
    memory = report["memory"]
    assert max(memory["pinned_per_worker"].values()) <= memory["pinned_bound"]
    assert memory["max_worker_reduction"] > 1.0
    assert report["scoped_repin"]["scoped"]
    assert report["rebalance"]["identical_answers"]
    assert not report["rebalance"]["pool_restarted"]
    assert report["rebalance"]["skew_after"] < report["rebalance"]["skew_before"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke configuration: small graph, few rounds (sanity, not timing)",
    )
    parser.add_argument("--output", default=OUTPUT_FILE, help="JSON results path")
    arguments = parser.parse_args()
    run_placement_comparison(tiny=arguments.tiny, output=arguments.output)
