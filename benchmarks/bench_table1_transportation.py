"""Table 1: fragmentation characteristics on transportation graphs.

Paper workload: transportation graphs of 4 clusters x 25 nodes (~429 edges,
~2.25 inter-cluster edges); algorithms: center-based, bond-energy, linear.
Reproduction target: bond-energy yields the smallest average disconnection
sets, linear the largest but an acyclic fragmentation graph, center-based the
best-balanced fragment sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TABLE1, format_table, run_table1

from .conftest import print_report

TRIALS = 3


@pytest.fixture(scope="module")
def table1_rows():
    result = run_table1(trials=TRIALS, seed=42)
    return result


def test_table1_report(table1_rows):
    """Print the regenerated Table 1 next to the paper's reference values."""
    measured = format_table(table1_rows.as_rows(), ["algorithm", "F", "DS", "AF", "ADS"])
    reference = format_table(
        [{"algorithm": name, **values} for name, values in PAPER_TABLE1.items()],
        ["algorithm", "F", "DS", "AF", "ADS"],
    )
    print_report(
        "Table 1 - transportation graphs (4 clusters x 25 nodes)",
        f"measured ({TRIALS} graphs):\n{measured}\n\npaper:\n{reference}",
    )
    ds = {row.algorithm: row.average["DS"] for row in table1_rows.rows}
    assert ds["bond-energy"] <= ds["center-based"]
    assert ds["bond-energy"] <= ds["linear"]
    assert table1_rows.row("linear").average["cycles"] == 0.0


@pytest.mark.benchmark(group="table1")
def test_table1_benchmark(benchmark):
    """Time one full Table 1 regeneration (single trial)."""
    result = benchmark(lambda: run_table1(trials=1, seed=7))
    assert len(result.rows) == 3
