"""Table 3: fragmentation characteristics on general (unstructured) graphs.

Paper workload: random graphs of 100 nodes (~279.5 edges), no imposed cluster
structure.  Reproduction target: the algorithms "again conform to the idea
that underlies them" — bond-energy minimises DS, linear stays acyclic at the
price of large DS, center-based balances workload.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TABLE3, format_table, run_table3

from .conftest import print_report

TRIALS = 3


@pytest.fixture(scope="module")
def table3_rows():
    return run_table3(trials=TRIALS, seed=42)


def test_table3_report(table3_rows):
    """Print the regenerated Table 3 next to the paper's reference values."""
    measured = format_table(table3_rows.as_rows(), ["algorithm", "F", "DS", "AF", "ADS"])
    reference = format_table(
        [{"algorithm": name, **values} for name, values in PAPER_TABLE3.items()],
        ["algorithm", "F", "DS", "AF", "ADS"],
    )
    print_report(
        "Table 3 - general graphs (100 nodes)",
        f"measured ({TRIALS} graphs):\n{measured}\n\npaper:\n{reference}",
    )
    ds = {row.algorithm: row.average["DS"] for row in table3_rows.rows}
    assert ds["bond-energy"] == min(ds.values())
    assert table3_rows.row("linear").average["cycles"] == 0.0


@pytest.mark.benchmark(group="table3")
def test_table3_benchmark(benchmark):
    """Time one full Table 3 regeneration (single trial)."""
    result = benchmark(lambda: run_table3(trials=1, seed=3))
    assert len(result.rows) == 4
