"""The rebalance advisor: watch owner skew, recommend fragment migrations.

A placement plan is computed once, but workloads drift: a few fragments turn
hot, an owner's queue grows while its neighbours idle, or the update stream
concentrates on fragments whose re-pins all land on one process.  The
advisor folds the observable signals together —

* per-fragment dispatch counts (``ServiceStatistics.per_site_load``),
* per-owner dispatch totals / queue depths (the routed pool's counters),
* :class:`~repro.incremental.delta.DeltaLog` locality (each dirty-fragment
  entry is a re-pin an owner had to absorb),
* the :class:`~repro.observability.querylog.QueryLog`'s per-fragment read
  frequencies — the first true *workload* signal: cached answers dispatch
  nothing, so a hot-but-cached fragment is invisible to the dispatch
  counters yet still concentrates invalidation and re-read risk on its
  owner —

and recommends :class:`Migration` steps that move fragments from the most
loaded owner to the least loaded one.  Recommendations are greedy and
bounded; applying them through ``QueryService.rebalance`` (or the routed
pool's ``migrate``) moves live compact state between workers without a pool
restart, so a skewed plan is repaired in place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..incremental.delta import DeltaLog
from ..observability.querylog import QueryLog
from .plan import PlacementPlan

DEFAULT_SKEW_THRESHOLD = 1.5
DEFAULT_UPDATE_WEIGHT = 1.0
DEFAULT_QUERY_WEIGHT = 1.0


@dataclass(frozen=True)
class Migration:
    """One recommended fragment move.

    Attributes:
        fragment_id: the fragment to re-own.
        from_worker: its current owner.
        to_worker: the recommended destination.
        reason: a human-readable justification (skew figures).
    """

    fragment_id: int
    from_worker: int
    to_worker: int
    reason: str


class RebalanceAdvisor:
    """Recommends owner migrations when per-owner load skew crosses a threshold.

    Args:
        skew_threshold: recommend migrations only while the max/mean owner
            load exceeds this (1.0 means perfectly balanced; the default 1.5
            tolerates mild imbalance, as migrations are not free).
        update_weight: how many dispatches one delta-log re-pin counts as
            when folding update locality into the load model.
        query_weight: how many dispatches one query-log fragment touch counts
            as when folding the captured workload into the load model.
        max_migrations: cap on recommendations per :meth:`recommend` call.
    """

    def __init__(
        self,
        *,
        skew_threshold: float = DEFAULT_SKEW_THRESHOLD,
        update_weight: float = DEFAULT_UPDATE_WEIGHT,
        query_weight: float = DEFAULT_QUERY_WEIGHT,
        max_migrations: int = 8,
    ) -> None:
        if skew_threshold < 1.0:
            raise ValueError(f"skew_threshold must be >= 1.0, got {skew_threshold}")
        self._skew_threshold = skew_threshold
        self._update_weight = update_weight
        self._query_weight = query_weight
        self._max_migrations = max_migrations

    # -------------------------------------------------------------- modelling

    def fragment_loads(
        self,
        plan: PlacementPlan,
        dispatch_counts: Mapping[int, float],
        *,
        delta_log: Optional[DeltaLog] = None,
        query_log: Optional[QueryLog] = None,
    ) -> Dict[int, float]:
        """Return the modelled load of every placed fragment.

        Query dispatches count 1 each; every delta-log record that dirtied a
        fragment adds ``update_weight`` (its owner absorbed that re-pin);
        every query-log entry that touched a fragment adds ``query_weight``
        — crucially *including cached answers*, which never reached the
        dispatch counters.  Fragments with no recorded signal model as 0.0 —
        an idle fragment costs its owner nothing; only when *no* fragment
        has any signal does :meth:`recommend` fall back to balancing by
        fragment count.
        """
        loads = {f: float(dispatch_counts.get(f, 0.0)) for f in plan.fragment_ids}
        if delta_log is not None:
            for record in delta_log.records():
                for fragment_id in record.dirty_fragments:
                    if fragment_id in loads:
                        loads[fragment_id] += self._update_weight
        if query_log is not None:
            for fragment_id, touches in query_log.fragment_frequencies().items():
                if fragment_id in loads:
                    loads[fragment_id] += self._query_weight * touches
        return loads

    def skew(
        self,
        plan: PlacementPlan,
        dispatch_counts: Mapping[int, float],
        *,
        delta_log: Optional[DeltaLog] = None,
        query_log: Optional[QueryLog] = None,
    ) -> float:
        """Return the plan's max/mean owner-load skew under the load model."""
        return plan.skew(
            self.fragment_loads(plan, dispatch_counts, delta_log=delta_log, query_log=query_log)
        )

    # ---------------------------------------------------------- recommending

    def recommend(
        self,
        plan: PlacementPlan,
        dispatch_counts: Mapping[int, float],
        *,
        delta_log: Optional[DeltaLog] = None,
        query_log: Optional[QueryLog] = None,
    ) -> List[Migration]:
        """Return the migrations that bring the plan back within bounds.

        Two conditions trigger a move, simulated greedily on a copy of the
        plan until neither holds, no move improves, or the migration cap is
        reached:

        * an owner holds more than ``ceil(fragments / workers)`` fragments —
          the memory bound placement exists for is violated, so its lightest
          fragments spill to under-capacity owners unconditionally;
        * the modelled max/mean owner-load skew exceeds the threshold — the
          heaviest owner sheds its heaviest still-helpful fragment to the
          lightest owner.

        An already-balanced, within-capacity plan yields no recommendations.
        """
        loads = self.fragment_loads(
            plan, dispatch_counts, delta_log=delta_log, query_log=query_log
        )
        if sum(loads.values()) <= 0.0:
            # No signal at all: balance by fragment *count* instead, so a
            # cold pool with every fragment parked on worker 0 still spreads.
            loads = {f: 1.0 for f in loads}
        working = plan.copy()
        capacity = math.ceil(len(working.fragment_ids) / working.worker_count)
        migrations: List[Migration] = []
        while len(migrations) < self._max_migrations:
            owner_loads = working.owner_loads(loads)
            owned_counts = [len(working.owned_by(w)) for w in range(working.worker_count)]
            over_capacity = [w for w in range(working.worker_count) if owned_counts[w] > capacity]
            if over_capacity:
                # Capacity repair first: the memory bound is unconditional.
                source = max(over_capacity, key=lambda w: (owned_counts[w], owner_loads[w]))
                target = min(
                    (w for w in range(working.worker_count) if owned_counts[w] < capacity),
                    key=lambda w: (owner_loads[w], owned_counts[w], w),
                )
                fragment_id = min(
                    working.owned_by(source), key=lambda f: (loads.get(f, 0.0), f)
                )
                reason = (
                    f"owner {source} holds {owned_counts[source]} fragments, over the "
                    f"capacity ceil({len(working.fragment_ids)}/"
                    f"{working.worker_count}) = {capacity}"
                )
            else:
                mean = sum(owner_loads) / working.worker_count
                heaviest = max(
                    range(working.worker_count), key=lambda w: (owner_loads[w], -w)
                )
                lightest = min(
                    range(working.worker_count), key=lambda w: (owner_loads[w], w)
                )
                if mean <= 0.0 or owner_loads[heaviest] / mean <= self._skew_threshold:
                    break
                candidates = working.owned_by(heaviest)
                if len(candidates) <= 1:
                    break  # one hot fragment is not fixable by moving it around
                # The best single move: the heaviest fragment whose transfer
                # brings the pair of workers closer without overshooting.
                gap = owner_loads[heaviest] - owner_loads[lightest]
                movable = [
                    f
                    for f in candidates
                    if loads.get(f, 0.0) < gap
                    and len(working.owned_by(lightest)) < capacity
                ]
                if not movable:
                    break
                source, target = heaviest, lightest
                fragment_id = max(movable, key=lambda f: (loads.get(f, 0.0), -f))
                reason = (
                    f"owner {heaviest} carries {owner_loads[heaviest]:.1f} of mean "
                    f"{mean:.1f} (skew {owner_loads[heaviest] / mean:.2f} > "
                    f"{self._skew_threshold:.2f})"
                )
            working.move(fragment_id, target)
            migrations.append(
                Migration(
                    fragment_id=fragment_id,
                    from_worker=source,
                    to_worker=target,
                    reason=reason,
                )
            )
        return migrations

    def apply(
        self,
        migrations: Sequence[Migration],
        pool: "object",
    ) -> int:
        """Apply recommendations through a routed pool's ``migrate``; returns the count.

        The pool is duck-typed (anything with ``migrate(fragment_id,
        to_worker)``) so the advisor stays importable without the service
        package.
        """
        applied = 0
        for migration in migrations:
            pool.migrate(migration.fragment_id, migration.to_worker)  # type: ignore[attr-defined]
            applied += 1
        return applied
