"""Placement plans: an explicit fragment-to-owner-worker map.

The paper's shared-nothing premise is that every fragment lives on exactly
one processor and work is shipped to where the data is.  A
:class:`PlacementPlan` makes that placement explicit for the serving layer:
each fragment has one *owner* worker (the process that pins its compact
state and evaluates its subqueries) plus optional extra *replicas* for hot
fragments, so the routed worker pool holds ``O(fragments / workers)`` state
per process instead of replicating the whole catalog everywhere.

Three pluggable policies compute plans:

* :data:`POLICY_ROUND_ROBIN` — fragment ``i`` on worker ``i mod w``
  (placement oblivious to size; the paper's default when fragments are
  balanced by construction),
* :data:`POLICY_COST_BALANCED` — LPT over per-fragment costs (edge counts or
  simulated work), delegated to the existing
  :func:`repro.parallel.scheduler.assign_fragments` machinery,
* :data:`POLICY_WORKLOAD_AWARE` — LPT over observed dispatch counts
  (:class:`~repro.service.stats.ServiceStatistics` ``per_site_load``), with
  the hottest fragments replicated onto the least-loaded workers — the lever
  studied by the query-workload-based allocation literature.

Plans are plain data: they serialise to dictionaries so snapshots persist
them and a restored service resumes with the same placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..parallel.scheduler import POLICY_LPT, assign_fragments

POLICY_ROUND_ROBIN = "round_robin"
POLICY_COST_BALANCED = "cost_balanced"
POLICY_WORKLOAD_AWARE = "workload_aware"
PLACEMENT_POLICIES = (POLICY_ROUND_ROBIN, POLICY_COST_BALANCED, POLICY_WORKLOAD_AWARE)


class PlacementError(ReproError):
    """A placement plan is invalid or a requested move is impossible."""


@dataclass
class PlacementPlan:
    """Which worker owns (and which workers replicate) each fragment.

    Attributes:
        owner_of: fragment id -> owner worker index (the primary route for
            the fragment's subqueries and re-pins).
        worker_count: number of worker slots the plan places onto.
        replicas: fragment id -> extra worker indices that also pin the
            fragment (never including the owner); subquery routing may fall
            back to any of them.
        policy: the policy that computed the plan (informational; a pool
            restart after refragmentation recomputes with the same policy).
    """

    owner_of: Dict[int, int]
    worker_count: int
    replicas: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    policy: str = POLICY_ROUND_ROBIN

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check internal consistency.

        Raises:
            PlacementError: on an empty plan, an out-of-range worker index,
                or a replica set that contains the owner.
        """
        if self.worker_count <= 0:
            raise PlacementError(f"worker_count must be positive, got {self.worker_count}")
        if not self.owner_of:
            raise PlacementError("a placement plan must place at least one fragment")
        for fragment_id, worker in self.owner_of.items():
            if not 0 <= worker < self.worker_count:
                raise PlacementError(
                    f"fragment {fragment_id} is owned by worker {worker}, "
                    f"outside 0..{self.worker_count - 1}"
                )
        for fragment_id, extra in self.replicas.items():
            if fragment_id not in self.owner_of:
                raise PlacementError(f"replicas listed for unplaced fragment {fragment_id}")
            for worker in extra:
                if not 0 <= worker < self.worker_count:
                    raise PlacementError(
                        f"fragment {fragment_id} replica worker {worker} is "
                        f"outside 0..{self.worker_count - 1}"
                    )
            if self.owner_of[fragment_id] in extra:
                raise PlacementError(
                    f"fragment {fragment_id}'s replica set contains its owner"
                )
            if len(set(extra)) != len(extra):
                raise PlacementError(f"fragment {fragment_id} lists a duplicate replica")

    # ------------------------------------------------------------- accessors

    @property
    def fragment_ids(self) -> List[int]:
        """The placed fragments, sorted."""
        return sorted(self.owner_of)

    def owner(self, fragment_id: int) -> int:
        """Return the owner worker of one fragment.

        Raises:
            PlacementError: when the fragment is not placed.
        """
        try:
            return self.owner_of[fragment_id]
        except KeyError:
            raise PlacementError(f"fragment {fragment_id} is not placed") from None

    def workers_for(self, fragment_id: int) -> Tuple[int, ...]:
        """Return every worker pinning the fragment (owner first)."""
        return (self.owner(fragment_id),) + tuple(self.replicas.get(fragment_id, ()))

    def fragments_on(self, worker: int) -> List[int]:
        """Return every fragment pinned on ``worker`` (owned or replicated)."""
        pinned = [f for f, w in self.owner_of.items() if w == worker]
        pinned.extend(
            f for f, extra in self.replicas.items() if worker in extra
        )
        return sorted(set(pinned))

    def owned_by(self, worker: int) -> List[int]:
        """Return the fragments ``worker`` is the primary owner of."""
        return sorted(f for f, w in self.owner_of.items() if w == worker)

    def replication_factor(self) -> int:
        """Return the largest number of extra replicas any fragment carries."""
        return max((len(extra) for extra in self.replicas.values()), default=0)

    def max_pinned(self) -> int:
        """Return the largest per-worker pinned-fragment count."""
        return max(
            (len(self.fragments_on(worker)) for worker in range(self.worker_count)),
            default=0,
        )

    def pinned_bound(self) -> int:
        """Return the bound ``ceil(fragments / workers) + replication factor``.

        A plan produced by the bundled policies never pins more fragments on
        one worker than this; the placement benchmark asserts it.
        """
        return math.ceil(len(self.owner_of) / self.worker_count) + self.replication_factor()

    def owner_loads(self, fragment_costs: Mapping[int, float]) -> List[float]:
        """Return the summed cost of the fragments each worker owns."""
        loads = [0.0] * self.worker_count
        for fragment_id, worker in self.owner_of.items():
            loads[worker] += float(fragment_costs.get(fragment_id, 0.0))
        return loads

    def skew(self, fragment_costs: Mapping[int, float]) -> float:
        """Return max/mean owner load under ``fragment_costs`` (1.0 = balanced).

        Workers owning nothing still count in the mean: a plan that parks
        every fragment on one of four workers has skew 4.0, not 1.0.
        """
        loads = self.owner_loads(fragment_costs)
        total = sum(loads)
        if not loads or total <= 0.0:
            return 1.0
        return max(loads) / (total / len(loads))

    # -------------------------------------------------------------- mutation

    def move(self, fragment_id: int, to_worker: int) -> int:
        """Re-own one fragment; returns the previous owner.

        The fragment's replica set is preserved except that a replica on the
        destination is absorbed into ownership (a fragment never appears
        twice on one worker).

        Raises:
            PlacementError: when the fragment is unplaced or the destination
                is out of range.
        """
        if not 0 <= to_worker < self.worker_count:
            raise PlacementError(
                f"destination worker {to_worker} is outside 0..{self.worker_count - 1}"
            )
        previous = self.owner(fragment_id)
        if previous == to_worker:
            return previous
        extra = [w for w in self.replicas.get(fragment_id, ()) if w != to_worker]
        self.owner_of[fragment_id] = to_worker
        if extra:
            self.replicas[fragment_id] = tuple(extra)
        else:
            self.replicas.pop(fragment_id, None)
        return previous

    def remap(self, fragment_ids: Iterable[int]) -> "PlacementPlan":
        """Return a plan for a redrawn fragment set, moving as little as possible.

        This is the placement half of a live refragmentation: fragments that
        survive the redraw keep their owner (and replicas) — their workers'
        pinned state, and the processes themselves, stay put — fragments that
        vanished are dropped, and brand-new fragment ids are assigned to the
        workers owning the fewest fragments.  The result is a *new* plan (the
        live pool swaps it in atomically after executing the pin changes).
        """
        ids = set(fragment_ids)
        if not ids:
            raise PlacementError("cannot remap onto an empty fragment set")
        owner_of = {f: w for f, w in self.owner_of.items() if f in ids}
        replicas = {
            f: tuple(extra) for f, extra in self.replicas.items() if f in ids and extra
        }
        owned_counts = [0] * self.worker_count
        for worker in owner_of.values():
            owned_counts[worker] += 1
        for fragment_id in sorted(ids - set(owner_of)):
            worker = min(range(self.worker_count), key=lambda w: (owned_counts[w], w))
            owner_of[fragment_id] = worker
            owned_counts[worker] += 1
        return PlacementPlan(
            owner_of=owner_of,
            worker_count=self.worker_count,
            replicas=replicas,
            policy=self.policy,
        )

    def add_replica(self, fragment_id: int, worker: int) -> None:
        """Pin one extra replica of a fragment (idempotent; never the owner)."""
        if not 0 <= worker < self.worker_count:
            raise PlacementError(
                f"replica worker {worker} is outside 0..{self.worker_count - 1}"
            )
        if worker == self.owner(fragment_id):
            return
        extra = self.replicas.get(fragment_id, ())
        if worker not in extra:
            self.replicas[fragment_id] = tuple(extra) + (worker,)

    # ------------------------------------------------------------ plain state

    def as_dict(self) -> Dict[str, object]:
        """Return the plan as plain data (snapshot wire format)."""
        return {
            "policy": self.policy,
            "worker_count": self.worker_count,
            "owner_of": {str(f): w for f, w in sorted(self.owner_of.items())},
            "replicas": {
                str(f): list(extra) for f, extra in sorted(self.replicas.items()) if extra
            },
        }

    @classmethod
    def from_dict(cls, state: Mapping[str, object]) -> "PlacementPlan":
        """Rebuild a plan from :meth:`as_dict` output."""
        owner_of = {int(f): int(w) for f, w in dict(state["owner_of"]).items()}  # type: ignore[arg-type]
        replicas = {
            int(f): tuple(int(w) for w in extra)
            for f, extra in dict(state.get("replicas", {})).items()  # type: ignore[arg-type]
        }
        return cls(
            owner_of=owner_of,
            worker_count=int(state["worker_count"]),  # type: ignore[arg-type]
            replicas=replicas,
            policy=str(state.get("policy", POLICY_ROUND_ROBIN)),
        )

    def copy(self) -> "PlacementPlan":
        """Return an independent copy."""
        return PlacementPlan(
            owner_of=dict(self.owner_of),
            worker_count=self.worker_count,
            replicas={f: tuple(extra) for f, extra in self.replicas.items()},
            policy=self.policy,
        )

    def __repr__(self) -> str:
        owned = {w: len(self.owned_by(w)) for w in range(self.worker_count)}
        return (
            f"PlacementPlan(policy={self.policy!r}, workers={self.worker_count}, "
            f"fragments={len(self.owner_of)}, owned_per_worker={owned})"
        )


# ------------------------------------------------------------------- policies


def _enforce_capacity(
    owner_of: Dict[int, int], costs: Mapping[int, float], worker_count: int
) -> Dict[int, int]:
    """Cap owned fragments per worker at ``ceil(fragments / workers)``.

    LPT balances summed *cost*; with one expensive fragment it will happily
    park every cheap fragment on one worker, which breaks the memory bound
    the whole placement exercise exists for (per-worker resident state
    ``<= ceil(F / W) + replication``).  This pass spills the cheapest
    fragments of over-capacity workers onto the least-loaded workers with
    spare capacity — cost balance degrades as little as possible while the
    count bound becomes unconditional.
    """
    capacity = math.ceil(len(owner_of) / worker_count)
    owned: Dict[int, List[int]] = {w: [] for w in range(worker_count)}
    for fragment_id, worker in owner_of.items():
        owned[worker].append(fragment_id)
    loads = [sum(float(costs.get(f, 0.0)) for f in owned[w]) for w in range(worker_count)]
    for worker in range(worker_count):
        while len(owned[worker]) > capacity:
            fragment_id = min(owned[worker], key=lambda f: (costs.get(f, 0.0), f))
            target = min(
                (w for w in range(worker_count) if len(owned[w]) < capacity),
                key=lambda w: (loads[w], w),
            )
            owned[worker].remove(fragment_id)
            owned[target].append(fragment_id)
            cost = float(costs.get(fragment_id, 0.0))
            loads[worker] -= cost
            loads[target] += cost
            owner_of[fragment_id] = target
    return owner_of


def round_robin_plan(fragment_ids: Iterable[int], worker_count: int) -> PlacementPlan:
    """Place fragment ``i`` (in sorted order) on worker ``i mod worker_count``."""
    ordered = sorted(fragment_ids)
    if not ordered:
        raise PlacementError("cannot place an empty fragment set")
    return PlacementPlan(
        owner_of={f: index % worker_count for index, f in enumerate(ordered)},
        worker_count=worker_count,
        policy=POLICY_ROUND_ROBIN,
    )


def cost_balanced_plan(
    fragment_costs: Mapping[int, float], worker_count: int
) -> PlacementPlan:
    """Balance summed fragment cost per worker (LPT, via the parallel scheduler)."""
    if not fragment_costs:
        raise PlacementError("cannot place an empty fragment set")
    assignment = assign_fragments(fragment_costs, worker_count, policy=POLICY_LPT)
    return PlacementPlan(
        owner_of=_enforce_capacity(
            dict(assignment.processor_of), fragment_costs, worker_count
        ),
        worker_count=worker_count,
        policy=POLICY_COST_BALANCED,
    )


def workload_aware_plan(
    dispatch_counts: Mapping[int, float],
    worker_count: int,
    *,
    fragment_ids: Optional[Iterable[int]] = None,
    replicate_hot_share: float = 0.5,
    max_extra_replicas: int = 1,
) -> PlacementPlan:
    """Balance *observed* dispatch load and replicate the hottest fragments.

    Args:
        dispatch_counts: per-fragment subquery dispatch counts (the
            ``per_site_load`` of :class:`~repro.service.stats.ServiceStatistics`).
        worker_count: worker slots to place onto.
        fragment_ids: the full fragment set; fragments with no recorded
            dispatches are placed at cost zero (LPT puts them on the least
            loaded workers).  Defaults to the keys of ``dispatch_counts``.
        replicate_hot_share: a fragment whose dispatch share exceeds
            ``replicate_hot_share / worker_count`` — i.e. it alone carries
            more than that multiple of a fair per-worker share — earns extra
            replicas.
        max_extra_replicas: replica cap per hot fragment (bounded so the
            plan degrades towards, never beyond, full replication).
    """
    fragments = set(fragment_ids) if fragment_ids is not None else set(dispatch_counts)
    if not fragments:
        raise PlacementError("cannot place an empty fragment set")
    costs = {f: float(dispatch_counts.get(f, 0.0)) for f in fragments}
    assignment = assign_fragments(costs, worker_count, policy=POLICY_LPT)
    plan = PlacementPlan(
        owner_of=_enforce_capacity(dict(assignment.processor_of), costs, worker_count),
        worker_count=worker_count,
        policy=POLICY_WORKLOAD_AWARE,
    )
    total = sum(costs.values())
    if total <= 0.0 or worker_count < 2 or max_extra_replicas <= 0:
        return plan
    hot_threshold = replicate_hot_share * total / worker_count
    loads = plan.owner_loads(costs)
    for fragment_id in sorted(fragments, key=lambda f: (-costs[f], f)):
        if costs[fragment_id] <= hot_threshold:
            break  # sorted hottest-first: nothing colder can qualify
        coolest = sorted(
            (w for w in range(worker_count) if w != plan.owner(fragment_id)),
            key=lambda w: (loads[w], w),
        )
        for worker in coolest[:max_extra_replicas]:
            plan.add_replica(fragment_id, worker)
    return plan


def plan_placement(
    policy: str,
    worker_count: int,
    *,
    fragment_ids: Optional[Sequence[int]] = None,
    fragment_costs: Optional[Mapping[int, float]] = None,
    dispatch_counts: Optional[Mapping[int, float]] = None,
) -> PlacementPlan:
    """Compute a placement plan with the named policy.

    ``round_robin`` needs only ``fragment_ids``; ``cost_balanced`` needs
    ``fragment_costs``; ``workload_aware`` uses ``dispatch_counts`` when any
    were recorded and falls back to cost balancing (then round-robin) for a
    cold service with no observed workload yet.

    Raises:
        PlacementError: on an unknown policy or missing inputs.
    """
    if policy not in PLACEMENT_POLICIES:
        raise PlacementError(
            f"unknown placement policy {policy!r} (expected one of {PLACEMENT_POLICIES})"
        )
    known = set(fragment_ids or [])
    known.update(fragment_costs or {})
    known.update(dispatch_counts or {})
    if not known:
        raise PlacementError(f"policy {policy!r} was given no fragments to place")
    if policy == POLICY_WORKLOAD_AWARE and dispatch_counts and sum(dispatch_counts.values()):
        return workload_aware_plan(dispatch_counts, worker_count, fragment_ids=known)
    if policy in (POLICY_COST_BALANCED, POLICY_WORKLOAD_AWARE) and fragment_costs:
        costs = {f: float(fragment_costs.get(f, 0.0)) for f in known}
        plan = cost_balanced_plan(costs, worker_count)
        plan.policy = policy
        return plan
    plan = round_robin_plan(known, worker_count)
    plan.policy = policy
    return plan
