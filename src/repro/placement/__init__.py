"""Shared-nothing fragment placement: owner workers, policies, rebalancing.

The paper assumes each fragment is "stored at a different computer or
processor"; this package makes that placement a first-class, serialisable
object for the serving layer:

* :mod:`~repro.placement.plan` — :class:`PlacementPlan` (fragment -> owner
  worker, optional hot-fragment replicas) and the pluggable policies that
  compute one (round-robin, cost-balanced LPT, workload-aware),
* :mod:`~repro.placement.advisor` — :class:`RebalanceAdvisor`, which watches
  dispatch/queue skew and delta-log locality and recommends live
  :class:`Migration` steps.

The routed worker pool (:class:`repro.service.pool.PlacedWorkerPool`)
executes a plan: each worker pins only the fragments it owns, so per-worker
resident state is ``O(fragments / workers)`` instead of ``O(fragments)``.
"""

from .advisor import DEFAULT_SKEW_THRESHOLD, Migration, RebalanceAdvisor
from .plan import (
    PLACEMENT_POLICIES,
    POLICY_COST_BALANCED,
    POLICY_ROUND_ROBIN,
    POLICY_WORKLOAD_AWARE,
    PlacementError,
    PlacementPlan,
    cost_balanced_plan,
    plan_placement,
    round_robin_plan,
    workload_aware_plan,
)

__all__ = [
    "DEFAULT_SKEW_THRESHOLD",
    "Migration",
    "PLACEMENT_POLICIES",
    "POLICY_COST_BALANCED",
    "POLICY_ROUND_ROBIN",
    "POLICY_WORKLOAD_AWARE",
    "PlacementError",
    "PlacementPlan",
    "RebalanceAdvisor",
    "cost_balanced_plan",
    "plan_placement",
    "round_robin_plan",
    "workload_aware_plan",
]
