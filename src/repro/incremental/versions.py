"""Per-fragment version vectors: the unit of staleness under updates.

The serving stack used to carry one scalar catalog version, so any update —
however local — aged every cached answer and every pinned worker payload at
once.  The paper's locality argument (Sec. 2.1: a change touches one fragment
and the disconnection sets it borders) calls for versioning at fragment
granularity: a :class:`VersionVector` keeps one monotonically increasing
counter per fragment plus an *epoch* that advances only on whole-catalog
events (refragmentation, a fall-back full rebuild).  Consumers record the
``(epoch, fragment -> version)`` slice they depend on and stay valid exactly
as long as none of those entries moved.

The vector serialises to plain dictionaries so snapshots can persist it and a
reloaded service resumes mid-stream instead of restarting from version zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


class VersionVector:
    """A per-fragment version counter with a whole-catalog epoch.

    Args:
        versions: initial per-fragment versions (defaults to empty; unknown
            fragments implicitly sit at version 0).
        epoch: initial epoch (advanced by whole-catalog invalidations).
    """

    __slots__ = ("_versions", "_epoch")

    def __init__(self, versions: Mapping[int, int] | None = None, *, epoch: int = 0) -> None:
        self._versions: Dict[int, int] = dict(versions or {})
        self._epoch = epoch

    # ------------------------------------------------------------- accessors

    @property
    def epoch(self) -> int:
        """The whole-catalog epoch; a change invalidates every fragment at once."""
        return self._epoch

    def version_of(self, fragment_id: int) -> int:
        """Return the current version of one fragment (0 when never bumped)."""
        return self._versions.get(fragment_id, 0)

    def snapshot_of(self, fragment_ids: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
        """Return a sorted, hashable ``(fragment, version)`` slice of the vector.

        This is what a cache entry records at put time: the exact versions its
        answer depends on.
        """
        return tuple(sorted((fid, self.version_of(fid)) for fid in set(fragment_ids)))

    def total_updates(self) -> int:
        """Return the sum of all fragment versions (a monotone update counter)."""
        return sum(self._versions.values())

    def tag(self) -> str:
        """Return a compact string identifying the vector's exact state.

        Changes whenever any fragment version or the epoch changes — the
        service folds it into its human-visible catalog version.
        """
        parts = ",".join(f"{fid}:{version}" for fid, version in sorted(self._versions.items()))
        return f"e{self._epoch}({parts})"

    # ------------------------------------------------------------- mutation

    def bump(self, fragment_id: int) -> int:
        """Advance one fragment's version; returns the new version."""
        version = self._versions.get(fragment_id, 0) + 1
        self._versions[fragment_id] = version
        return version

    def bump_all(self, fragment_ids: Iterable[int]) -> Dict[int, int]:
        """Advance several fragments at once; returns their new versions."""
        return {fragment_id: self.bump(fragment_id) for fragment_id in fragment_ids}

    def advance_epoch(self) -> int:
        """Invalidate everything at once (refragmentation, full rebuild)."""
        self._epoch += 1
        return self._epoch

    # ------------------------------------------------------------ validation

    def matches(self, epoch: int, slice_: Iterable[Tuple[int, int]]) -> bool:
        """Return ``True`` when a recorded ``(epoch, slice)`` is still current."""
        if epoch != self._epoch:
            return False
        return all(self.version_of(fid) == version for fid, version in slice_)

    # ---------------------------------------------------------- plain state

    def as_dict(self) -> Dict[str, object]:
        """Return the vector as plain data (snapshot wire format)."""
        return {"epoch": self._epoch, "versions": dict(self._versions)}

    @classmethod
    def from_dict(cls, state: Mapping[str, object]) -> "VersionVector":
        """Rebuild a vector from :meth:`as_dict` output."""
        versions = {int(k): int(v) for k, v in dict(state.get("versions", {})).items()}  # type: ignore[union-attr]
        return cls(versions, epoch=int(state.get("epoch", 0)))  # type: ignore[arg-type]

    def copy(self) -> "VersionVector":
        """Return an independent copy."""
        return VersionVector(self._versions, epoch=self._epoch)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        return self._epoch == other._epoch and self._versions == other._versions

    def __repr__(self) -> str:
        return f"VersionVector({self.tag()})"
