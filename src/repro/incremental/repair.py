"""Delta-scoped repair of complementary information.

A full complementary precomputation runs one whole-graph search per border
node of every disconnection set.  After a single edge change that is almost
always wasted work: the paper's locality argument (Sec. 2.1) says the change
can only affect the fragment that absorbed it and the disconnection sets
whose *whole-graph* border-to-border paths run through the changed edge.

:class:`ComplementaryRepairer` makes that argument operational and **exact**
for the two standard semirings:

* for an **insert** (or a weight decrease) of edge ``u -> v``, a stored value
  ``(a, b)`` can only improve when the composite ``dist(a, u) + w +
  dist(v, b)`` beats it — one backward and one forward kernel search from the
  changed edge decide this for *every* border pair at once,
* for a **delete** (or a weight increase), a stored value can only degrade
  when its optimal path ran through the edge, i.e. when the same composite
  (in the *old* graph, at the *old* weight) attains the stored value,
* the affected **rows** (one border source of one disconnection set) are then
  recomputed with exactly the
  :func:`~repro.disconnection.complementary.border_values_from` kernel the
  full precomputation uses, so repaired values are identical to what a
  from-scratch rebuild would produce.

When the catalog stores route expansions (``store_paths=True``), the same
row recomputation repairs them: the predecessor array of the repair search
rebuilds every stored path of the row, and the suspect probe's tolerance
band already marks rows whose *value* survives a delete through an
equal-cost alternative but whose stored node sequence ran through the
changed edge — so a repaired path is always realisable in the new graph.

Everything else — every row the composite test clears — is provably
unaffected and is left untouched, which is what keeps the other fragments'
compact states object-identical across an update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..closure.kernels import (
    array_dijkstra,
    bitset_reachable,
    ids_to_mask,
    reconstruct_id_path,
)
from ..closure.semiring import Semiring
from ..disconnection.complementary import ComplementaryInformation, border_values_from
from ..graph.compact import CompactGraph
from .delta import EdgeChange

Node = Hashable
FragmentPair = Tuple[int, int]
BorderSets = Mapping[FragmentPair, FrozenSet[Node]]

REPAIRABLE_SEMIRINGS = ("shortest_path", "reachability")

# Rows whose composite test lands within this tolerance of the stored value
# are recomputed rather than trusted: a false positive only costs one spare
# kernel search (the recomputed row comes back unchanged), while a false
# negative would leave a stale value behind.
_REL_TOLERANCE = 1e-9
_ABS_TOLERANCE = 1e-12


def _tolerance(value: float) -> float:
    return _ABS_TOLERANCE + _REL_TOLERANCE * abs(value)


@dataclass
class RepairReport:
    """Accounting of one delta-scoped repair pass.

    Attributes:
        pairs_changed: disconnection-set pairs whose stored values actually
            changed (their fragments' shortcut sets are stale).
        rows_recomputed: border-source rows re-searched.
        searches: whole-graph kernel searches run (suspect probes + rows).
    """

    pairs_changed: Set[FragmentPair] = field(default_factory=set)
    rows_recomputed: int = 0
    searches: int = 0


class ComplementaryRepairer:
    """Repairs :class:`ComplementaryInformation` in place after edge changes.

    Args:
        semiring: the path problem; only the two standard semirings are
            supported (custom semirings fall back to a full rebuild upstream).

    Raises:
        ValueError: for an unsupported semiring.
    """

    def __init__(self, semiring: Semiring) -> None:
        if semiring.name not in REPAIRABLE_SEMIRINGS:
            raise ValueError(
                f"incremental complementary repair supports the {REPAIRABLE_SEMIRINGS} "
                f"semirings only, got {semiring.name!r}"
            )
        self._semiring = semiring

    # -------------------------------------------------------- suspect probes

    def affected_sources_before(
        self,
        info: ComplementaryInformation,
        old_graph: CompactGraph,
        changes: Iterable[EdgeChange],
        border_sets: BorderSets,
        report: Optional[RepairReport] = None,
    ) -> Dict[FragmentPair, Set[Node]]:
        """Return, per pair, the border sources whose values may *degrade*.

        Must run against the **pre-change** graph: a stored value is suspect
        exactly when the deleted (or up-weighted) edge lies on one of its old
        optimal paths, which only the old graph can witness.
        """
        suspects: Dict[FragmentPair, Set[Node]] = {}
        for change in changes:
            if change.op == "insert":
                continue
            if change.op == "reweight":
                if self._semiring.name == "reachability":
                    continue  # weights are invisible to reachability
                if change.old_weight is None or change.weight <= change.old_weight:
                    continue  # a decrease can only improve values
                edge_weight = change.old_weight
            else:
                edge_weight = change.old_weight if change.old_weight is not None else 0.0
            probe = self._probe(old_graph, change.source, change.target, border_sets, report)
            if probe is None:
                continue
            for pair, border in border_sets.items():
                stored = info.values.get(pair, {})
                if not stored:
                    continue
                marked = suspects.setdefault(pair, set())
                for a in border:
                    if a in marked:
                        continue
                    through_a = probe.to_edge(old_graph, a)
                    if through_a is None:
                        continue
                    for b in border:
                        if b == a or (a, b) not in stored:
                            continue
                        through_b = probe.from_edge(old_graph, b)
                        if through_b is None:
                            continue
                        if self._semiring.name == "reachability":
                            marked.add(a)
                            break
                        candidate = through_a + edge_weight + through_b
                        incumbent = float(stored[(a, b)])
                        if candidate <= incumbent + _tolerance(incumbent):
                            marked.add(a)
                            break
        return {pair: sources for pair, sources in suspects.items() if sources}

    def affected_sources_after(
        self,
        info: ComplementaryInformation,
        new_graph: CompactGraph,
        changes: Iterable[EdgeChange],
        border_sets: BorderSets,
        report: Optional[RepairReport] = None,
    ) -> Dict[FragmentPair, Set[Node]]:
        """Return, per pair, the border sources whose values may *improve*.

        Runs against the **post-change** graph: a value improves exactly when
        the new optimal path uses the inserted (or down-weighted) edge, and
        then ``dist(a, u) + w + dist(v, b)`` in the new graph *is* that
        optimum.
        """
        improved: Dict[FragmentPair, Set[Node]] = {}
        for change in changes:
            if change.op == "delete":
                continue
            if change.op == "reweight":
                if self._semiring.name == "reachability":
                    continue
                if change.old_weight is not None and change.weight >= change.old_weight:
                    continue  # an increase was handled by the suspect probe
            probe = self._probe(new_graph, change.source, change.target, border_sets, report)
            if probe is None:
                continue
            for pair, border in border_sets.items():
                stored = info.values.get(pair, {})
                marked = improved.setdefault(pair, set())
                for a in border:
                    if a in marked:
                        continue
                    through_a = probe.to_edge(new_graph, a)
                    if through_a is None:
                        continue
                    for b in border:
                        if b == a:
                            continue
                        through_b = probe.from_edge(new_graph, b)
                        if through_b is None:
                            continue
                        incumbent = stored.get((a, b))
                        if incumbent is None:
                            marked.add(a)
                            break
                        if self._semiring.name == "reachability":
                            continue  # already reachable: nothing to improve
                        candidate = through_a + change.weight + through_b
                        if candidate < float(incumbent) + _tolerance(float(incumbent)):
                            marked.add(a)
                            break
        return {pair: sources for pair, sources in improved.items() if sources}

    # --------------------------------------------------------- recomputation

    def recompute_rows(
        self,
        info: ComplementaryInformation,
        graph: CompactGraph,
        rows: Mapping[FragmentPair, Set[Node]],
        border_sets: BorderSets,
        report: RepairReport,
    ) -> None:
        """Re-search the given border-source rows on the post-change graph.

        Each row is recomputed with the same kernel the full precomputation
        uses, then swapped into ``info.values`` in place; pairs whose values
        actually moved are recorded in the report.
        """
        store_paths = bool(info.paths)
        for pair in sorted(rows):
            border = border_sets.get(pair)
            if border is None:
                continue  # the pair vanished structurally; handled elsewhere
            pair_values = info.values.setdefault(pair, {})
            for source in sorted(rows[pair], key=repr):
                values, work, predecessors = border_values_from(
                    graph, source, set(border), self._semiring
                )
                info.precompute_work += work
                report.rows_recomputed += 1
                report.searches += 1
                old_row = {
                    b: value for (a, b), value in pair_values.items() if a == source
                }
                new_row = {b: value for b, value in values.items() if b != source}
                if new_row != old_row:
                    report.pairs_changed.add(pair)
                    for b in old_row:
                        del pair_values[(source, b)]
                    for b, value in new_row.items():
                        pair_values[(source, b)] = value
                if store_paths:
                    pair_paths = info.paths.setdefault(pair, {})
                    old_paths = {
                        b: path for (a, b), path in pair_paths.items() if a == source
                    }
                    new_paths = self._row_paths(graph, source, new_row, predecessors)
                    if new_paths != old_paths:
                        # A path change invalidates cached route expansions
                        # even when the row's values are untouched (an
                        # equal-cost alternative replaced a severed route).
                        report.pairs_changed.add(pair)
                        for b in old_paths:
                            del pair_paths[(source, b)]
                        for b, path in new_paths.items():
                            pair_paths[(source, b)] = path

    def recompute_pair(
        self,
        info: ComplementaryInformation,
        graph: CompactGraph,
        pair: FragmentPair,
        border: FrozenSet[Node],
        report: RepairReport,
    ) -> None:
        """Recompute one disconnection set wholesale (its membership changed)."""
        store_paths = bool(info.paths)
        old_values = info.values.get(pair, {})
        new_values: Dict[Tuple[Node, Node], object] = {}
        new_paths: Dict[Tuple[Node, Node], List[Node]] = {}
        for source in sorted(border, key=repr):
            values, work, predecessors = border_values_from(
                graph, source, set(border), self._semiring
            )
            info.precompute_work += work
            report.rows_recomputed += 1
            report.searches += 1
            row = {target: value for target, value in values.items() if target != source}
            for target, value in row.items():
                new_values[(source, target)] = value
            if store_paths:
                for target, path in self._row_paths(graph, source, row, predecessors).items():
                    new_paths[(source, target)] = path
        if new_values != old_values:
            report.pairs_changed.add(pair)
        info.values[pair] = new_values
        if store_paths:
            if info.paths.get(pair) != new_paths:
                report.pairs_changed.add(pair)
            info.paths[pair] = new_paths

    def remove_pair(
        self, info: ComplementaryInformation, pair: FragmentPair, report: RepairReport
    ) -> None:
        """Drop a disconnection set that no longer exists."""
        had_values = info.values.pop(pair, None)
        had_paths = info.paths.pop(pair, None)
        if had_values or had_paths:
            report.pairs_changed.add(pair)

    def _row_paths(
        self,
        graph: CompactGraph,
        source: Node,
        new_row: Mapping[Node, object],
        predecessors: Optional[List[int]],
    ) -> Dict[Node, List[Node]]:
        """Rebuild one border source's stored paths from a repair search.

        ``predecessors`` is the array the shortest-path kernel produced for
        exactly the values in ``new_row`` — the rebuilt node sequences are
        realisable in the current graph by construction.  Reachability
        searches carry no predecessors and store no paths; they return an
        empty mapping.
        """
        paths: Dict[Node, List[Node]] = {}
        if predecessors is None:
            return paths
        source_id = graph.try_node_id(source)
        if source_id < 0:
            return paths
        for target in new_row:
            target_id = graph.try_node_id(target)
            if target_id < 0:
                continue
            try:
                path_ids = reconstruct_id_path(predecessors, source_id, target_id)
            except ValueError:
                continue
            paths[target] = [graph.node_of(node_id) for node_id in path_ids]
        return paths

    # -------------------------------------------------------------- internals

    def _probe(
        self,
        graph: CompactGraph,
        source: Node,
        target: Node,
        border_sets: BorderSets,
        report: Optional[RepairReport],
    ) -> Optional["_EdgeProbe"]:
        """Run the two whole-graph searches anchored at one changed edge."""
        source_id = graph.try_node_id(source)
        target_id = graph.try_node_id(target)
        if source_id < 0 or target_id < 0:
            return None
        border_ids = {
            node_id
            for border in border_sets.values()
            for node in border
            for node_id in (graph.try_node_id(node),)
            if node_id >= 0
        }
        if report is not None:
            report.searches += 2
        if self._semiring.name == "reachability":
            border_mask = ids_to_mask(border_ids)
            reaches_edge = bitset_reachable(graph, source_id, stop_mask=border_mask, backward=True)
            reached_from_edge = bitset_reachable(graph, target_id, stop_mask=border_mask)
            return _EdgeProbe(reaches_edge=reaches_edge, reached_from_edge=reached_from_edge)
        to_edge, _, _ = array_dijkstra(graph, source_id, target_ids=border_ids, backward=True)
        from_edge, _, _ = array_dijkstra(graph, target_id, target_ids=border_ids)
        return _EdgeProbe(to_edge_dist=to_edge, from_edge_dist=from_edge)


@dataclass
class _EdgeProbe:
    """The two search results anchored at a changed edge ``u -> v``.

    ``to_edge`` answers "how does border node ``a`` get *to* ``u``?" and
    ``from_edge`` answers "how does ``v`` get to border node ``b``?" — their
    composition over the edge is the only way a change can touch a stored
    border-to-border value.
    """

    to_edge_dist: Optional[List[float]] = None
    from_edge_dist: Optional[List[float]] = None
    reaches_edge: int = 0
    reached_from_edge: int = 0

    def to_edge(self, graph: CompactGraph, node: Node) -> Optional[float]:
        """Distance (or 0.0 for reachability) from ``node`` to the edge tail."""
        node_id = graph.try_node_id(node)
        if node_id < 0:
            return None
        if self.to_edge_dist is not None:
            distance = self.to_edge_dist[node_id]
            return distance if distance != inf else None
        return 0.0 if (self.reaches_edge >> node_id) & 1 else None

    def from_edge(self, graph: CompactGraph, node: Node) -> Optional[float]:
        """Distance (or 0.0 for reachability) from the edge head to ``node``."""
        node_id = graph.try_node_id(node)
        if node_id < 0:
            return None
        if self.from_edge_dist is not None:
            distance = self.from_edge_dist[node_id]
            return distance if distance != inf else None
        return 0.0 if (self.reached_from_edge >> node_id) & 1 else None
