"""Incremental maintenance: updates proportional to the paper's locality argument.

The paper names "the careful treatment of updates" as the second cost of the
disconnection-set approach (Sec. 2.1): a change touches one fragment and the
disconnection sets it borders — never the whole database.  This package makes
the serving stack honour that contract:

* :mod:`~repro.incremental.versions` — per-fragment :class:`VersionVector`
  replacing the single scalar catalog version,
* :mod:`~repro.incremental.delta` — the :class:`DeltaLog` of applied changes,
* :mod:`~repro.incremental.repair` — delta-scoped, exact repair of the
  complementary information (suspect probes + row recomputation),
* :mod:`~repro.incremental.maintainer` — the :class:`IncrementalMaintainer`
  that patches a live engine's catalog in place and reports which fragments
  actually moved.
"""

from .delta import DeltaLog, DeltaRecord, EdgeChange
from .maintainer import (
    AppliedDelta,
    IncrementalFallback,
    IncrementalMaintainer,
    supports_incremental,
)
from .repair import REPAIRABLE_SEMIRINGS, ComplementaryRepairer, RepairReport
from .versions import VersionVector

__all__ = [
    "AppliedDelta",
    "ComplementaryRepairer",
    "DeltaLog",
    "DeltaRecord",
    "EdgeChange",
    "IncrementalFallback",
    "IncrementalMaintainer",
    "REPAIRABLE_SEMIRINGS",
    "RepairReport",
    "supports_incremental",
    "VersionVector",
]
