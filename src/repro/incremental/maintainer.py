"""The incremental maintainer: updates proportional to their locality.

Without this subsystem an :class:`~repro.disconnection.maintenance.UpdateEvent`
is catastrophic: the engine is torn down, every disconnection set's
complementary information is recomputed from scratch, every fragment's compact
CSR state is rebuilt and re-shipped.  :class:`IncrementalMaintainer` replaces
that with the paper's locality contract — a change touches one fragment and
the disconnection sets it borders:

1. **before** the base graph mutates, it probes the *old* graph for the
   stored border-to-border values whose optimal paths ran through the changed
   edge (the only values a delete or weight increase can degrade),
2. the database's resident whole-graph compact mirror absorbs the edge delta
   as an O(delta) overlay splice (the same mirror backs precompute and live
   refragmentation),
3. disconnection sets whose *membership* changed (a fragment gained or lost a
   node) are recomputed wholesale; for everything else only the probed rows
   plus the rows an insert provably improves are re-searched,
4. the engine's catalog swaps in the refreshed sites for exactly the dirty
   fragments — every other site object, including its compact kernels, stays
   identical,
5. the caller receives an :class:`AppliedDelta` naming the dirty fragments
   and their compact deltas, which drives per-fragment version bumps, scoped
   cache eviction, and worker re-pinning upstream.

When an update falls outside the supported envelope (custom semiring, a
fragment emptied out, refragmentation) the maintainer raises
:class:`IncrementalFallback` and the database performs the classic full
rebuild — correctness never depends on the fast path applying.  Stored
complementary paths (``store_paths=True``) *are* inside the envelope: the
repairer rebuilds the route expansions of every recomputed row from the same
predecessor arrays that refresh the values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..disconnection.engine import DisconnectionSetEngine
from ..fragmentation import Fragmentation
from ..graph.compact import CompactDelta
from .delta import EdgeChange
from .repair import REPAIRABLE_SEMIRINGS, ComplementaryRepairer, RepairReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..disconnection.maintenance import FragmentedDatabase

Node = Hashable
FragmentPair = Tuple[int, int]


class IncrementalFallback(Exception):
    """The update cannot be absorbed in place; do a full rebuild instead."""


@dataclass(frozen=True)
class AppliedDelta:
    """The outcome of one incrementally absorbed update.

    Attributes:
        kind: the high-level update kind (``insert`` / ``delete`` /
            ``reweight``).
        changes: the elementary edge changes applied.
        dirty_fragments: fragments whose site state was rebuilt (sorted).
        pairs_changed: disconnection-set pairs whose complementary values or
            membership changed.
        site_deltas: per dirty fragment, the compact delta its augmented
            graph absorbed (``None`` when that site had no compact form yet)
            — the scoped payload the worker pool re-pins with.
        report: the repair accounting (rows recomputed, searches run).
    """

    kind: str
    changes: Tuple[EdgeChange, ...]
    dirty_fragments: Tuple[int, ...]
    pairs_changed: Tuple[FragmentPair, ...]
    site_deltas: Dict[int, Optional[CompactDelta]] = field(default_factory=dict)
    report: RepairReport = field(default_factory=RepairReport)


def supports_incremental(database: "FragmentedDatabase") -> bool:
    """Return whether the database's configuration fits the fast path.

    The repair machinery covers the two standard semirings, with or without
    stored route expansions (``store_paths=True`` rows are re-derived from
    the repair searches' predecessor arrays); custom semirings take the
    classic full-rebuild route.
    """
    engine = database.current_engine()
    if engine is None:
        return False
    if engine.semiring.name not in REPAIRABLE_SEMIRINGS:
        return False
    return True


class IncrementalMaintainer:
    """Keeps one engine's catalog consistent under edge updates, in place.

    Args:
        database: the owning fragmented database (its graph is the source of
            truth; the maintainer mirrors it as a whole-graph
            :class:`CompactGraph` for the repair searches).
        engine: the live engine to maintain; a maintainer is bound to one
            engine generation and is discarded with it.
    """

    def __init__(self, database: "FragmentedDatabase", engine: DisconnectionSetEngine) -> None:
        self._database = database
        self._engine = engine
        self._repairer = ComplementaryRepairer(engine.semiring)
        self._fragmentation = engine.catalog.fragmentation
        # The database's long-lived resident mirror — shared with precompute
        # and LiveRefragmenter, kept in sync by the database after every
        # mutation (an O(delta) overlay splice, never a rebuild).
        self._full_compact = database.compact_mirror()
        self._pending_suspects: Optional[Dict[FragmentPair, Set[Node]]] = None
        self._pending_report: Optional[RepairReport] = None

    @property
    def engine(self) -> DisconnectionSetEngine:
        """The engine generation this maintainer is bound to."""
        return self._engine

    # ------------------------------------------------------------- lifecycle

    def begin(self, changes: List[EdgeChange]) -> None:
        """Probe the pre-change graph; must run before the base graph mutates.

        Collects the border-source rows whose stored values might degrade
        (deletes and weight increases can only be witnessed against the old
        graph).
        """
        report = RepairReport()
        self._pending_suspects = self._repairer.affected_sources_before(
            self._engine.catalog.complementary,
            self._full_compact,
            changes,
            self._fragmentation.disconnection_sets(),
            report,
        )
        self._pending_report = report

    def complete(self, kind: str, changes: List[EdgeChange]) -> AppliedDelta:
        """Repair and re-point everything after the base graph mutated.

        Raises:
            IncrementalFallback: when the post-change state falls outside the
                supported envelope (a fragment emptied out and fragment ids
                would shift); the caller must do a full rebuild.
        """
        if self._pending_suspects is None or self._pending_report is None:
            raise IncrementalFallback("complete() called without a matching begin()")
        suspects, report = self._pending_suspects, self._pending_report
        self._pending_suspects = None
        self._pending_report = None

        new_fragmentation = self._database.fragmentation()
        if new_fragmentation.fragment_count() != self._fragmentation.fragment_count():
            raise IncrementalFallback(
                "a fragment emptied out; fragment ids would shift under renumbering"
            )

        # The shared whole-graph mirror already absorbed the edge delta: the
        # database splices it in right after mutating the base graph, before
        # calling complete().

        info = self._engine.catalog.complementary
        old_sets = self._fragmentation.disconnection_sets()
        new_sets = new_fragmentation.disconnection_sets()

        # Structural repair: disconnection sets whose membership changed are
        # recomputed wholesale (all of them involve the updated fragment —
        # only its node set can have moved).
        structural: Set[FragmentPair] = set()
        for pair in set(old_sets) | set(new_sets):
            if old_sets.get(pair) != new_sets.get(pair):
                structural.add(pair)
                if pair in new_sets:
                    self._repairer.recompute_pair(
                        info, self._full_compact, pair, new_sets[pair], report
                    )
                else:
                    self._repairer.remove_pair(info, pair, report)
                report.pairs_changed.add(pair)  # membership moved: chains differ

        # Value repair for the surviving pairs: the probed degradations plus
        # whatever the post-change graph says an insert improved.
        stable_sets = {pair: border for pair, border in new_sets.items() if pair not in structural}
        rows: Dict[FragmentPair, Set[Node]] = {
            pair: set(sources) for pair, sources in suspects.items() if pair in stable_sets
        }
        improvements = self._repairer.affected_sources_after(
            info, self._full_compact, changes, stable_sets, report
        )
        for pair, sources in improvements.items():
            rows.setdefault(pair, set()).update(sources)
        self._repairer.recompute_rows(info, self._full_compact, rows, stable_sets, report)

        # Scope: the owning fragments plus every fragment whose shortcut set
        # (or disconnection-set membership) changed.
        dirty: Set[int] = {change.fragment_id for change in changes if change.fragment_id >= 0}
        for i, j in report.pairs_changed:
            dirty.add(i)
            dirty.add(j)
        dirty_sorted = sorted(dirty)
        site_deltas = self._engine.apply_incremental_update(
            new_fragmentation, dirty_fragments=dirty_sorted
        )
        self._fragmentation = new_fragmentation
        return AppliedDelta(
            kind=kind,
            changes=tuple(changes),
            dirty_fragments=tuple(dirty_sorted),
            pairs_changed=tuple(sorted(report.pairs_changed)),
            site_deltas=site_deltas,
            report=report,
        )


