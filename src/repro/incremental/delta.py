"""The delta log: an ordered record of applied base-relation changes.

Every mutation of a :class:`~repro.disconnection.maintenance.FragmentedDatabase`
appends one :class:`DeltaRecord` here — which edge changed, which fragments'
compact state had to be touched, whether the change was absorbed incrementally
or forced a full rebuild, and the version vector after the change.  The log is
the subsystem's observability surface (the update benchmark reads its
counters) and the replay substrate: ``records_since`` returns exactly the
tail a consumer that saw sequence ``n`` still has to apply.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional, Sequence, Tuple

from ..graph.compact import CompactDelta

Node = Hashable


@dataclass(frozen=True)
class EdgeChange:
    """One elementary edge mutation, as the repair machinery consumes it.

    Attributes:
        op: ``"insert"``, ``"delete"`` or ``"reweight"``.
        source, target: the edge's endpoints.
        weight: the new weight (``insert`` / ``reweight``; meaningless for
            ``delete``).
        old_weight: the pre-change weight (``delete`` / ``reweight``; ``None``
            for ``insert``) — the delete/increase repair searches the old
            graph with it.
        fragment_id: the fragment that owns the change.
    """

    op: str
    source: Node
    target: Node
    weight: float = 0.0
    old_weight: Optional[float] = None
    fragment_id: int = -1


def changes_to_delta(changes: Sequence[EdgeChange]) -> CompactDelta:
    """Fold elementary edge changes into one compact-graph delta.

    This is the bridge between the update front-end's change records and the
    O(delta) overlay splice of :meth:`CompactGraph.apply_delta`: the database
    keeps its resident whole-graph mirror in sync by folding every applied
    change list through here.
    """
    inserts: List[Tuple[Node, Node, float]] = []
    deletes: List[Tuple[Node, Node]] = []
    reweights: List[Tuple[Node, Node, float]] = []
    for change in changes:
        if change.op == "insert":
            inserts.append((change.source, change.target, change.weight))
        elif change.op == "delete":
            deletes.append((change.source, change.target))
        else:
            reweights.append((change.source, change.target, change.weight))
    return CompactDelta(
        inserts=tuple(inserts), deletes=tuple(deletes), reweights=tuple(reweights)
    )


@dataclass(frozen=True)
class DeltaRecord:
    """One applied update, as the delta log stores it.

    Attributes:
        sequence: position in the log (1-based, monotonically increasing
            across evictions of old records).
        kind: the high-level update kind (``insert`` / ``delete`` /
            ``reweight`` / ``refragment``).
        changes: the elementary edge changes the update decomposed into.
        dirty_fragments: fragments whose compact state was rebuilt.
        incremental: whether the change was absorbed in place (``False``
            means the engine fell back to a full rebuild).
        versions: the per-fragment version vector *after* the change.
        epoch: the vector epoch after the change.
        layout: for ``refragment`` records, the complete new fragment edge
            lists, already aligned to the post-refragment fragment ids —
            what lets a replica replay *across* a reorganisation instead of
            resnapshotting (``None`` on ordinary edge-change records).
        algorithm: for ``refragment`` records, the fragmentation algorithm
            that produced the layout.
    """

    sequence: int
    kind: str
    changes: Tuple[EdgeChange, ...] = ()
    dirty_fragments: Tuple[int, ...] = ()
    incremental: bool = False
    versions: Dict[int, int] = field(default_factory=dict)
    epoch: int = 0
    layout: Optional[Tuple[Tuple[Tuple[Node, Node], ...], ...]] = None
    algorithm: Optional[str] = None


class DeltaLog:
    """A bounded, append-only log of :class:`DeltaRecord` entries.

    Args:
        capacity: how many records to retain (older records are dropped;
            ``records_since`` reports when a consumer fell off the tail).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"delta log capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._records: Deque[DeltaRecord] = deque(maxlen=capacity)
        self._next_sequence = 1
        self.incremental_applied = 0
        self.full_rebuilds = 0

    # ------------------------------------------------------------- appending

    def append(
        self,
        kind: str,
        *,
        changes: Tuple[EdgeChange, ...] = (),
        dirty_fragments: Tuple[int, ...] = (),
        incremental: bool = False,
        versions: Optional[Dict[int, int]] = None,
        epoch: int = 0,
        layout: Optional[Tuple[Tuple[Tuple[Node, Node], ...], ...]] = None,
        algorithm: Optional[str] = None,
    ) -> DeltaRecord:
        """Append one applied update and return its record."""
        record = DeltaRecord(
            sequence=self._next_sequence,
            kind=kind,
            changes=changes,
            dirty_fragments=tuple(dirty_fragments),
            incremental=incremental,
            versions=dict(versions or {}),
            epoch=epoch,
            layout=layout,
            algorithm=algorithm,
        )
        self._next_sequence += 1
        self._records.append(record)
        if incremental:
            self.incremental_applied += 1
        else:
            self.full_rebuilds += 1
        return record

    def resume_at(self, sequence: int) -> None:
        """Continue numbering after ``sequence`` (snapshot-restore alignment).

        A database restored from a snapshot taken at delta sequence ``n``
        calls this so its own log continues at ``n + 1`` — replayed tail
        records then land on exactly the sequence numbers they carry in the
        live log, and a later ``records_since`` hand-off stays consistent.

        Raises:
            ValueError: when the log already holds records (renumbering an
                active log would corrupt every consumer's position).
        """
        if self._records:
            raise ValueError("cannot resume a delta log that already holds records")
        if sequence < 0:
            raise ValueError(f"delta sequence must be non-negative, got {sequence}")
        self._next_sequence = sequence + 1

    # -------------------------------------------------------------- reading

    def __len__(self) -> int:
        return len(self._records)

    @property
    def capacity(self) -> int:
        """The maximum number of retained records."""
        return self._capacity

    @property
    def last_sequence(self) -> int:
        """The sequence number of the newest record (0 when empty)."""
        return self._next_sequence - 1

    def records(self) -> List[DeltaRecord]:
        """Return the retained records, oldest first."""
        return list(self._records)

    def last(self) -> Optional[DeltaRecord]:
        """Return the newest record, or ``None`` when the log is empty."""
        return self._records[-1] if self._records else None

    def records_since(self, sequence: int) -> List[DeltaRecord]:
        """Return every retained record with a sequence greater than ``sequence``.

        Raises:
            ValueError: when records after ``sequence`` are not retained —
                either evicted from a full log, or never held at all by a
                log that :meth:`resume_at` fast-forwarded past them (a
                restored database's log knows *of* sequences up to its
                resume point without holding them).  Either way the consumer
                fell off the tail and must resynchronise from a snapshot
                instead of replaying.
        """
        if sequence < self.last_sequence:
            oldest_retained = (
                self._records[0].sequence if self._records else self._next_sequence
            )
            if sequence < oldest_retained - 1:
                raise ValueError(
                    f"records {sequence + 1}..{oldest_retained - 1} are not retained "
                    f"in the delta log (oldest retained is "
                    f"{oldest_retained if self._records else 'none'}); resynchronise "
                    "from a snapshot"
                )
        return [record for record in self._records if record.sequence > sequence]

    def __repr__(self) -> str:
        return (
            f"DeltaLog(records={len(self._records)}, last={self.last_sequence}, "
            f"incremental={self.incremental_applied}, full={self.full_rebuilds})"
        )
