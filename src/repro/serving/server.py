"""The preemptive network serving tier: asyncio TCP over ``QueryService``.

:class:`ClosureServer` is the network front-end ROADMAP item 1 asks for.  It
speaks a newline-delimited JSON protocol (one request object in, one or more
response objects out, every object on its own line) over plain TCP, and
composes the serving subsystem's parts:

* the shared grammar of :mod:`repro.serving.protocol` — the same command
  set the ``repro serve`` stdin loop validates against;
* :class:`~repro.serving.admission.AdmissionController` — bounded quantum
  slots, a bounded wait queue with deadline enforcement, and per-client
  token buckets, so saturation answers *reject with retry-after* instead of
  collapsing, and one heavy client throttles only itself;
* :class:`~repro.serving.preemption.PreemptableClosureIterator` — ``closure``
  requests (single-source or whole-graph ``closure *``) run in bounded
  quanta over the whole-graph compact mirror, stream result pages as they
  are produced, and after the per-call quantum budget (or the request
  deadline) suspend into a :class:`~repro.serving.preemption.SavedQueryState`
  parked in the :class:`~repro.serving.continuations.ContinuationStore`;
  the client resumes with the returned continuation token — possibly on a
  new connection — and the concatenated pages are identical to an
  uninterrupted run;
* the existing :class:`~repro.service.server.QueryService` — point queries,
  batches and updates go through the service untouched, so they keep the
  result cache, the batch planner, and placement-aware dispatch through the
  routed :class:`~repro.service.pool.PlacedWorkerPool`.

Because the server is a single cooperative event loop, the quantum *is* the
fairness mechanism: a whole-graph closure occupies the loop for at most one
quantum before control returns to waiting point queries — exactly the
web-preemption contract (SaGe) that keeps tail latency bounded under a mixed
heavy/light workload.  ``ServingConfig(preemption=False)`` disables the
quantum (closures run to completion in one turn); the latency benchmark uses
it as the degraded baseline.

Everything observable lands in the service's shared metrics registry under
``repro_serving_*`` (request/quanta/page counters, quantum-duration and
quanta-per-call histograms, live queue-depth and active-request gauges,
per-client dispatch counters) and every quantum runs under a tracer span.

Every request also carries a **distributed trace context**: the server
adopts a client ``traceparent`` option (or mints a fresh W3C trace id),
opens a per-segment root span that the admission wait, the service's own
spans, and the pool's worker kernel spans all land under, stamps the
context into suspended ``SavedQueryState``\\ s so a resumed continuation
rejoins its original trace, and echoes the trace id on every response.
Spans never stay open across an ``await`` — the tracer's stack is shared
by every connection handler on the loop — so each synchronous segment
(request open, each quantum) files its own trace record and
``Tracer.assemble`` merges them.

``healthz`` / ``readyz`` report pool liveness, queue saturation, the
catalog version, and the :class:`~repro.observability.slo.SLOMonitor`'s
burn-rate state; ``profile`` exposes the continuous sampling profiler
(enabled with ``ServingConfig.profile_interval``).

With ``idle_assess_seconds`` set, the server also moves auto-refragmentation
assessment off the update hot path: a background task calls
:meth:`QueryService.auto_refragment_now` only while no request is active —
redraws happen in quiet moments, never inside an update.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..exceptions import NoChainError, ReproError
from ..graph.compact import CompactGraph
from ..observability import (
    SamplingProfiler,
    SLODefinition,
    SLOMonitor,
    TraceContext,
    default_slos,
)
from ..refragmentation import RefragmentationAdvisor
from ..service import QueryService, WorkerPoolError
from .admission import AdmissionConfig, AdmissionController
from .continuations import ContinuationStore
from .preemption import (
    ALL_SOURCES,
    PreemptableClosureIterator,
    SavedQueryState,
    StaleStateError,
)
from .protocol import NETWORK, ProtocolError, Request, parse_json_request

__all__ = ["ClosureServer", "ServingConfig"]

# The shared serve-loop error path: everything a bad request may legitimately
# raise.  Both front-ends catch exactly this set; anything else is a bug and
# must surface.
SERVICE_ERRORS = (ReproError, ValueError, OSError, WorkerPoolError)

_QUANTA_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0)


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the network serving tier.

    Attributes:
        host / port: bind address (port 0 picks an ephemeral port).
        quantum_seconds: wall-clock budget of one evaluation quantum.
        page_size: maximum result rows per streamed page.
        quanta_per_call: quanta one ``closure``/``resume`` call may run
            before suspending into a continuation token (the web-preemption
            unit of work).
        preemption: ``False`` disables quanta entirely — closures run to
            completion in one event-loop turn (the benchmark's degraded
            baseline, never a production setting).
        continuation_capacity: suspended states parked at once.
        idle_assess_seconds: when set, run the auto-refragmentation
            assessment on this background cadence while the server is idle
            (pair with ``QueryService(refragment_cadence="background")``).
        admission: the admission-control knobs.
        profile_interval: when set, run the continuous sampling profiler at
            this interval (seconds) against the serving thread; the
            ``profile`` command reports it.
        slos: the SLOs ``healthz``/``readyz`` evaluate (default:
            :func:`~repro.observability.slo.default_slos`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    quantum_seconds: float = 0.02
    page_size: int = 256
    quanta_per_call: int = 2
    preemption: bool = True
    continuation_capacity: int = 256
    idle_assess_seconds: Optional[float] = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    profile_interval: Optional[float] = None
    slos: Optional[Tuple[SLODefinition, ...]] = None

    def __post_init__(self) -> None:
        if self.quantum_seconds <= 0:
            raise ValueError(f"quantum_seconds must be positive, got {self.quantum_seconds}")
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.quanta_per_call <= 0:
            raise ValueError(f"quanta_per_call must be positive, got {self.quanta_per_call}")
        if self.profile_interval is not None and self.profile_interval <= 0:
            raise ValueError(
                f"profile_interval must be positive, got {self.profile_interval}"
            )


class _Connection:
    """Per-connection state: the client identity continuations follow."""

    __slots__ = ("identity", "identified")

    def __init__(self, identity: str) -> None:
        self.identity = identity
        self.identified = False


class ClosureServer:
    """An asyncio TCP front-end serving one :class:`QueryService`.

    Args:
        service: the prepared query service to serve.
        config: the :class:`ServingConfig` knobs.
    """

    def __init__(self, service: QueryService, config: Optional[ServingConfig] = None) -> None:
        self.service = service
        self.config = config or ServingConfig()
        registry = service.registry
        self.admission = AdmissionController(self.config.admission, registry=registry)
        self.continuations = ContinuationStore(self.config.continuation_capacity)
        self.slo_monitor = SLOMonitor(registry, self.config.slos or default_slos())
        self.profiler: Optional[SamplingProfiler] = (
            SamplingProfiler(self.config.profile_interval, tracer=service.tracer)
            if self.config.profile_interval is not None
            else None
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._idle_task: Optional[asyncio.Task] = None
        self._waiters: Deque[Tuple[asyncio.Future, str]] = deque()
        self._connection_tasks: set = set()
        self._connection_seq = 0
        # ------------------------------------------------------- telemetry
        self._requests = registry.counter(
            "repro_serving_requests_total",
            "Network requests served, by op and outcome.",
            labelnames=("op", "outcome"),
        )
        self._connections = registry.counter(
            "repro_serving_connections_total", "TCP connections accepted."
        )
        self._disconnects = registry.counter(
            "repro_serving_disconnects_total",
            "Connections that dropped mid-request or mid-stream.",
        )
        self._active_connections = registry.gauge(
            "repro_serving_active_connections", "Connections currently open."
        )
        self._quanta = registry.counter(
            "repro_serving_quanta_total", "Evaluation quanta executed."
        )
        self._quantum_seconds = registry.histogram(
            "repro_serving_quantum_seconds",
            "Wall-clock duration of each evaluation quantum.",
        )
        self._call_quanta = registry.histogram(
            "repro_serving_call_quanta",
            "Quanta one closure/resume call ran before finishing or suspending.",
            buckets=_QUANTA_BUCKETS,
        )
        self._pages = registry.counter(
            "repro_serving_pages_total", "Result pages streamed to clients."
        )
        self._rows = registry.counter(
            "repro_serving_rows_total", "Closure result rows streamed to clients."
        )
        self._suspends = registry.counter(
            "repro_serving_suspends_total",
            "Closure calls suspended into a continuation token, by reason.",
            labelnames=("reason",),
        )
        self._resumes = registry.counter(
            "repro_serving_resumes_total", "Suspended queries resumed from a token."
        )
        self._stale = registry.counter(
            "repro_serving_stale_continuations_total",
            "Resume attempts rejected because the catalog version moved.",
        )
        self._saved_states = registry.gauge(
            "repro_serving_saved_states", "Suspended query states currently parked."
        )
        self._idle_assessments = registry.counter(
            "repro_serving_idle_assessments_total",
            "Background auto-refragmentation assessments run while idle, by outcome.",
            labelnames=("outcome",),
        )
        # Whole-graph compact mirror, rebuilt lazily per catalog version.
        self._mirror: Optional[CompactGraph] = None
        self._mirror_version: Optional[str] = None

    # -------------------------------------------------------------- lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        if self._server is not None:
            raise RuntimeError("the server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.idle_assess_seconds is not None:
            self._idle_task = asyncio.get_running_loop().create_task(self._idle_loop())
        if self.profiler is not None:
            # The event loop's thread is where every quantum runs.
            self.profiler.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("the server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Run until cancelled (:meth:`start` first when not yet started)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def aclose(self) -> None:
        """Stop accepting and shut the listener down (idempotent)."""
        if self.profiler is not None:
            self.profiler.stop()
        if self._idle_task is not None:
            self._idle_task.cancel()
            try:
                await self._idle_task
            except asyncio.CancelledError:
                pass
            self._idle_task = None
        if self._server is not None:
            self._server.close()
            # Reap live connection handlers: without this, shutting the loop
            # down mid-conversation leaves cancelled handler tasks whose
            # exceptions the streams machinery logs as noise.
            for task in list(self._connection_tasks):
                task.cancel()
            if self._connection_tasks:
                await asyncio.gather(*self._connection_tasks, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ClosureServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # ------------------------------------------------------------ connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connection_seq += 1
        peer = writer.get_extra_info("peername")
        identity = (
            f"{peer[0]}:{peer[1]}"
            if isinstance(peer, tuple) and len(peer) >= 2
            else f"conn-{self._connection_seq}"
        )
        connection = _Connection(identity)
        self._connection_tasks.add(asyncio.current_task())
        self._connections.inc()
        self._active_connections.set(self._active_connections.value() + 1)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    request = parse_json_request(json.loads(text), surface=NETWORK)
                except json.JSONDecodeError as error:
                    await self._send(writer, {"ok": False, "error": f"bad JSON: {error}"})
                    continue
                except ProtocolError as error:
                    await self._send(writer, {"ok": False, "error": str(error)})
                    continue
                if request.op in ("closure", "resume"):
                    await self._serve_closure(request, connection, writer)
                else:
                    response = await self._serve_simple(request, connection)
                    response.setdefault("id", request.option("id"))
                    await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            self._disconnects.inc()
        except asyncio.CancelledError:
            # Server shutdown while this connection was live: swallow the
            # cancellation so the streams machinery's completion callback
            # finds a cleanly-finished task, and fall through to cleanup.
            pass
        finally:
            if not connection.identified:
                # An anonymous client's parked suspensions die with its
                # connection — saved state never outlives a client the
                # server cannot recognise again.
                self.continuations.drop_client(connection.identity)
                self._saved_states.set(float(len(self.continuations)))
            self._active_connections.set(
                max(0.0, self._active_connections.value() - 1)
            )
            self._connection_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: Dict[str, object]) -> None:
        writer.write(json.dumps(payload, default=str).encode("utf-8") + b"\n")
        await writer.drain()

    # -------------------------------------------------------------- admission

    async def _acquire_slot(
        self, connection: _Connection, *, cost: float, deadline: float
    ) -> Optional[Dict[str, object]]:
        """Take an evaluation slot; returns a rejection response, or ``None``.

        A queued request waits on a future the next :meth:`_release_slot`
        resolves; waiting past the request deadline rejects with reason
        ``deadline`` (the queue spot is freed either way).
        """
        decision = self.admission.admit(connection.identity, cost=cost)
        if decision.status == "run":
            return None
        if decision.status == "reject":
            return {
                "ok": False,
                "rejected": True,
                "reason": decision.reason,
                "retry_after": round(decision.retry_after, 4),
                "error": f"admission rejected ({decision.reason}); "
                f"retry after {decision.retry_after:.3f}s",
            }
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append((future, connection.identity))
        try:
            await asyncio.wait_for(future, timeout=max(0.0, deadline - time.monotonic()))
        except asyncio.TimeoutError:
            self.admission.abandon_queued(connection.identity, reason="deadline")
            return {
                "ok": False,
                "rejected": True,
                "reason": "deadline",
                "retry_after": self.config.admission.retry_after,
                "error": "deadline expired while waiting for an evaluation slot",
            }
        return None

    def _release_slot(self, connection: _Connection) -> None:
        self.admission.finish(connection.identity)
        while self._waiters and self.admission.free_slots > 0:
            future, identity = self._waiters.popleft()
            if future.done():
                continue
            self.admission.start_queued(identity)
            future.set_result(None)
            break

    def _deadline_of(self, request: Request) -> float:
        timeout = request.option("timeout")
        seconds = (
            float(timeout)
            if isinstance(timeout, (int, float)) and float(timeout) > 0
            else self.config.admission.default_deadline
        )
        return time.monotonic() + seconds

    def _context_of(self, request: Request) -> TraceContext:
        """The request's trace context: adopted from ``traceparent``, or fresh.

        A malformed header degrades to a fresh trace — propagation is
        best-effort, never a reason to fail the request.
        """
        context = TraceContext.from_traceparent(request.option("traceparent"))
        return context if context is not None else self.service.tracer.new_context()

    # ---------------------------------------------------------- simple verbs

    async def _serve_simple(
        self, request: Request, connection: _Connection
    ) -> Dict[str, object]:
        op = request.op
        try:
            if op == "hello":
                previous = connection.identity
                connection.identity = str(request.args[0])
                connection.identified = True
                # States parked before the hello follow the client to its
                # durable identity, so an early suspension is not orphaned.
                if previous != connection.identity:
                    self.continuations.adopt(previous, connection.identity)
                self._requests.inc(op=op, outcome="ok")
                return {"ok": True, "client": connection.identity}
            if op == "ping":
                self._requests.inc(op=op, outcome="ok")
                return {"ok": True, "pong": True}
            if op == "stats":
                self._requests.inc(op=op, outcome="ok")
                return self._stats_response(request.text(0, "json") or "json")
            if op == "cancel":
                token = str(request.args[0])
                dropped = self.continuations.discard(token, client=connection.identity)
                self._saved_states.set(float(len(self.continuations)))
                self._requests.inc(op=op, outcome="ok")
                return {"ok": True, "cancelled": dropped}
            if op == "trace":
                if request.text(0) == "on":
                    self.service.tracer.enable()
                else:
                    self.service.tracer.disable()
                self._requests.inc(op=op, outcome="ok")
                return {"ok": True, "tracing": self.service.tracer.enabled}
            if op == "slowlog":
                count = request.integer(0, 10) or 10
                entries = [
                    {
                        "source": entry.source,
                        "target": entry.target,
                        "latency": entry.latency,
                        "fragments": list(entry.fragments),
                        "cached": entry.cached,
                        "trace": entry.trace_id,
                        "error": entry.error,
                    }
                    for entry in self.service.query_log.slowest(count)
                ]
                self._requests.inc(op=op, outcome="ok")
                return {"ok": True, "slowlog": entries}
            if op in ("healthz", "readyz"):
                response = self._health_response(ready=op == "readyz")
                self._requests.inc(op=op, outcome="ok")
                return response
            if op == "profile":
                self._requests.inc(op=op, outcome="ok")
                if self.profiler is None:
                    return {
                        "ok": False,
                        "error": "profiling disabled (start with profile_interval set)",
                    }
                return {
                    "ok": True,
                    "profile": self.profiler.report(top=request.integer(0, 10) or 10),
                }
            if op in ("placement", "migrate", "rebalance", "refragment", "advise"):
                response = self._serve_operator(request)
                self._requests.inc(op=op, outcome="ok")
                return response
            # The evaluating verbs pay admission and run under the
            # request's trace context.
            context = self._context_of(request)
            deadline = self._deadline_of(request)
            wait_started = time.monotonic()
            rejection = await self._acquire_slot(
                connection, cost=self.config.admission.light_cost, deadline=deadline
            )
            if rejection is not None:
                self._requests.inc(op=op, outcome="rejected")
                rejection.setdefault("trace", context.trace_id)
                return rejection
            waited = time.monotonic() - wait_started
            tracer = self.service.tracer
            try:
                # The root span closes before the response is awaited out:
                # spans must never straddle an await (the tracer stack is
                # shared by every handler on the loop).
                with tracer.request_span(
                    "request", context=context, op=op, client=connection.identity
                ):
                    tracer.attach_span("admission_wait", waited)
                    response = self._serve_light(request)
                response.setdefault("trace", context.trace_id)
                return response
            finally:
                self._release_slot(connection)
        except SERVICE_ERRORS as error:
            self._requests.inc(op=op, outcome="error")
            return {"ok": False, "error": str(error)}

    def _serve_light(self, request: Request) -> Dict[str, object]:
        op = request.op
        service = self.service
        if op == "query":
            try:
                answer = service.query(request.node(0), request.node(1))
            except NoChainError as error:
                self._requests.inc(op=op, outcome="error")
                return {"ok": False, "error": str(error)}
            self._requests.inc(op=op, outcome="ok")
            return {"ok": True, "answer": self._answer_dict(answer)}
        if op == "batch":
            answers = service.query_batch(request.pairs())
            self._requests.inc(op=op, outcome="ok")
            return {"ok": True, "answers": [self._answer_dict(a) for a in answers]}
        if op == "update":
            owner = service.update_edge(
                request.node(0), request.node(1), request.number(2, 1.0) or 1.0
            )
            self._requests.inc(op=op, outcome="ok")
            return {"ok": True, "fragment": owner, "version": service.catalog_version}
        if op == "delete":
            owner = service.update_edge(request.node(0), request.node(1), delete=True)
            self._requests.inc(op=op, outcome="ok")
            return {"ok": True, "fragment": owner, "version": service.catalog_version}
        raise ProtocolError(f"unrecognised command {op!r}")

    @staticmethod
    def _answer_dict(answer) -> Dict[str, object]:
        return {
            "source": answer.source,
            "target": answer.target,
            "value": answer.value,
            "chain": list(answer.chain) if answer.chain is not None else None,
            "cached": answer.cached,
            "error": answer.error,
        }

    def _stats_response(self, fmt: str) -> Dict[str, object]:
        if fmt == "prometheus":
            return {"ok": True, "prometheus": self.service.metrics("prometheus")}
        return {
            "ok": True,
            "stats": self.service.stats.as_dict(),
            "serving": {
                "active_requests": self.admission.active,
                "queue_depth": self.admission.queued,
                "saved_states": len(self.continuations),
                "clients": self.admission.client_stats(),
            },
            "slo": self.slo_monitor.as_dict(),
        }

    # ------------------------------------------------------- health & operator

    def _health_response(self, *, ready: bool) -> Dict[str, object]:
        """The ``healthz`` (liveness) / ``readyz`` (traffic-worthiness) doc.

        Liveness fails only when the pool lost workers.  Readiness
        additionally requires a non-saturated admission queue and no
        page-severity SLO burn — the signals a load balancer should drain
        on before the failure becomes an outage.
        """
        pool = self.service.pool_health()
        statuses = self.slo_monitor.evaluate()
        severity = self.slo_monitor.worst_severity(statuses)
        queue_full = self.admission.queued >= self.config.admission.max_queue
        healthy = bool(pool.get("healthy", True))
        checks: Dict[str, object] = {
            "pool": pool,
            "catalog_version": self.service.catalog_version,
            "queue_depth": self.admission.queued,
            "queue_capacity": self.config.admission.max_queue,
            "active_requests": self.admission.active,
            "saved_states": len(self.continuations),
            "slo": self.slo_monitor.as_dict(statuses),
        }
        if not ready:
            return {
                "ok": healthy,
                "status": "ok" if healthy else "degraded",
                "checks": checks,
            }
        is_ready = healthy and not queue_full and severity != "page"
        reasons = []
        if not healthy:
            reasons.append("pool_degraded")
        if queue_full:
            reasons.append("queue_saturated")
        if severity == "page":
            reasons.append("slo_burn")
        return {
            "ok": is_ready,
            "status": "ready" if is_ready else "not_ready",
            "reasons": reasons,
            "checks": checks,
        }

    def _serve_operator(self, request: Request) -> Dict[str, object]:
        """The operator verbs, rendered as JSON for remote operators.

        Same service calls the ``repro serve`` console makes; only the
        rendering differs.  They skip admission deliberately: an operator
        inspecting or repairing a saturated server must not queue behind
        the saturation.
        """
        op = request.op
        service = self.service
        if op == "placement":
            plan = service.placement_plan
            if plan is None:
                return {"ok": True, "placement": None, "mode": "replicated"}
            workers = {}
            for worker in range(plan.worker_count):
                owned = plan.owned_by(worker)
                replicas = sorted(set(plan.fragments_on(worker)) - set(owned))
                workers[str(worker)] = {"owns": list(owned), "replicas": replicas}
            return {
                "ok": True,
                "mode": "placed",
                "placement": {"policy": plan.policy, "workers": workers},
            }
        if op == "migrate":
            fragment, worker = request.integer(0), request.integer(1)
            moved = service.migrate(fragment, worker)
            return {"ok": True, "fragment": fragment, "worker": worker, "moved": moved}
        if op == "rebalance":
            migrations = service.rebalance()
            return {
                "ok": True,
                "migrations": [
                    {
                        "fragment": migration.fragment_id,
                        "from_worker": migration.from_worker,
                        "to_worker": migration.to_worker,
                        "reason": migration.reason,
                    }
                    for migration in migrations
                ],
            }
        if op == "refragment":
            redraws_before = service.stats.refragments
            result = service.refragment(request.text(0))
            if result is not None:
                return {
                    "ok": True,
                    "refragmented": True,
                    "scoped": True,
                    "changed": len(result.changed),
                    "unchanged": len(result.unchanged),
                    "border_nodes_recovered": result.border_nodes_recovered(),
                    "version": service.catalog_version,
                }
            refragmented = service.stats.refragments > redraws_before
            return {
                "ok": True,
                "refragmented": refragmented,
                "scoped": False,
                "version": service.catalog_version,
            }
        if op == "advise":
            advisor = service.refragment_advisor or RefragmentationAdvisor()
            fragmentation = service.database.fragmentation()
            assessment = advisor.assess(
                fragmentation,
                version_vector=service.version_vector,
                delta_log=service.database.delta_log,
                query_log=service.query_log,
            )
            return {
                "ok": True,
                "signals": assessment.signals.as_dict(),
                "update_skew": assessment.update_skew,
                "rationale": list(advisor.recommend(fragmentation).rationale),
            }
        raise ProtocolError(f"unrecognised command {op!r}")

    # ------------------------------------------------------- closure streaming

    def _mirror_for(self, version: str) -> CompactGraph:
        """The whole-graph compact mirror, rebuilt only when the version moves."""
        if self._mirror is None or self._mirror_version != version:
            self._mirror = CompactGraph.from_digraph(self.service.database.graph)
            self._mirror_version = version
        return self._mirror

    async def _serve_closure(
        self, request: Request, connection: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        op = request.op
        request_id = request.option("id")
        deadline = self._deadline_of(request)
        wait_started = time.monotonic()
        rejection = await self._acquire_slot(
            connection, cost=self.config.admission.heavy_cost, deadline=deadline
        )
        if rejection is not None:
            rejection.setdefault("id", request_id)
            self._requests.inc(op=op, outcome="rejected")
            await self._send(writer, rejection)
            return
        waited = time.monotonic() - wait_started
        try:
            version = self.service.catalog_version
            mirror = self._mirror_for(version)
            try:
                iterator, context = self._open_iterator(
                    request, connection, mirror, version
                )
            except StaleStateError as error:
                self._stale.inc()
                self._requests.inc(op=op, outcome="stale")
                await self._send(
                    writer,
                    {"id": request_id, "ok": False, "stale": True, "error": str(error)},
                )
                return
            except SERVICE_ERRORS as error:
                self._requests.inc(op=op, outcome="error")
                await self._send(writer, {"id": request_id, "ok": False, "error": str(error)})
                return
            # One root segment per call: admission wait and call metadata
            # live here, every quantum of this call parents under it, and a
            # later resume's segment parents under it too (via the context
            # stamped into the saved state).  Closed before the first send —
            # spans never straddle an await.
            tracer = self.service.tracer
            quantum_context = context
            with tracer.request_span(
                "request",
                context=context,
                op=op,
                client=connection.identity,
                kind=iterator.kind,
            ):
                tracer.attach_span("admission_wait", waited)
                inner = tracer.current_context()
                if inner is not None:
                    quantum_context = inner
            await self._stream(
                iterator, request, connection, writer, deadline, quantum_context
            )
        finally:
            self._release_slot(connection)

    def _open_iterator(
        self,
        request: Request,
        connection: _Connection,
        mirror: CompactGraph,
        version: str,
    ) -> Tuple[PreemptableClosureIterator, TraceContext]:
        if request.op == "resume":
            state = self.continuations.take(
                str(request.args[0]), client=connection.identity
            )
            self._saved_states.set(float(len(self.continuations)))
            iterator = PreemptableClosureIterator.from_state(
                mirror, state, catalog_version=version
            )
            self._resumes.inc()
            # The pickled context wins over anything on the resume request:
            # the continuation rejoins the trace it suspended under.
            if state.trace_context is not None:
                trace_id, parent_span_id = state.trace_context
                return iterator, TraceContext(trace_id, parent_span_id)
            return iterator, self._context_of(request)
        source = request.args[0]
        sources: object = ALL_SOURCES if source == ALL_SOURCES else request.node(0)
        iterator = PreemptableClosureIterator(
            mirror,
            sources,
            kind=self.service.semiring.name,
            catalog_version=version,
        )
        return iterator, self._context_of(request)

    async def _stream(
        self,
        iterator: PreemptableClosureIterator,
        request: Request,
        connection: _Connection,
        writer: asyncio.StreamWriter,
        deadline: float,
        context: TraceContext,
    ) -> None:
        config = self.config
        tracer = self.service.tracer
        request_id = request.option("id")
        quanta_run = 0
        seq = 0
        suspend_reason: Optional[str] = None
        while not iterator.exhausted:
            if config.preemption and quanta_run >= config.quanta_per_call:
                suspend_reason = "quanta_budget"
                break
            if time.monotonic() >= deadline:
                suspend_reason = "deadline"
                break
            if config.preemption:
                # Each quantum is its own root segment under the call's
                # context — the span (and any kernel spans the evaluation
                # attaches) carries the client's trace id and closes before
                # the pages are awaited out.
                with tracer.request_span(
                    "serving_quantum",
                    context=context,
                    op=request.op,
                    client=connection.identity,
                    kind=iterator.kind,
                ) as span:
                    report = iterator.run_quantum(
                        config.quantum_seconds, max_rows=config.page_size
                    )
                    span.set("rows", len(report.rows))
                    span.set("exhausted", report.exhausted)
            else:
                # Degraded baseline: the whole closure in one blocking turn.
                report = iterator.run_quantum(float("inf"), max_rows=None)
            quanta_run += 1
            self._quanta.inc()
            self._quantum_seconds.observe(report.seconds)
            for start in range(0, len(report.rows), config.page_size):
                page = report.rows[start : start + config.page_size]
                seq += 1
                self._pages.inc()
                self._rows.inc(len(page))
                await self._send(
                    writer,
                    {
                        "id": request_id,
                        "ok": True,
                        "seq": seq,
                        "page": [list(row) for row in page],
                        "done": False,
                    },
                )
            if config.preemption and not report.exhausted:
                # Yield the loop between quanta: this is the preemption
                # point where queued point queries get served.
                await asyncio.sleep(0)
        self._call_quanta.observe(float(max(1, quanta_run)))
        if iterator.exhausted:
            self._requests.inc(op=request.op, outcome="ok")
            await self._send(
                writer,
                {
                    "id": request_id,
                    "ok": True,
                    "done": True,
                    "produced": iterator.produced,
                    "pages": seq,
                    "trace": context.trace_id,
                },
            )
            return
        state = iterator.save()
        # A resumed continuation rejoins this trace: the context rides the
        # (picklable) saved state, parenting the resume segment under this
        # call's root span.
        state.trace_context = context.as_tuple()
        token = self.continuations.put(state, client=connection.identity)
        self._saved_states.set(float(len(self.continuations)))
        self._suspends.inc(reason=suspend_reason or "quanta_budget")
        self._requests.inc(op=request.op, outcome="suspended")
        await self._send(
            writer,
            {
                "id": request_id,
                "ok": True,
                "done": False,
                "suspended": True,
                "reason": suspend_reason,
                "continuation": token,
                "produced": iterator.produced,
                "pages": seq,
                "trace": context.trace_id,
            },
        )

    # ------------------------------------------------------------- background

    async def _idle_loop(self) -> None:
        """Run auto-refragmentation assessment in quiet moments only."""
        assert self.config.idle_assess_seconds is not None
        while True:
            await asyncio.sleep(self.config.idle_assess_seconds)
            if self.admission.active > 0 or self._waiters:
                self._idle_assessments.inc(outcome="busy")
                continue
            outcome = self.service.auto_refragment_now()
            self._idle_assessments.inc(outcome=outcome)
