"""The one serving command grammar, shared by every front-end.

``repro serve`` (the stdin line loop) and :class:`~repro.serving.server.ClosureServer`
(the network tier) accept the same commands; this module is the single place
their grammar lives, so the two surfaces can never drift apart: one spec
table, one tokenizer, one arity/choice check, one error type.

A surface parses its raw input into a :class:`Request`:

* the console loop calls :func:`parse_line` on each stdin line,
* the network server calls :func:`parse_json_request` on each decoded
  newline-delimited JSON object (``{"op": "query", "args": ["a", "b"]}``),

and both get back a validated request — or a :class:`ProtocolError` whose
message is what the surface reports verbatim (``error: ...``), which is the
shared error path.  Coercions (node decoding, weights, counts) live on the
request, so "integers stay integers, the rest are strings" means the same
thing over a socket as it does on stdin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError

__all__ = [
    "COMMAND_SPECS",
    "CommandSpec",
    "ProtocolError",
    "Request",
    "commands_for",
    "decode_node",
    "parse_json_request",
    "parse_line",
]

CONSOLE = "console"
NETWORK = "network"
_SURFACES = (CONSOLE, NETWORK)


class ProtocolError(ReproError):
    """A request that violates the serving grammar (unknown op, bad arity)."""


def decode_node(value: object) -> object:
    """Interpret a node argument: integers stay integers, the rest unchanged.

    Shared by both surfaces so a node key round-trips identically whether it
    arrived as a stdin token, a JSON string, or a JSON number.
    """
    if isinstance(value, str):
        return int(value) if value.lstrip("-").isdigit() else value
    return value


@dataclass(frozen=True)
class CommandSpec:
    """One command of the serving grammar.

    Attributes:
        name: the command word (``query``, ``closure``, ...).
        usage: the one-line usage string arity errors report.
        min_args / max_args: inclusive argument-count bounds (``max_args``
            ``None`` means unbounded).
        even_args: the argument count must additionally be even (``batch``).
        choices: when set, the first argument must be one of these.
        surfaces: the front-ends offering the command.
    """

    name: str
    usage: str
    min_args: int = 0
    max_args: Optional[int] = 0
    even_args: bool = False
    choices: Optional[Tuple[str, ...]] = None
    surfaces: Tuple[str, ...] = (CONSOLE, NETWORK)

    def validate(self, args: Sequence[object]) -> None:
        """Check arity and first-argument choices; raise :class:`ProtocolError`."""
        count = len(args)
        if count < self.min_args or (self.max_args is not None and count > self.max_args):
            raise ProtocolError(f"usage: {self.usage}")
        if self.even_args and count % 2:
            raise ProtocolError(f"usage: {self.usage}")
        if self.choices is not None and args:
            first = str(args[0]).lower()
            if first not in self.choices:
                raise ProtocolError(
                    f"usage: {self.usage} (got {args[0]!r}, expected one of "
                    f"{'|'.join(self.choices)})"
                )


# The grammar.  Console-only commands are the ones that only make sense at
# the server's own terminal (writing a snapshot to the local filesystem,
# ending the process); network-only commands are the preemptive serving
# verbs (streamed closures, continuations, identity) that make no sense on
# stdin.  Everything else — queries, telemetry, health, and the operator
# controls (placement/migrate/rebalance/refragment/advise) — is offered on
# both surfaces, so a remote operator is never blinder than a local one.
#
# Network requests may carry a free-form ``traceparent`` option (a W3C
# ``00-<32hex>-<16hex>-<2hex>`` value): the server adopts it as the
# request's distributed trace context.
_SPECS: Tuple[CommandSpec, ...] = (
    CommandSpec("query", "query SOURCE TARGET", 2, 2),
    CommandSpec("batch", "batch SOURCE TARGET [SOURCE TARGET ...]", 2, None, even_args=True),
    CommandSpec("update", "update SOURCE TARGET [WEIGHT]", 2, 3),
    CommandSpec("delete", "delete SOURCE TARGET", 2, 2),
    CommandSpec("stats", "stats [text|json|prometheus]", 0, 1),
    CommandSpec("slowlog", "slowlog [COUNT]", 0, 1),
    CommandSpec("trace", "trace on|off", 1, 1, choices=("on", "off")),
    CommandSpec("healthz", "healthz", 0, 0),
    CommandSpec("readyz", "readyz", 0, 0),
    CommandSpec("profile", "profile [COUNT]", 0, 1),
    CommandSpec("placement", "placement"),
    CommandSpec("migrate", "migrate FRAGMENT WORKER", 2, 2),
    CommandSpec("rebalance", "rebalance"),
    CommandSpec("refragment", "refragment [ALGORITHM]", 0, 1),
    CommandSpec("advise", "advise"),
    CommandSpec("snapshot", "snapshot DIRECTORY", 1, 1, surfaces=(CONSOLE,)),
    CommandSpec("quit", "quit", surfaces=(CONSOLE,)),
    CommandSpec("exit", "exit", surfaces=(CONSOLE,)),
    CommandSpec("hello", "hello CLIENT_NAME", 1, 1, surfaces=(NETWORK,)),
    CommandSpec("ping", "ping", surfaces=(NETWORK,)),
    CommandSpec("closure", "closure SOURCE|*", 1, 1, surfaces=(NETWORK,)),
    CommandSpec("resume", "resume CONTINUATION_TOKEN", 1, 1, surfaces=(NETWORK,)),
    CommandSpec("cancel", "cancel CONTINUATION_TOKEN", 1, 1, surfaces=(NETWORK,)),
)

COMMAND_SPECS: Dict[str, CommandSpec] = {spec.name: spec for spec in _SPECS}


def commands_for(surface: str) -> List[str]:
    """Return the command names a surface offers, in grammar order."""
    if surface not in _SURFACES:
        raise ValueError(f"unknown surface {surface!r} (expected one of {_SURFACES})")
    return [spec.name for spec in _SPECS if surface in spec.surfaces]


@dataclass(frozen=True)
class Request:
    """One validated serving command with typed argument accessors."""

    op: str
    args: Tuple[object, ...] = ()
    options: Mapping[str, object] = field(default_factory=dict)

    def node(self, index: int) -> object:
        """Return argument ``index`` decoded as a node key."""
        return decode_node(self.args[index])

    def text(self, index: int, default: Optional[str] = None) -> Optional[str]:
        """Return argument ``index`` as a string (``default`` when absent)."""
        if index >= len(self.args):
            return default
        return str(self.args[index])

    def number(self, index: int, default: Optional[float] = None) -> Optional[float]:
        """Return argument ``index`` as a float (``default`` when absent)."""
        if index >= len(self.args):
            return default
        return float(self.args[index])  # type: ignore[arg-type]

    def integer(self, index: int, default: Optional[int] = None) -> Optional[int]:
        """Return argument ``index`` as an int (``default`` when absent)."""
        if index >= len(self.args):
            return default
        return int(self.args[index])  # type: ignore[arg-type]

    def pairs(self) -> List[Tuple[object, object]]:
        """Return the arguments as decoded (source, target) query pairs."""
        return [
            (decode_node(self.args[i]), decode_node(self.args[i + 1]))
            for i in range(0, len(self.args), 2)
        ]

    def option(self, key: str, default: object = None) -> object:
        """Return a free-form request option (network requests only)."""
        return self.options.get(key, default)


def _validated(op: str, args: Sequence[object], surface: str, raw: object) -> CommandSpec:
    spec = COMMAND_SPECS.get(op)
    if spec is None or surface not in spec.surfaces:
        raise ProtocolError(f"unrecognised command {raw!r}")
    spec.validate(args)
    return spec


def parse_line(line: str, *, surface: str = CONSOLE) -> Optional[Request]:
    """Parse one command line into a :class:`Request` (``None`` for blank lines).

    Raises:
        ProtocolError: unknown command for the surface, or bad arity/choice.
    """
    if surface not in _SURFACES:
        raise ValueError(f"unknown surface {surface!r} (expected one of {_SURFACES})")
    words = line.split()
    if not words:
        return None
    op, args = words[0].lower(), tuple(words[1:])
    _validated(op, args, surface, line.strip())
    return Request(op=op, args=args)


def parse_json_request(document: object, *, surface: str = NETWORK) -> Request:
    """Validate one decoded JSON request object into a :class:`Request`.

    The wire shape is ``{"op": NAME, "args": [...], ...options}``; every key
    besides ``op`` and ``args`` rides along as a request option (``id``,
    ``timeout``, ``pages`` — the server decides which it honours).

    Raises:
        ProtocolError: non-object document, missing/unknown op, bad arity.
    """
    if not isinstance(document, Mapping):
        raise ProtocolError("request must be a JSON object with an 'op' field")
    op_raw = document.get("op")
    if not isinstance(op_raw, str) or not op_raw:
        raise ProtocolError("request must name its 'op' as a string")
    args_raw = document.get("args", [])
    if not isinstance(args_raw, (list, tuple)):
        raise ProtocolError("'args' must be an array")
    op, args = op_raw.lower(), tuple(args_raw)
    _validated(op, args, surface, op_raw)
    options = {key: value for key, value in document.items() if key not in ("op", "args")}
    return Request(op=op, args=args, options=options)
