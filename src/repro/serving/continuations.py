"""Continuation tokens: suspended queries that survive across connections.

When the serving tier preempts a long-running closure it must park the
query's :class:`~repro.serving.preemption.SavedQueryState` somewhere a later
request — possibly on a *different* connection — can find it.  The
:class:`ContinuationStore` is that somewhere: a bounded, client-owned map
from opaque tokens to **pickled** saved states.

Pickling on ``put`` (rather than keeping the live object) is deliberate:

* it proves, on the production path, that every saved state honours the
  plain-data contract — a state that cannot pickle fails at suspension time,
  not in some later deployment that moves states between processes;
* it makes the stored state immune to aliasing — the iterator that produced
  it can keep running (or be garbage) without corrupting the parked copy.

Ownership follows the *client identity*, not the connection: a client that
identified itself (``hello NAME``) can reconnect and resume its tokens,
while dropping a client (disconnect of an anonymous connection, explicit
``cancel``) frees every state it parked — saved state can never leak from
clients that walked away.
"""

from __future__ import annotations

import pickle
import secrets
from collections import OrderedDict
from typing import Optional, Tuple

from .preemption import SavedQueryState
from .protocol import ProtocolError

__all__ = ["ContinuationStore"]


class ContinuationStore:
    """A bounded map of continuation tokens to pickled saved query states.

    Args:
        capacity: maximum parked states; inserting past it evicts the oldest
            (their clients must re-issue, which is the correct failure mode
            for a server that is out of suspension memory).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"continuation capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._states: "OrderedDict[str, Tuple[str, bytes]]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._states)

    def put(self, state: SavedQueryState, *, client: str) -> str:
        """Park a saved state for ``client``; returns its opaque token."""
        token = secrets.token_hex(8)
        self._states[token] = (client, pickle.dumps(state))
        while len(self._states) > self._capacity:
            self._states.popitem(last=False)
            self.evictions += 1
        return token

    def take(self, token: str, *, client: Optional[str] = None) -> SavedQueryState:
        """Remove and return the state behind ``token``.

        Args:
            token: the continuation token a suspension handed out.
            client: when given, the caller's identity must match the owner —
                tokens are not transferable between clients.

        Raises:
            ProtocolError: unknown/expired token, or a different owner.
        """
        entry = self._states.get(token)
        if entry is None:
            raise ProtocolError(
                f"unknown continuation token {token!r} (expired, cancelled, or "
                "freed when its client disconnected)"
            )
        owner, payload = entry
        if client is not None and owner != client:
            raise ProtocolError(
                f"continuation token {token!r} belongs to another client"
            )
        del self._states[token]
        return pickle.loads(payload)

    def discard(self, token: str, *, client: Optional[str] = None) -> bool:
        """Drop one token (``cancel``); returns whether it existed and matched."""
        entry = self._states.get(token)
        if entry is None or (client is not None and entry[0] != client):
            return False
        del self._states[token]
        return True

    def adopt(self, old_client: str, new_client: str) -> int:
        """Transfer every state of ``old_client`` to ``new_client``.

        The ``hello`` handler calls this so a suspension parked before the
        client identified itself follows the client to its durable identity
        instead of dying with the connection.
        """
        moved = 0
        for token, (owner, payload) in self._states.items():
            if owner == old_client:
                self._states[token] = (new_client, payload)
                moved += 1
        return moved

    def drop_client(self, client: str) -> int:
        """Free every state ``client`` parked; returns how many were freed."""
        stale = [token for token, (owner, _) in self._states.items() if owner == client]
        for token in stale:
            del self._states[token]
        return len(stale)
