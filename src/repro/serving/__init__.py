"""The network serving tier: preemptable closure evaluation over TCP.

This package turns the single-process :class:`~repro.service.server.QueryService`
into something clients can actually share: an asyncio TCP server speaking a
newline-delimited JSON protocol, with web-preemption (bounded evaluation
quanta, suspendable/resumable saved query state, continuation tokens) and
admission control (slots, bounded queueing, per-client token buckets,
deadlines) so a whole-graph closure can never starve a point query.

The parts, bottom-up:

* :mod:`~repro.serving.protocol` — the one command grammar both the stdin
  console loop and the network server parse against;
* :mod:`~repro.serving.preemption` — :class:`PreemptableClosureIterator`,
  the quantum-at-a-time closure evaluation with plain-data picklable
  :class:`SavedQueryState` snapshots and the bit-identical resume contract;
* :mod:`~repro.serving.continuations` — the bounded client-owned
  :class:`ContinuationStore` of suspended states;
* :mod:`~repro.serving.admission` — :class:`AdmissionController`, the slot
  / queue / token-bucket accounting;
* :mod:`~repro.serving.server` — :class:`ClosureServer`, the asyncio tier
  wiring all of the above to a :class:`QueryService`, with full
  ``repro_serving_*`` telemetry and idle-time refragmentation assessment.
"""

from .admission import AdmissionConfig, AdmissionController, AdmissionDecision, TokenBucket
from .continuations import ContinuationStore
from .preemption import (
    ALL_SOURCES,
    PreemptableClosureIterator,
    QuantumReport,
    SavedQueryState,
    StaleStateError,
)
from .protocol import (
    COMMAND_SPECS,
    CommandSpec,
    ProtocolError,
    Request,
    commands_for,
    decode_node,
    parse_json_request,
    parse_line,
)
from .server import ClosureServer, ServingConfig

__all__ = [
    "ALL_SOURCES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "COMMAND_SPECS",
    "ClosureServer",
    "CommandSpec",
    "ContinuationStore",
    "PreemptableClosureIterator",
    "ProtocolError",
    "QuantumReport",
    "Request",
    "SavedQueryState",
    "ServingConfig",
    "StaleStateError",
    "TokenBucket",
    "commands_for",
    "decode_node",
    "parse_json_request",
    "parse_line",
]
