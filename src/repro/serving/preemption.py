"""Web-preemption for closure queries: bounded quanta, resumable saved state.

A whole-graph transitive closure is the one query shape this system serves
that is *minutes* of kernel work on a large graph — run naively inside a
single-threaded serving loop it starves every point query behind it.  This
module applies the SaGe preemptable-iterator pattern to the closure kernels:

* :class:`PreemptableClosureIterator` evaluates a closure (one source, or
  every source for the whole-graph/all-pairs case) **incrementally**, a
  time-bounded quantum at a time, emitting ``(source, target, value)`` rows
  in a deterministic order;
* between quanta the iterator's whole progress — pending sources, frontier
  masks, visited sets, the Dijkstra heap, partially-emitted pages — can be
  captured into a :class:`SavedQueryState`: a **plain-data, picklable**
  snapshot that survives process-internal storage, a pickle round-trip, and
  (via the serving tier's continuation tokens) reconnecting clients;
* :meth:`PreemptableClosureIterator.from_state` resumes from such a snapshot
  and produces **exactly** the rows the uninterrupted run would have produced
  from that point — suspension is invisible in the concatenated output.

Determinism is what makes that resume contract cheap to keep: sources are
processed in ascending dense-id order, the reachability expansion pops
frontier bits lowest-first and emits each BFS level in id order, and the
shortest-path evaluation settles nodes in exact ``(distance, id)`` heap
order.  Every piece of state is already plain data (ints as bitsets, flat
float lists, heap tuples), so saving is a shallow copy, not a serialisation
scheme.

The saved state stamps the catalog version it was taken under; resuming
against a database whose version moved raises :class:`StaleStateError` —
a suspended query never silently mixes rows from two graph versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..graph.compact import CompactGraph

__all__ = [
    "ALL_SOURCES",
    "PreemptableClosureIterator",
    "QuantumReport",
    "SavedQueryState",
    "StaleStateError",
]

Row = Tuple[object, object, object]

# The wire spelling of "every source": ``closure *`` asks for the whole-graph
# (all-pairs) closure.
ALL_SOURCES = "*"

_KINDS = ("shortest_path", "reachability")


class StaleStateError(ReproError):
    """A saved query state whose catalog version no longer matches the live one."""


@dataclass
class SavedQueryState:
    """A suspended closure query, as plain picklable data.

    Attributes:
        kind: the evaluation ("shortest_path" or "reachability").
        catalog_version: the service catalog version the state was taken
            under; resume refuses any other version.
        pending_sources: dense source ids not yet started (ascending).
        current: the in-flight source's sub-state (masks / dist / heap), or
            ``None`` between sources.
        produced: rows already emitted before the suspension.
        whole_graph: whether the query asked for every source (``closure *``).
        trace_context: the request's trace identity as a plain
            ``(trace_id, parent_span_id)`` tuple (or ``None``); the serving
            tier stamps it at suspension so a resumed continuation rejoins
            its original distributed trace.  The iterator itself never
            reads it — it rides the pickle.
    """

    kind: str
    catalog_version: str
    pending_sources: List[int] = field(default_factory=list)
    current: Optional[Dict[str, object]] = None
    produced: int = 0
    whole_graph: bool = False
    trace_context: Optional[Tuple[str, object]] = None


@dataclass(frozen=True)
class QuantumReport:
    """What one quantum produced: the rows, and whether the query finished."""

    rows: List[Row]
    exhausted: bool
    seconds: float


class PreemptableClosureIterator:
    """Evaluate a closure query in time-bounded, suspendable quanta.

    Args:
        graph: the whole-graph compact mirror to evaluate over.
        sources: the requested source node keys, or :data:`ALL_SOURCES` for
            the whole-graph closure.
        kind: ``"shortest_path"`` or ``"reachability"`` (the picklable
            semiring pair the serving stack supports).
        catalog_version: the catalog version the evaluation is pinned to;
            stamped into every saved state.

    Raises:
        ReproError: unsupported kind, or an unknown source node.
    """

    def __init__(
        self,
        graph: CompactGraph,
        sources: object,
        *,
        kind: str = "shortest_path",
        catalog_version: str = "live",
    ) -> None:
        if kind not in _KINDS:
            raise ReproError(
                f"preemptable closure supports kinds {_KINDS}, not {kind!r}"
            )
        self._graph = graph
        self.kind = kind
        self.catalog_version = catalog_version
        self.produced = 0
        self._current: Optional[Dict[str, object]] = None
        if sources == ALL_SOURCES:
            self.whole_graph = True
            self._pending: List[int] = list(range(graph.node_count()))
        else:
            self.whole_graph = False
            requested = sources if isinstance(sources, (list, tuple)) else [sources]
            ids: List[int] = []
            for node in requested:
                node_id = graph.try_node_id(node)
                if node_id < 0:
                    raise ReproError(f"unknown closure source {node!r}")
                ids.append(node_id)
            self._pending = sorted(set(ids))

    # ------------------------------------------------------------ suspension

    @classmethod
    def from_state(
        cls,
        graph: CompactGraph,
        state: SavedQueryState,
        *,
        catalog_version: str,
    ) -> "PreemptableClosureIterator":
        """Resume an iterator from a saved state (same catalog version only).

        Raises:
            StaleStateError: the state was saved under a different catalog
                version — the graph underneath it has moved, so its masks and
                distances no longer mean anything.
        """
        if state.catalog_version != catalog_version:
            raise StaleStateError(
                f"saved query state is stale: saved under catalog version "
                f"{state.catalog_version!r}, the service is now at "
                f"{catalog_version!r}; re-issue the query"
            )
        iterator = cls.__new__(cls)
        iterator._graph = graph
        iterator.kind = state.kind
        iterator.catalog_version = catalog_version
        iterator.produced = state.produced
        iterator.whole_graph = state.whole_graph
        iterator._pending = list(state.pending_sources)
        iterator._current = dict(state.current) if state.current is not None else None
        return iterator

    def save(self) -> SavedQueryState:
        """Capture the whole progress as plain picklable data.

        The copies are shallow-but-sufficient: every container in the
        sub-state is rebuilt (lists copied, the heap list copied) so the
        saved state is immune to this iterator running further quanta.
        """
        current: Optional[Dict[str, object]] = None
        if self._current is not None:
            current = {
                key: (list(value) if isinstance(value, list) else value)
                for key, value in self._current.items()
            }
            done = self._current.get("done")
            if isinstance(done, bytearray):
                current["done"] = bytearray(done)
        return SavedQueryState(
            kind=self.kind,
            catalog_version=self.catalog_version,
            pending_sources=list(self._pending),
            current=current,
            produced=self.produced,
            whole_graph=self.whole_graph,
        )

    @property
    def exhausted(self) -> bool:
        """Whether every requested source has been fully evaluated."""
        return self._current is None and not self._pending

    # --------------------------------------------------------------- running

    def run_quantum(
        self,
        budget_seconds: float,
        *,
        max_rows: Optional[int] = None,
    ) -> QuantumReport:
        """Run until the time budget, the row cap, or the end of the query.

        Args:
            budget_seconds: wall-clock budget for this quantum (``inf`` runs
                to completion — the preemption-disabled baseline).
            max_rows: optional cap on rows emitted this quantum (one result
                page); the iterator suspends cleanly at the cap.

        Returns:
            A :class:`QuantumReport` with the emitted rows (in the global
            deterministic order) and whether the query is exhausted.
        """
        started = perf_counter()
        deadline = inf if budget_seconds == inf else started + budget_seconds
        rows: List[Row] = []
        cap = inf if max_rows is None else max_rows
        while True:
            if self._current is None:
                if not self._pending:
                    break
                self._begin_source(self._pending.pop(0))
            if len(rows) >= cap:
                break
            stepped = (
                self._step_shortest_path(rows)
                if self.kind == "shortest_path"
                else self._step_reachability(rows)
            )
            if not stepped:
                self._current = None
                continue
            if perf_counter() >= deadline:
                break
        self.produced += len(rows)
        return QuantumReport(
            rows=rows, exhausted=self.exhausted, seconds=perf_counter() - started
        )

    # -------------------------------------------------------------- internals

    def _begin_source(self, source_id: int) -> None:
        if self.kind == "shortest_path":
            n = self._graph.node_count()
            dist = [inf] * n
            dist[source_id] = 0.0
            self._current = {
                "source_id": source_id,
                "dist": dist,
                "done": bytearray(n),
                "heap": [(0.0, source_id)],
            }
        else:
            self._current = {
                "source_id": source_id,
                "visited": 1 << source_id,
                "scan": 1 << source_id,
                "reached": 0,
                "emit": [],
            }

    def _step_shortest_path(self, rows: List[Row]) -> bool:
        """Settle one node and emit its row; ``False`` when the source is done.

        Exactly :func:`~repro.closure.kernels.array_dijkstra`'s relaxation,
        restructured so the heap *is* the suspendable state: ``heapq`` on a
        plain list of ``(distance, id)`` tuples pops deterministically
        (distance, then id), so a pickled heap resumes in the same order.
        """
        import heapq

        state = self._current
        assert state is not None
        heap: List[Tuple[float, int]] = state["heap"]  # type: ignore[assignment]
        dist: List[float] = state["dist"]  # type: ignore[assignment]
        done: bytearray = state["done"]  # type: ignore[assignment]
        source_id: int = state["source_id"]  # type: ignore[assignment]
        offsets, targets, weights = self._graph.forward_csr
        while heap:
            distance, node_id = heapq.heappop(heap)
            if done[node_id]:
                continue
            done[node_id] = 1
            for index in range(offsets[node_id], offsets[node_id + 1]):
                target_id = targets[index]
                if done[target_id]:
                    continue
                candidate = distance + weights[index]
                if candidate < dist[target_id]:
                    dist[target_id] = candidate
                    heapq.heappush(heap, (candidate, target_id))
            if node_id != source_id:
                rows.append(
                    (
                        self._graph.node_of(source_id),
                        self._graph.node_of(node_id),
                        distance,
                    )
                )
                return True
            return True  # the source settles without a row but is one step
        return False

    def _step_reachability(self, rows: List[Row]) -> bool:
        """Advance the bitset BFS by one unit; ``False`` when the source is done.

        A unit is: emit one buffered row, or absorb one frontier node's
        successor mask, or roll the completed level into the next frontier.
        Each is O(words) work, so quantum deadlines are honoured to a fine
        grain even on wide graphs.
        """
        state = self._current
        assert state is not None
        emit: List[int] = state["emit"]  # type: ignore[assignment]
        if emit:
            target_id = emit.pop(0)
            rows.append(
                (
                    self._graph.node_of(state["source_id"]),  # type: ignore[arg-type]
                    self._graph.node_of(target_id),
                    True,
                )
            )
            return True
        scan: int = state["scan"]  # type: ignore[assignment]
        if scan:
            masks = self._graph.successor_masks()
            low = scan & -scan
            state["reached"] = state["reached"] | masks[low.bit_length() - 1]  # type: ignore[operator]
            state["scan"] = scan ^ low
            return True
        newly = state["reached"] & ~state["visited"]  # type: ignore[operator]
        if not newly:
            return False
        state["visited"] = state["visited"] | newly  # type: ignore[operator]
        state["scan"] = newly
        state["reached"] = 0
        ids: List[int] = []
        while newly:
            low = newly & -newly
            ids.append(low.bit_length() - 1)
            newly ^= low
        state["emit"] = ids
        return True
