"""Admission control: bounded concurrency, per-client fairness, backpressure.

A serving tier in front of a shared worker pool needs three refusals it can
make *before* paying for any evaluation work:

* **slot limits** — at most ``max_concurrent`` requests evaluate at once;
  excess requests wait in a bounded queue and anything beyond that is
  rejected with a retry-after hint (backpressure, not unbounded buffering);
* **per-client token accounting** — every client draws from its own token
  bucket (``client_burst`` capacity, ``client_rate`` tokens/second refill);
  heavy verbs cost more tokens than light ones, so one client hammering
  whole-graph closures throttles *itself* long before it can monopolise the
  placed worker pool, while a million light clients stay unaffected;
* **deadlines** — a queued request that cannot start before its deadline is
  rejected rather than served late.

The controller is deliberately synchronous and clock-injected: the asyncio
server drives it, but every decision is a pure state transition that unit
tests exercise with a fake clock.  All accounting is exported live through
the shared metrics registry (``repro_serving_active_requests``,
``repro_serving_queue_depth``, ``repro_serving_rejections_total``,
``repro_serving_client_requests_total``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..observability import MetricsRegistry

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
]


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller.

    Attributes:
        max_concurrent: requests evaluating at once (quantum slots).
        max_queue: requests allowed to wait for a slot before rejection.
        client_rate: token-bucket refill per client, tokens/second.
        client_burst: token-bucket capacity per client.
        light_cost: tokens one point query / batch / update costs.
        heavy_cost: tokens one closure/resume call costs.
        default_deadline: seconds a request may spend queued + running
            before the server suspends or rejects it (requests may lower it).
        retry_after: baseline retry hint (seconds) for slot-pressure
            rejections; rate-limit rejections hint the bucket's actual
            refill time instead.
    """

    max_concurrent: int = 8
    max_queue: int = 64
    client_rate: float = 50.0
    client_burst: float = 25.0
    light_cost: float = 1.0
    heavy_cost: float = 5.0
    default_deadline: float = 30.0
    retry_after: float = 0.25

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError(f"max_concurrent must be positive, got {self.max_concurrent}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue cannot be negative, got {self.max_queue}")
        if self.client_rate <= 0 or self.client_burst <= 0:
            raise ValueError("client_rate and client_burst must be positive")


class TokenBucket:
    """One client's token account: ``capacity`` burst, ``rate``/second refill."""

    __slots__ = ("capacity", "rate", "tokens", "stamp")

    def __init__(self, capacity: float, rate: float, now: float) -> None:
        self.capacity = capacity
        self.rate = rate
        self.tokens = capacity
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.stamp)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.stamp = now

    def take(self, cost: float, now: float) -> bool:
        """Spend ``cost`` tokens if available; returns whether it could."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float, now: float) -> float:
        """Seconds until ``cost`` tokens will have accumulated."""
        self._refill(now)
        missing = max(0.0, cost - self.tokens)
        return missing / self.rate


@dataclass
class AdmissionDecision:
    """One admission verdict.

    ``status`` is ``"run"`` (a slot was taken — the caller must eventually
    :meth:`AdmissionController.finish`), ``"queue"`` (a queue spot was taken
    — the caller must later :meth:`~AdmissionController.start_queued` or
    :meth:`~AdmissionController.abandon_queued`), or ``"reject"`` with a
    ``reason`` (``"rate_limited"`` / ``"queue_full"``) and a ``retry_after``
    hint in seconds.
    """

    status: str
    reason: Optional[str] = None
    retry_after: float = 0.0


@dataclass
class _ClientAccount:
    bucket: TokenBucket
    admitted: int = 0
    rejected: int = 0
    active: int = 0
    last_seen: float = field(default=0.0)


class AdmissionController:
    """Slot, queue, and per-client token accounting for the serving tier.

    Args:
        config: the :class:`AdmissionConfig` knobs.
        registry: the shared metrics registry accounting is exported to
            (a private one is created when not given).
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._clients: Dict[str, _ClientAccount] = {}
        self.active = 0
        self.queued = 0
        registry = registry if registry is not None else MetricsRegistry()
        self._active_gauge = registry.gauge(
            "repro_serving_active_requests",
            "Requests currently holding an evaluation slot.",
        )
        self._queue_gauge = registry.gauge(
            "repro_serving_queue_depth",
            "Requests currently waiting for an evaluation slot (live view).",
        )
        self._rejections = registry.counter(
            "repro_serving_rejections_total",
            "Requests refused by admission control, by reason.",
            labelnames=("reason",),
        )
        self._client_requests = registry.counter(
            "repro_serving_client_requests_total",
            "Requests dispatched per client identity (admitted only).",
            labelnames=("client",),
        )
        self._sync_gauges()

    # ------------------------------------------------------------ transitions

    def admit(
        self, client: str, *, cost: Optional[float] = None, now: Optional[float] = None
    ) -> AdmissionDecision:
        """Decide one request: take a slot, take a queue spot, or reject."""
        now = self._clock() if now is None else now
        cost = self.config.light_cost if cost is None else cost
        account = self._account(client, now)
        account.last_seen = now
        if not account.bucket.take(cost, now):
            account.rejected += 1
            self._rejections.inc(reason="rate_limited")
            return AdmissionDecision(
                status="reject",
                reason="rate_limited",
                retry_after=account.bucket.retry_after(cost, now),
            )
        if self.active < self.config.max_concurrent:
            self.active += 1
            account.active += 1
            account.admitted += 1
            self._client_requests.inc(client=client)
            self._sync_gauges()
            return AdmissionDecision(status="run")
        if self.queued < self.config.max_queue:
            self.queued += 1
            self._sync_gauges()
            return AdmissionDecision(status="queue")
        account.rejected += 1
        self._rejections.inc(reason="queue_full")
        return AdmissionDecision(
            status="reject", reason="queue_full", retry_after=self.config.retry_after
        )

    def start_queued(self, client: str) -> None:
        """Promote a queued request into a freed slot."""
        if self.queued <= 0:
            raise RuntimeError("start_queued without a queued request")
        if self.active >= self.config.max_concurrent:
            raise RuntimeError("start_queued without a free slot")
        self.queued -= 1
        self.active += 1
        account = self._account(client, self._clock())
        account.active += 1
        account.admitted += 1
        self._client_requests.inc(client=client)
        self._sync_gauges()

    def abandon_queued(self, client: str, *, reason: str = "deadline") -> None:
        """Drop a queued request that will never start (deadline, disconnect)."""
        if self.queued <= 0:
            raise RuntimeError("abandon_queued without a queued request")
        self.queued -= 1
        self._rejections.inc(reason=reason)
        account = self._clients.get(client)
        if account is not None:
            account.rejected += 1
        self._sync_gauges()

    def finish(self, client: str) -> None:
        """Release the slot a running request held."""
        if self.active <= 0:
            raise RuntimeError("finish without an active request")
        self.active -= 1
        account = self._clients.get(client)
        if account is not None and account.active > 0:
            account.active -= 1
        self._sync_gauges()

    # -------------------------------------------------------------- accessors

    @property
    def free_slots(self) -> int:
        """Evaluation slots currently unoccupied."""
        return self.config.max_concurrent - self.active

    def client_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-client accounting (admitted / rejected / active / tokens left)."""
        now = self._clock()
        stats: Dict[str, Dict[str, float]] = {}
        for client, account in sorted(self._clients.items()):
            account.bucket._refill(now)
            stats[client] = {
                "admitted": account.admitted,
                "rejected": account.rejected,
                "active": account.active,
                "tokens": round(account.bucket.tokens, 4),
            }
        return stats

    # -------------------------------------------------------------- internals

    def _account(self, client: str, now: float) -> _ClientAccount:
        account = self._clients.get(client)
        if account is None:
            account = _ClientAccount(
                bucket=TokenBucket(self.config.client_burst, self.config.client_rate, now)
            )
            self._clients[client] = account
        return account

    def _sync_gauges(self) -> None:
        self._active_gauge.set(float(self.active))
        self._queue_gauge.set(float(self.queued))
