"""Live refragmentation: redraw fragment boundaries without tearing anything down.

``FragmentedDatabase.refragment`` used to be catastrophic by construction: it
threw the whole prepared state away — every fragment's compact kernels, every
disconnection set's complementary information, every pinned worker payload —
even when the new layout moved a handful of edges between two fragments and
left the rest of the database untouched.  This module makes refragmentation
*scoped*, following the same locality discipline the incremental maintainer
applies to edge updates:

1. :func:`align_layout` matches the proposed fragments to the deployed ones by
   edge overlap, so a fragment that survives the redraw keeps its id (and with
   it its site object, compact state, cache entries and owner worker),
2. complementary information is repaired per disconnection set: a
   refragmentation never changes the base *graph*, so a pair whose border-node
   membership is unchanged keeps its stored values verbatim, and only pairs
   whose membership moved are recomputed — through the same
   :class:`~repro.incremental.repair.ComplementaryRepairer` kernels the edge
   update path uses,
3. the engine's catalog swaps in rebuilt sites for exactly the changed
   fragments (:meth:`~repro.disconnection.catalog.DistributedCatalog.apply_refragmentation`),
   keeping the engine object — and therefore the serving layer's planner and
   worker pool — alive,
4. the caller receives a :class:`RefragmentResult` naming what moved, which
   drives scoped cache eviction, per-fragment version bumps, placement-plan
   remapping and owner-only re-pins upstream.

When the configuration falls outside the envelope (custom semiring, no live
engine) :class:`LiveRefragmenter` raises
:class:`~repro.incremental.maintainer.IncrementalFallback` and the database
performs the classic full rebuild — correctness never depends on the scoped
path applying.  Stored complementary paths are inside the envelope: the
repairer's pair recomputation rebuilds their route expansions from the same
searches that refresh the values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..disconnection.engine import DisconnectionSetEngine
from ..fragmentation import Fragmentation
from ..fragmentation.metrics import total_border_nodes
from ..graph.compact import CompactGraph
from ..incremental.maintainer import IncrementalFallback
from ..incremental.repair import REPAIRABLE_SEMIRINGS, ComplementaryRepairer, RepairReport

Node = Hashable
Edge = Tuple[Node, Node]
FragmentPair = Tuple[int, int]


@dataclass(frozen=True)
class RefragmentResult:
    """The outcome of one scoped, in-place refragmentation.

    Attributes:
        fragmentation: the new layout, with fragment ids aligned to the old
            layout (surviving fragments keep their ids).
        changed: fragment ids whose site state was rebuilt — their edge set
            or their shortcut/disconnection-set neighbourhood moved (sorted;
            includes ``created``).
        created: fragment ids that did not exist before the redraw.
        dropped: old fragment ids that no longer exist (layout shrank).
        unchanged: fragment ids whose sites stayed object-identical.
        moved_edges: total directed edges in the rebuilt fragments (the
            re-pin payload size, and the figure the benchmark compares to a
            full rebuild's every-edge reshipping).
        pairs_recomputed: disconnection-set pairs whose complementary values
            were re-searched.
        pairs_kept: pairs whose membership (and therefore values) survived.
        border_nodes_before / border_nodes_after: distinct border nodes
            before and after — their difference is the locality the redraw
            recovered.
        report: the kernel-level repair accounting.
    """

    fragmentation: Fragmentation
    changed: Tuple[int, ...]
    created: Tuple[int, ...]
    dropped: Tuple[int, ...]
    unchanged: Tuple[int, ...]
    moved_edges: int
    pairs_recomputed: int
    pairs_kept: int
    border_nodes_before: int
    border_nodes_after: int
    report: RepairReport = field(default_factory=RepairReport)

    @property
    def dirty_fragments(self) -> Tuple[int, ...]:
        """Every fragment id a consumer must invalidate (changed + dropped)."""
        return tuple(sorted(set(self.changed) | set(self.dropped)))

    def border_nodes_recovered(self) -> int:
        """Return how many border nodes the redraw eliminated (may be negative)."""
        return self.border_nodes_before - self.border_nodes_after


def align_layout(
    old_layout: Sequence[Set[Edge]], proposed: Sequence[Set[Edge]]
) -> List[Set[Edge]]:
    """Arrange ``proposed`` fragments so survivors keep their old ids.

    Fragment ids are positional (a :class:`~repro.fragmentation.Fragmentation`
    numbers fragments by list index), so *which slot* a proposed fragment
    lands in decides whether the deployed site, cache entries and owner
    worker survive.  This greedily assigns each proposed fragment to the old
    id it shares the most edges with; proposed fragments matching nothing
    fill the remaining slots in size order.  The result has exactly
    ``len(proposed)`` fragments — old ids beyond that range are dropped by
    the caller.
    """
    slot_count = len(proposed)
    overlaps: List[Tuple[int, int, int]] = []
    for old_id, old_edges in enumerate(old_layout):
        if old_id >= slot_count:
            continue
        for new_index, new_edges in enumerate(proposed):
            shared = len(old_edges & new_edges)
            if shared:
                overlaps.append((shared, old_id, new_index))
    overlaps.sort(key=lambda item: (-item[0], item[1], item[2]))
    slot_of: Dict[int, int] = {}
    taken_slots: Set[int] = set()
    for _, old_id, new_index in overlaps:
        if new_index in slot_of or old_id in taken_slots:
            continue
        slot_of[new_index] = old_id
        taken_slots.add(old_id)
    free_slots = [slot for slot in range(slot_count) if slot not in taken_slots]
    leftovers = sorted(
        (index for index in range(len(proposed)) if index not in slot_of),
        key=lambda index: (-len(proposed[index]), index),
    )
    for slot, new_index in zip(free_slots, leftovers):
        slot_of[new_index] = slot
    aligned: List[Set[Edge]] = [set() for _ in range(slot_count)]
    for new_index, slot in slot_of.items():
        aligned[slot] = set(proposed[new_index])
    return aligned


class LiveRefragmenter:
    """Applies an aligned new layout to a live engine, rebuilding only what moved.

    Args:
        engine: the live engine to reorganise in place; its semiring must be
            one of the standard repairable ones.
        mirror: the database's resident whole-graph
            :class:`~repro.graph.compact.CompactGraph` mirror; when provided
            the repair searches reuse it instead of recompiling the whole
            graph per redraw (a refragmentation never changes the base
            graph, so the mirror is always current).

    Raises:
        IncrementalFallback: at construction when the engine's configuration
            falls outside the scoped-repair envelope (custom semiring).
    """

    def __init__(
        self,
        engine: DisconnectionSetEngine,
        *,
        mirror: Optional[CompactGraph] = None,
    ) -> None:
        if engine.semiring.name not in REPAIRABLE_SEMIRINGS:
            raise IncrementalFallback(
                f"scoped refragmentation supports the {REPAIRABLE_SEMIRINGS} "
                f"semirings only, got {engine.semiring.name!r}"
            )
        self._engine = engine
        self._repairer = ComplementaryRepairer(engine.semiring)
        self._mirror = mirror

    def apply(self, new_fragmentation: Fragmentation) -> RefragmentResult:
        """Reorganise the engine's catalog to ``new_fragmentation`` in place.

        ``new_fragmentation`` must already be id-aligned (see
        :func:`align_layout`) and built over the *same* base graph the engine
        serves — a refragmentation redraws boundaries, it never changes
        edges.  Unchanged fragments' :class:`FragmentSite` objects (compact
        kernels included) survive untouched; everything else is rebuilt and
        named in the returned :class:`RefragmentResult`.
        """
        catalog = self._engine.catalog
        old_fragmentation = catalog.fragmentation
        old_layout: List[FrozenSet[Edge]] = [
            fragment.edges for fragment in old_fragmentation.fragments
        ]
        new_layout: List[FrozenSet[Edge]] = [
            fragment.edges for fragment in new_fragmentation.fragments
        ]
        old_count, new_count = len(old_layout), len(new_layout)
        dropped = tuple(range(new_count, old_count))
        created = tuple(range(old_count, new_count))
        edge_changed: Set[int] = {
            fragment_id
            for fragment_id in range(min(old_count, new_count))
            if old_layout[fragment_id] != new_layout[fragment_id]
        }
        edge_changed.update(created)

        # Complementary repair: the base graph is unchanged, so stored
        # border-to-border values depend only on the pair's membership — a
        # pair whose disconnection set survived keeps its values verbatim.
        old_sets = old_fragmentation.disconnection_sets()
        new_sets = new_fragmentation.disconnection_sets()
        info = catalog.complementary
        report = RepairReport()
        graph: CompactGraph = (
            self._mirror
            if self._mirror is not None
            else CompactGraph.from_digraph(new_fragmentation.graph)
        )
        pairs_kept = 0
        for pair, border in new_sets.items():
            if old_sets.get(pair) == border:
                pairs_kept += 1
                continue
            self._repairer.recompute_pair(info, graph, pair, border, report)
            report.pairs_changed.add(pair)  # membership moved: chains differ
        for pair in old_sets:
            if pair not in new_sets:
                self._repairer.remove_pair(info, pair, report)
                report.pairs_changed.add(pair)

        # Scope: fragments whose edges moved, plus every fragment whose
        # shortcut set or neighbourhood changed with a touched pair.
        dirty: Set[int] = set(edge_changed)
        for i, j in report.pairs_changed:
            if i < new_count:
                dirty.add(i)
            if j < new_count:
                dirty.add(j)
        changed = tuple(sorted(dirty))
        unchanged = tuple(
            fragment_id
            for fragment_id in range(new_count)
            if fragment_id not in dirty
        )
        catalog.apply_refragmentation(
            new_fragmentation, rebuilt=list(changed), dropped=list(dropped)
        )
        moved_edges = sum(len(new_layout[fragment_id]) for fragment_id in changed)
        return RefragmentResult(
            fragmentation=new_fragmentation,
            changed=changed,
            created=created,
            dropped=dropped,
            unchanged=unchanged,
            moved_edges=moved_edges,
            pairs_recomputed=len(report.pairs_changed),
            pairs_kept=pairs_kept,
            border_nodes_before=total_border_nodes(old_fragmentation),
            border_nodes_after=total_border_nodes(new_fragmentation),
            report=report,
        )
