"""Live refragmentation: advisor-driven boundary redraws without downtime.

The fragmentation decides the parallel transitive-closure cost — that is the
paper's whole premise — yet a served layout erodes as updates land: borders
grow, complementary information bloats, the update stream concentrates where
the boundaries are not.  This package closes the loop:

* :mod:`~repro.refragmentation.advisor` — the :class:`RefragmentationAdvisor`
  watches delta-log / version-vector skew, border growth and cross-fragment
  edge ratio, and recommends a concrete replacement layout (policy-pluggable,
  reusing the :mod:`repro.fragmentation` strategies and metrics),
* :mod:`~repro.refragmentation.live` — the :class:`LiveRefragmenter` executes
  a redraw *in place*: ids aligned by edge overlap so surviving fragments
  keep their sites, complementary information repaired per disconnection set
  through the :mod:`repro.incremental` kernels, the engine (and with it the
  serving layer's planner, caches and worker pool) kept alive.

``FragmentedDatabase.refragment`` drives the scoped path and records a
replayable ``refragment`` delta record carrying the new layout, so replicas
can follow a reorganisation instead of resnapshotting;
``QueryService.refragment`` / ``auto_refragment=`` wire it into serving.
"""

from .advisor import (
    DEFAULT_BORDER_GROWTH_THRESHOLD,
    DEFAULT_CROSS_RATIO_THRESHOLD,
    DEFAULT_MIN_BORDER_GAIN,
    DEFAULT_UPDATE_SKEW_THRESHOLD,
    REFRAGMENT_ALGORITHMS,
    LayoutSignals,
    RefragmentationAdvice,
    RefragmentationAdvisor,
    RefragmentationAssessment,
    fragmenter_for,
    measure_layout,
)
from .live import LiveRefragmenter, RefragmentResult, align_layout

__all__ = [
    "DEFAULT_BORDER_GROWTH_THRESHOLD",
    "DEFAULT_CROSS_RATIO_THRESHOLD",
    "DEFAULT_MIN_BORDER_GAIN",
    "DEFAULT_UPDATE_SKEW_THRESHOLD",
    "LayoutSignals",
    "LiveRefragmenter",
    "REFRAGMENT_ALGORITHMS",
    "RefragmentResult",
    "RefragmentationAdvice",
    "RefragmentationAdvisor",
    "RefragmentationAssessment",
    "align_layout",
    "fragmenter_for",
    "measure_layout",
]
