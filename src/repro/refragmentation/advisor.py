"""The refragmentation advisor: watch locality erode, recommend a redraw.

The paper treats fragmentation design as an offline decision, but a served
database drifts: inserts between previously unrelated fragments grow the
disconnection sets, the update stream concentrates on a few fragments, and
the complementary information — whose size is quadratic in the border sets —
bloats.  The workload-adaptive allocation literature (arXiv:1508.07845,
arXiv:1607.06063) argues the layout should follow the workload; this advisor
operationalises that for the serving stack:

* :meth:`RefragmentationAdvisor.signals` measures the deployed layout —
  border-node share, cross-fragment edge ratio, complementary fact count,
  update skew from the :class:`~repro.incremental.versions.VersionVector` /
  :class:`~repro.incremental.delta.DeltaLog`, and — when the serving layer
  hands one over — read skew from the
  :class:`~repro.observability.querylog.QueryLog`, the captured workload
  itself rather than a structural proxy for it,
* :meth:`RefragmentationAdvisor.assess` compares them against the baseline
  recorded at deployment and decides whether a redraw is warranted,
* :meth:`RefragmentationAdvisor.recommend` computes a concrete candidate
  layout with a pluggable fragmenter (defaulting to the structural
  :func:`repro.fragmentation.advisor.recommend` trial runs) and keeps it only
  when it actually restores locality — a recommendation is a measured
  improvement, never a blind re-run.

The advisor only *recommends*; executing the redraw in place is
:class:`~repro.refragmentation.live.LiveRefragmenter`'s job, reached through
``FragmentedDatabase.refragment`` / ``QueryService.refragment``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..fragmentation import (
    AdvisorConstraints,
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    Fragmentation,
    Fragmenter,
    HashFragmenter,
    KConnectivityFragmenter,
    LinearFragmenter,
    recommend as recommend_fragmenter,
)
from ..fragmentation.metrics import border_node_set, complementary_information_size
from ..graph import DiGraph
from ..incremental.delta import DeltaLog
from ..incremental.versions import VersionVector
from ..observability.querylog import QueryLog

DEFAULT_BORDER_GROWTH_THRESHOLD = 1.5
DEFAULT_CROSS_RATIO_THRESHOLD = 0.6
DEFAULT_UPDATE_SKEW_THRESHOLD = 4.0
DEFAULT_QUERY_SKEW_THRESHOLD = 4.0
DEFAULT_MIN_QUERY_SAMPLE = 16
DEFAULT_MIN_BORDER_GAIN = 0.95

REFRAGMENT_ALGORITHMS = (
    "auto",
    "center",
    "center-distributed",
    "bond-energy",
    "linear",
    "k-connectivity",
    "hash",
)


def fragmenter_for(
    name: str, fragment_count: int, *, graph: Optional[DiGraph] = None, seed: int = 0
) -> Fragmenter:
    """Map an algorithm name to a configured fragmenter.

    The single name -> fragmenter mapping shared by the CLI and the serving
    layer's ``refragment`` strings.  ``auto`` delegates to the structural
    fragmentation advisor (which needs the graph).

    Raises:
        ValueError: for an unknown name, or ``auto`` without a graph.
    """
    if name == "center-distributed":
        return CenterBasedFragmenter(fragment_count, center_selection="distributed")
    if name == "center":
        return CenterBasedFragmenter(fragment_count, center_selection="random", seed=seed)
    if name == "bond-energy":
        return BondEnergyFragmenter(fragment_count)
    if name == "linear":
        return LinearFragmenter(fragment_count)
    if name == "k-connectivity":
        return KConnectivityFragmenter(fragment_count)
    if name == "hash":
        return HashFragmenter(fragment_count)
    if name == "auto":
        if graph is None:
            raise ValueError("algorithm 'auto' needs the graph to inspect")
        return recommend_fragmenter(
            graph, AdvisorConstraints(processor_count=fragment_count)
        ).fragmenter
    raise ValueError(
        f"unknown refragmentation algorithm {name!r} "
        f"(expected one of {REFRAGMENT_ALGORITHMS})"
    )


@dataclass(frozen=True)
class LayoutSignals:
    """The locality measurements of one deployed fragment layout.

    Attributes:
        fragment_count: number of fragments.
        border_nodes: distinct nodes appearing in any disconnection set.
        border_share: ``border_nodes / total nodes`` (0.0 for one fragment).
        cross_edge_ratio: fraction of directed edges with at least one border
            endpoint — the edges whose traversal may leave the fragment.
        complementary_facts: size of the border-to-border value store (the
            quadratic cost the paper warns about).
    """

    fragment_count: int
    border_nodes: int
    border_share: float
    cross_edge_ratio: float
    complementary_facts: int

    def as_dict(self) -> Dict[str, object]:
        """Return the signals as a flat dictionary (reporting / benchmarks)."""
        return {
            "fragment_count": self.fragment_count,
            "border_nodes": self.border_nodes,
            "border_share": round(self.border_share, 4),
            "cross_edge_ratio": round(self.cross_edge_ratio, 4),
            "complementary_facts": self.complementary_facts,
        }


@dataclass(frozen=True)
class RefragmentationAssessment:
    """The advisor's verdict on a deployed layout.

    Attributes:
        triggered: whether a redraw is warranted.
        reasons: one human-readable line per firing signal (empty when not
            triggered).
        signals: the current layout's measurements.
        baseline: the measurements recorded at deployment (``None`` when the
            advisor never saw a baseline — absolute thresholds still apply).
        update_skew: max/mean per-fragment update count from the version
            vector (1.0 = uniform, 0.0 = no updates yet).
        query_skew: max/mean per-fragment read concentration from the query
            log's retained window (0.0 when no log was provided or it was
            empty / below the minimum sample).
    """

    triggered: bool
    reasons: List[str]
    signals: LayoutSignals
    baseline: Optional[LayoutSignals]
    update_skew: float
    query_skew: float = 0.0


@dataclass
class RefragmentationAdvice:
    """A concrete recommended redraw.

    Attributes:
        fragmenter: the configured fragmenter producing the layout.
        proposed: the candidate fragmentation (over the live graph).
        current / candidate: the measured signals of both layouts.
        worthwhile: whether the candidate actually restores locality (border
            nodes shrink past the advisor's minimum-gain bar).
        rationale: human-readable comparison lines.
    """

    fragmenter: Fragmenter
    proposed: Fragmentation
    current: LayoutSignals
    candidate: LayoutSignals
    worthwhile: bool
    rationale: List[str] = field(default_factory=list)


def measure_layout(fragmentation: Fragmentation) -> LayoutSignals:
    """Measure the locality signals of a fragmentation."""
    graph = fragmentation.graph
    node_count = graph.node_count()
    border = border_node_set(fragmentation)
    cross_edges = sum(
        1 for source, target in graph.edges() if source in border or target in border
    )
    edge_count = graph.edge_count()
    return LayoutSignals(
        fragment_count=fragmentation.fragment_count(),
        border_nodes=len(border),
        border_share=len(border) / node_count if node_count else 0.0,
        cross_edge_ratio=cross_edges / edge_count if edge_count else 0.0,
        complementary_facts=complementary_information_size(fragmentation),
    )


class RefragmentationAdvisor:
    """Watches a served layout's locality and recommends boundary redraws.

    Args:
        fragmenter_factory: given ``(graph, fragment_count)``, return the
            fragmenter to compute candidate layouts with; defaults to the
            structural fragmentation advisor's trial-run recommendation.
        border_growth_threshold: trigger when the border-node count grew past
            this multiple of the baseline.
        cross_ratio_threshold: trigger when the cross-fragment edge ratio
            exceeds this absolute share (locality is gone regardless of how
            it started).
        update_skew_threshold: trigger when the per-fragment update skew
            (max/mean version) exceeds this — the update stream concentrates
            where the layout does not.
        query_skew_threshold: trigger when the query log's per-fragment read
            concentration (max/mean touches) exceeds this — the workload
            keeps crossing into a few fragments the layout scattered.
        min_query_sample: ignore the query log until it retains at least
            this many entries (a couple of warm-up queries are not a
            workload).
        min_border_gain: a candidate layout is worthwhile only when its
            border-node count is below ``current * min_border_gain`` (a
            redraw is not free; a wash is not worth executing).
    """

    def __init__(
        self,
        *,
        fragmenter_factory: Optional[Callable[[DiGraph, int], Fragmenter]] = None,
        border_growth_threshold: float = DEFAULT_BORDER_GROWTH_THRESHOLD,
        cross_ratio_threshold: float = DEFAULT_CROSS_RATIO_THRESHOLD,
        update_skew_threshold: float = DEFAULT_UPDATE_SKEW_THRESHOLD,
        query_skew_threshold: float = DEFAULT_QUERY_SKEW_THRESHOLD,
        min_query_sample: int = DEFAULT_MIN_QUERY_SAMPLE,
        min_border_gain: float = DEFAULT_MIN_BORDER_GAIN,
    ) -> None:
        if border_growth_threshold < 1.0:
            raise ValueError(
                f"border_growth_threshold must be >= 1.0, got {border_growth_threshold}"
            )
        self._fragmenter_factory = fragmenter_factory
        self._border_growth_threshold = border_growth_threshold
        self._cross_ratio_threshold = cross_ratio_threshold
        self._update_skew_threshold = update_skew_threshold
        self._query_skew_threshold = query_skew_threshold
        self._min_query_sample = min_query_sample
        self._min_border_gain = min_border_gain
        self._baseline: Optional[LayoutSignals] = None

    # ------------------------------------------------------------- observing

    @property
    def baseline(self) -> Optional[LayoutSignals]:
        """The signals recorded at deployment (``None`` before :meth:`observe`)."""
        return self._baseline

    def observe(self, fragmentation: Fragmentation) -> LayoutSignals:
        """Record the deployed layout as the growth baseline; returns its signals."""
        self._baseline = measure_layout(fragmentation)
        return self._baseline

    def signals(self, fragmentation: Fragmentation) -> LayoutSignals:
        """Measure the current layout without touching the baseline."""
        return measure_layout(fragmentation)

    @staticmethod
    def update_skew(
        fragmentation: Fragmentation,
        *,
        version_vector: Optional[VersionVector] = None,
        delta_log: Optional[DeltaLog] = None,
    ) -> float:
        """Return max/mean per-fragment update concentration (0.0 when idle).

        The version vector gives lifetime counts; the delta log adds the
        retained window's dirty-fragment entries, so a recent burst shows up
        even against a long uniform history.
        """
        counts: Dict[int, float] = {
            fragment_id: 0.0 for fragment_id in range(fragmentation.fragment_count())
        }
        if version_vector is not None:
            for fragment_id in counts:
                counts[fragment_id] += version_vector.version_of(fragment_id)
        if delta_log is not None:
            for record in delta_log.records():
                for fragment_id in record.dirty_fragments:
                    if fragment_id in counts:
                        counts[fragment_id] += 1.0
        total = sum(counts.values())
        if not counts or total <= 0.0:
            return 0.0
        return max(counts.values()) / (total / len(counts))

    # ------------------------------------------------------------- assessing

    def assess(
        self,
        fragmentation: Fragmentation,
        *,
        version_vector: Optional[VersionVector] = None,
        delta_log: Optional[DeltaLog] = None,
        query_log: Optional[QueryLog] = None,
    ) -> RefragmentationAssessment:
        """Decide whether the deployed layout has eroded enough to redraw.

        ``query_log`` adds the captured-workload trigger: when the retained
        window (past the minimum sample) concentrates its fragment touches
        hard enough, the layout is failing the queries actually asked even
        if every structural signal still looks healthy.
        """
        signals = measure_layout(fragmentation)
        skew = self.update_skew(
            fragmentation, version_vector=version_vector, delta_log=delta_log
        )
        query_skew = 0.0
        if query_log is not None and len(query_log) >= self._min_query_sample:
            query_skew = query_log.query_skew()
        reasons: List[str] = []
        if (
            self._baseline is not None
            and self._baseline.border_nodes > 0
            and signals.border_nodes
            > self._baseline.border_nodes * self._border_growth_threshold
        ):
            reasons.append(
                f"border nodes grew {signals.border_nodes} / "
                f"{self._baseline.border_nodes} = "
                f"{signals.border_nodes / self._baseline.border_nodes:.2f}x, past "
                f"{self._border_growth_threshold:.2f}x"
            )
        if signals.cross_edge_ratio > self._cross_ratio_threshold:
            reasons.append(
                f"cross-fragment edge ratio {signals.cross_edge_ratio:.2f} exceeds "
                f"{self._cross_ratio_threshold:.2f}"
            )
        if skew > self._update_skew_threshold:
            reasons.append(
                f"update skew {skew:.2f} exceeds {self._update_skew_threshold:.2f} "
                "(the update stream concentrates on a few fragments)"
            )
        if query_skew > self._query_skew_threshold:
            reasons.append(
                f"query skew {query_skew:.2f} exceeds "
                f"{self._query_skew_threshold:.2f} (the captured workload "
                "concentrates its reads on a few fragments)"
            )
        return RefragmentationAssessment(
            triggered=bool(reasons),
            reasons=reasons,
            signals=signals,
            baseline=self._baseline,
            update_skew=skew,
            query_skew=query_skew,
        )

    # ----------------------------------------------------------- recommending

    def recommend(
        self,
        fragmentation: Fragmentation,
        *,
        fragment_count: Optional[int] = None,
        current_signals: Optional[LayoutSignals] = None,
    ) -> RefragmentationAdvice:
        """Compute a concrete candidate layout and judge whether it helps.

        The candidate is produced over the live graph with the pluggable
        fragmenter factory (default: the structural fragmentation advisor),
        measured with the same signals as the deployed layout, and marked
        ``worthwhile`` only when it shrinks the border-node count past the
        minimum-gain bar.  ``current_signals`` reuses an assessment's
        already-computed measurement of the deployed layout instead of
        re-measuring it.
        """
        graph = fragmentation.graph
        count = fragment_count or fragmentation.fragment_count()
        if self._fragmenter_factory is not None:
            fragmenter = self._fragmenter_factory(graph, count)
        else:
            fragmenter = recommend_fragmenter(
                graph, AdvisorConstraints(processor_count=count)
            ).fragmenter
        proposed = fragmenter.fragment(graph.copy())
        current = current_signals or measure_layout(fragmentation)
        candidate = measure_layout(proposed)
        worthwhile = candidate.border_nodes < current.border_nodes * self._min_border_gain
        rationale = [
            f"current layout: {current.border_nodes} border nodes, "
            f"cross-edge ratio {current.cross_edge_ratio:.2f}, "
            f"{current.complementary_facts} complementary facts",
            f"candidate layout ({proposed.algorithm}): {candidate.border_nodes} border "
            f"nodes, cross-edge ratio {candidate.cross_edge_ratio:.2f}, "
            f"{candidate.complementary_facts} complementary facts",
            (
                "candidate restores locality"
                if worthwhile
                else "candidate does not improve locality enough to redraw"
            ),
        ]
        return RefragmentationAdvice(
            fragmenter=fragmenter,
            proposed=proposed,
            current=current,
            candidate=candidate,
            worthwhile=worthwhile,
            rationale=rationale,
        )
