"""Experiment harness for the paper's Tables 1-3.

Every table reports, per fragmentation algorithm, the four characteristics of
Sec. 4.2: average fragment size ``F``, average disconnection-set size ``DS``,
and the average deviations ``AF`` and ``ADS``.  The harness averages the
characteristics over a configurable number of randomly generated graphs
(seeds) — the paper does the same without stating how many graphs were used —
and returns both the per-seed rows and the aggregated table.

Paper reference values (for the measured-vs-paper comparison of
EXPERIMENTS.md) are included as module constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    FragmentationCharacteristics,
    Fragmenter,
    LinearFragmenter,
    characterize,
)
from ..generators import (
    RandomGraphConfig,
    TransportationGraphConfig,
    generate_random_graph,
    generate_transportation_graph,
    paper_table1_config,
    paper_table2_config,
)
from ..graph import DiGraph, mean

# --------------------------------------------------------------------------
# Paper reference values (copied from Tables 1-3 of the paper).

PAPER_TABLE1 = {
    "center-based": {"F": 107.0, "DS": 6.8, "AF": 28.0, "ADS": 2.8},
    "bond-energy": {"F": 112.8, "DS": 2.4, "AF": 40.2, "ADS": 1.4},
    "linear": {"F": 107.3, "DS": 13.3, "AF": 24.2, "ADS": 4.2},
}
"""Table 1: transportation graphs, 4 clusters of 25 nodes (~429 edges).

The scanned paper table is partially garbled; the DS column (2.4 for
bond-energy, 13.3 for linear) and the qualitative ordering of AF/ADS are the
reproduction targets stated in the running text."""

PAPER_TABLE2 = {
    "center-based": {"F": 791.8, "DS": 69.5, "AF": 636.3, "ADS": 13.8},
    "center-based-distributed": {"F": 791.8, "DS": 4.3, "AF": 12.4, "ADS": 2.9},
}
"""Table 2: 4 clusters of 150 nodes (~3167 edges), plain vs distributed centers."""

PAPER_TABLE3 = {
    "center-based": {"F": 77.0, "DS": 18.1, "AF": 40.2, "ADS": 8.8},
    "center-based-distributed": {"F": 77.0, "DS": 18.9, "AF": 34.7, "ADS": 5.9},
    "bond-energy": {"F": 93.2, "DS": 5.4, "AF": 88.4, "ADS": 2.1},
    "linear": {"F": 111.8, "DS": 35.8, "AF": 42.1, "ADS": 1.25},
}
"""Table 3: general graphs of 100 nodes (~279.5 edges)."""


def paper_table3_graph_config() -> RandomGraphConfig:
    """Random-graph parameters approximating the Table 3 workload (100 nodes, ~280 edges)."""
    return RandomGraphConfig(node_count=100, c1=7800.0, c2=0.08, extent=100.0)


# --------------------------------------------------------------------------
# Harness.


@dataclass
class ExperimentRow:
    """Aggregated characteristics of one algorithm over all trials."""

    algorithm: str
    trials: int
    average: Dict[str, float] = field(default_factory=dict)
    per_trial: List[FragmentationCharacteristics] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """Return a flat dict with the table columns (F, DS, AF, ADS...)."""
        row: Dict[str, object] = {"algorithm": self.algorithm, "trials": self.trials}
        row.update(self.average)
        return row


@dataclass
class ExperimentResult:
    """The outcome of one table experiment."""

    name: str
    rows: List[ExperimentRow] = field(default_factory=list)
    graph_statistics: Dict[str, float] = field(default_factory=dict)

    def as_rows(self) -> List[Dict[str, object]]:
        """Return the aggregated rows as plain dictionaries (for reporting)."""
        return [row.as_dict() for row in self.rows]

    def row(self, algorithm: str) -> ExperimentRow:
        """Return the aggregated row of one algorithm.

        Raises:
            KeyError: if the algorithm is not part of this experiment.
        """
        for candidate in self.rows:
            if candidate.algorithm == algorithm:
                return candidate
        raise KeyError(algorithm)


def _aggregate(
    name: str,
    graphs: Sequence[DiGraph],
    fragmenters: Mapping[str, Callable[[], Fragmenter]],
    *,
    include_diameter: bool = False,
) -> ExperimentResult:
    """Fragment every graph with every algorithm and average the characteristics."""
    result = ExperimentResult(name=name)
    result.graph_statistics = {
        "graphs": float(len(graphs)),
        "average_nodes": mean([float(graph.node_count()) for graph in graphs]),
        "average_edges": mean([float(graph.undirected_edge_count()) for graph in graphs]),
    }
    for algorithm_name, factory in fragmenters.items():
        row = ExperimentRow(algorithm=algorithm_name, trials=len(graphs))
        metrics: Dict[str, List[float]] = {"F": [], "DS": [], "AF": [], "ADS": [], "fragments": [], "cycles": []}
        for graph in graphs:
            fragmenter = factory()
            fragmentation = fragmenter.fragment(graph)
            characteristics = characterize(fragmentation, include_diameter=include_diameter)
            row.per_trial.append(characteristics)
            metrics["F"].append(characteristics.average_fragment_size)
            metrics["DS"].append(characteristics.average_disconnection_set_size)
            metrics["AF"].append(characteristics.fragment_size_deviation)
            metrics["ADS"].append(characteristics.disconnection_set_deviation)
            metrics["fragments"].append(float(characteristics.fragment_count))
            metrics["cycles"].append(float(characteristics.cycle_count))
        row.average = {key: mean(values) for key, values in metrics.items()}
        result.rows.append(row)
    return result


def run_table1(
    *,
    trials: int = 3,
    seed: int = 0,
    config: Optional[TransportationGraphConfig] = None,
) -> ExperimentResult:
    """Reproduce Table 1: fragmentation characteristics on transportation graphs.

    Workload: transportation graphs with 4 clusters of 25 nodes each
    (~429 edges, ~2.25 inter-cluster edges); algorithms: center-based
    (distributed centers), bond-energy, linear; 4 fragments requested.
    """
    config = config or paper_table1_config()
    graphs = [
        generate_transportation_graph(config, seed=seed + trial).graph for trial in range(trials)
    ]
    fragmenters: Dict[str, Callable[[], Fragmenter]] = {
        "center-based": lambda: CenterBasedFragmenter(
            config.cluster_count, center_selection="distributed"
        ),
        "bond-energy": lambda: BondEnergyFragmenter(config.cluster_count),
        "linear": lambda: LinearFragmenter(config.cluster_count),
    }
    return _aggregate("table1", graphs, fragmenters)


def run_table2(
    *,
    trials: int = 1,
    seed: int = 0,
    config: Optional[TransportationGraphConfig] = None,
) -> ExperimentResult:
    """Reproduce Table 2: plain vs distributed center selection on large transportation graphs.

    Workload: 4 clusters of 150 nodes (~3167 edges); algorithms: center-based
    with random center selection vs the distributed-centers refinement.
    """
    config = config or paper_table2_config()
    graphs = [
        generate_transportation_graph(config, seed=seed + trial).graph for trial in range(trials)
    ]
    fragmenters: Dict[str, Callable[[], Fragmenter]] = {
        "center-based": lambda: CenterBasedFragmenter(
            config.cluster_count, center_selection="random", seed=seed
        ),
        "center-based-distributed": lambda: CenterBasedFragmenter(
            config.cluster_count, center_selection="distributed"
        ),
    }
    return _aggregate("table2", graphs, fragmenters)


def run_table3(
    *,
    trials: int = 3,
    seed: int = 0,
    config: Optional[RandomGraphConfig] = None,
    fragment_count: int = 3,
) -> ExperimentResult:
    """Reproduce Table 3: fragmentation characteristics on general (unstructured) graphs.

    Workload: random graphs of 100 nodes (~279.5 edges), no imposed cluster
    structure; all four algorithm variants, 3 fragments requested (the paper
    does not fix the fragment count for this table; 3 matches its reported
    average fragment sizes of roughly one third of the edge count).
    """
    config = config or paper_table3_graph_config()
    graphs = [generate_random_graph(config, seed=seed + trial) for trial in range(trials)]
    fragmenters: Dict[str, Callable[[], Fragmenter]] = {
        "center-based": lambda: CenterBasedFragmenter(
            fragment_count, center_selection="random", seed=seed
        ),
        "center-based-distributed": lambda: CenterBasedFragmenter(
            fragment_count, center_selection="distributed"
        ),
        "bond-energy": lambda: BondEnergyFragmenter(fragment_count),
        "linear": lambda: LinearFragmenter(fragment_count),
    }
    return _aggregate("table3", graphs, fragmenters)


TABLE_RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
}
