"""Command-line experiment runner.

``python -m repro.experiments table1`` (or ``table2`` / ``table3`` / ``all``)
regenerates the corresponding table of the paper and prints it as text;
``--csv`` switches to CSV output, ``--trials`` and ``--seed`` control the
number of generated graphs.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..exceptions import ExperimentError
from .reporting import format_table, to_csv
from .tables import TABLE_RUNNERS, ExperimentResult

TABLE_COLUMNS = ["algorithm", "trials", "fragments", "F", "DS", "AF", "ADS", "cycles"]


def run_experiment(name: str, *, trials: Optional[int] = None, seed: int = 0) -> ExperimentResult:
    """Run one named experiment and return its result.

    Raises:
        ExperimentError: for an unknown experiment name.
    """
    if name not in TABLE_RUNNERS:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(TABLE_RUNNERS))}"
        )
    runner = TABLE_RUNNERS[name]
    kwargs = {"seed": seed}
    if trials is not None:
        kwargs["trials"] = trials
    return runner(**kwargs)


def render_result(result: ExperimentResult, *, as_csv: bool = False) -> str:
    """Render an experiment result as text or CSV."""
    rows = result.as_rows()
    if as_csv:
        return to_csv(rows, TABLE_COLUMNS)
    stats = result.graph_statistics
    title = (
        f"{result.name}: {stats.get('graphs', 0):.0f} graph(s), "
        f"avg nodes {stats.get('average_nodes', 0):.1f}, avg edges {stats.get('average_edges', 0):.1f}"
    )
    return format_table(rows, TABLE_COLUMNS, title=title)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the evaluation tables of the fragmentation paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(TABLE_RUNNERS) + ["all"],
        help="which table to regenerate",
    )
    parser.add_argument("--trials", type=int, default=None, help="number of generated graphs")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of a text table")
    arguments = parser.parse_args(argv)

    names: List[str] = sorted(TABLE_RUNNERS) if arguments.experiment == "all" else [arguments.experiment]
    outputs: List[str] = []
    for name in names:
        result = run_experiment(name, trials=arguments.trials, seed=arguments.seed)
        outputs.append(render_result(result, as_csv=arguments.csv))
    print("\n\n".join(outputs))
    return 0
