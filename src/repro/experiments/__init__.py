"""Experiment harness regenerating the paper's tables and figure-level claims."""

from .reporting import comparison_summary, format_table, to_csv
from .runner import main, render_result, run_experiment
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    ExperimentResult,
    ExperimentRow,
    paper_table3_graph_config,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRow",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "comparison_summary",
    "format_table",
    "main",
    "paper_table3_graph_config",
    "render_result",
    "run_experiment",
    "run_table1",
    "run_table2",
    "run_table3",
    "to_csv",
]
