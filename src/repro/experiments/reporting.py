"""Plain-text and CSV reporting for the experiment harness."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.1f}",
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        rows: the data; missing keys render as empty cells.
        columns: column order.
        title: optional title line printed above the table.
        float_format: format applied to float values.
    """
    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return "" if value is None else str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(r[index]) for r in rendered)) if rendered else len(column)
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render rows as CSV text with a header line."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def comparison_summary(
    measured: Mapping[str, float],
    reference: Mapping[str, float],
    *,
    label_measured: str = "measured",
    label_reference: str = "paper",
) -> str:
    """Render a small measured-vs-reference comparison block (for EXPERIMENTS.md)."""
    lines = [f"{'metric':<30}{label_reference:>12}{label_measured:>12}"]
    for key in reference:
        reference_value = reference[key]
        measured_value = measured.get(key, float("nan"))
        lines.append(f"{key:<30}{reference_value:>12.1f}{measured_value:>12.1f}")
    return "\n".join(lines)
