"""Horizontally fragmented relations.

At the database level the disconnection set approach is a *horizontal
fragmentation* of the base relation ``R(source, target, cost)``: each site
stores a selection of R's tuples, the union of the fragments reconstructs R,
and the per-fragment transitive closure queries restrict themselves to their
fragment plus the (small) disconnection-set selections.  This module provides
that relational view, independent of graphs, so that the paper's algebraic
framing — fragments are relations, reconstruction is a union, disconnection
set filtering is a semijoin — is directly executable.

It is also where classic distribution checks live: completeness (every tuple
of R is in some fragment), disjointness (no tuple is stored twice) and
reconstructability (the union equals R).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import FragmentationError, SchemaError
from .algebra import select, select_in, union
from .relation import Relation, Row

Predicate = Callable[[Dict[str, object]], bool]


@dataclass
class FragmentedRelation:
    """A relation split into named horizontal fragments over a shared schema.

    Attributes:
        schema: the shared attribute names.
        fragments: fragment name -> fragment relation.
        name: the logical relation name.
    """

    schema: Tuple[str, ...]
    fragments: Dict[str, Relation] = field(default_factory=dict)
    name: str = "R"

    # ------------------------------------------------------------ factories

    @staticmethod
    def from_predicates(
        relation: Relation,
        predicates: Mapping[str, Predicate],
        *,
        rest_fragment: Optional[str] = None,
    ) -> "FragmentedRelation":
        """Fragment ``relation`` by named selection predicates.

        Tuples matching several predicates go to the first matching fragment
        (mapping order); tuples matching none go to ``rest_fragment`` when
        given, otherwise a :class:`FragmentationError` is raised (the
        fragmentation would not be complete).
        """
        assigned: Dict[str, List[Row]] = {name: [] for name in predicates}
        rest: List[Row] = []
        for row in relation.rows:
            as_dict = dict(zip(relation.schema, row))
            for name, predicate in predicates.items():
                if predicate(as_dict):
                    assigned[name].append(row)
                    break
            else:
                rest.append(row)
        if rest and rest_fragment is None:
            raise FragmentationError(
                f"{len(rest)} tuple(s) match no fragmentation predicate and no rest fragment was given"
            )
        fragments = {
            name: Relation(relation.schema, rows, name=f"{relation.name}_{name}")
            for name, rows in assigned.items()
        }
        if rest_fragment is not None:
            fragments[rest_fragment] = Relation(
                relation.schema, rest, name=f"{relation.name}_{rest_fragment}"
            )
        return FragmentedRelation(schema=relation.schema, fragments=fragments, name=relation.name)

    @staticmethod
    def from_attribute_values(
        relation: Relation,
        attribute: str,
        groups: Mapping[str, Iterable[object]],
        *,
        rest_fragment: Optional[str] = "rest",
    ) -> "FragmentedRelation":
        """Fragment by the value of one attribute (e.g. the country of a city)."""
        predicates: Dict[str, Predicate] = {}
        for name, values in groups.items():
            value_set = set(values)
            predicates[name] = (lambda row, vs=value_set: row[attribute] in vs)
        return FragmentedRelation.from_predicates(relation, predicates, rest_fragment=rest_fragment)

    @staticmethod
    def from_graph_fragmentation(fragmentation, *, name: str = "R") -> "FragmentedRelation":
        """Build the relational view of a graph :class:`~repro.fragmentation.base.Fragmentation`."""
        schema = ("source", "target", "cost")
        fragments: Dict[str, Relation] = {}
        graph = fragmentation.graph
        for fragment in fragmentation.fragments:
            rows = [
                (source, target, graph.edge_weight(source, target))
                for source, target in fragment.edges
            ]
            fragments[f"fragment_{fragment.fragment_id}"] = Relation(
                schema, rows, name=f"{name}_{fragment.fragment_id}"
            )
        return FragmentedRelation(schema=schema, fragments=fragments, name=name)

    # ------------------------------------------------------------ accessors

    def fragment(self, name: str) -> Relation:
        """Return one fragment by name.

        Raises:
            KeyError: if the fragment does not exist.
        """
        return self.fragments[name]

    def fragment_names(self) -> List[str]:
        """Return the fragment names in insertion order."""
        return list(self.fragments)

    def cardinality(self) -> int:
        """Return the total number of stored tuples (duplicates across fragments count once)."""
        return len(self._all_rows())

    def fragment_cardinalities(self) -> Dict[str, int]:
        """Return per-fragment tuple counts (the relational view of the paper's F)."""
        return {name: fragment.cardinality() for name, fragment in self.fragments.items()}

    def _all_rows(self) -> frozenset:
        rows: set = set()
        for fragment in self.fragments.values():
            rows |= fragment.rows
        return frozenset(rows)

    # ------------------------------------------------------------ operations

    def reconstruct(self) -> Relation:
        """Return the union of all fragments (the reconstructed base relation)."""
        if not self.fragments:
            return Relation.empty(self.schema, name=self.name)
        result: Optional[Relation] = None
        for fragment in self.fragments.values():
            result = fragment if result is None else union(result, fragment)
        assert result is not None
        return result.with_name(self.name)

    def select_fragmentwise(self, predicate: Predicate) -> Dict[str, Relation]:
        """Push a selection into every fragment (the distributed query pattern)."""
        return {name: select(fragment, predicate) for name, fragment in self.fragments.items()}

    def semijoin_reduce(self, attribute: str, values: Iterable[object]) -> Dict[str, Relation]:
        """Restrict every fragment to tuples whose ``attribute`` is in ``values``.

        This is the disconnection-set selection expressed relationally: the
        values are the border nodes, and each site filters its fragment
        locally before any data is shipped.
        """
        value_list = list(values)
        return {
            name: select_in(fragment, attribute, value_list)
            for name, fragment in self.fragments.items()
        }

    def locate(self, row: Sequence[object]) -> List[str]:
        """Return the names of the fragments storing ``row``."""
        key = tuple(row)
        return [name for name, fragment in self.fragments.items() if key in fragment]

    # ------------------------------------------------------------ validation

    def is_complete(self, base: Relation) -> bool:
        """Return ``True`` if every tuple of ``base`` is stored in some fragment."""
        self._require_same_schema(base)
        return base.rows <= self._all_rows()

    def is_disjoint(self) -> bool:
        """Return ``True`` if no tuple is stored in more than one fragment."""
        seen: set = set()
        for fragment in self.fragments.values():
            overlap = seen & fragment.rows
            if overlap:
                return False
            seen |= fragment.rows
        return True

    def reconstructs(self, base: Relation) -> bool:
        """Return ``True`` if the union of the fragments equals ``base`` exactly."""
        self._require_same_schema(base)
        return self._all_rows() == base.rows

    def _require_same_schema(self, base: Relation) -> None:
        if base.schema != self.schema:
            raise SchemaError(
                f"fragmented relation has schema {self.schema!r} but the base relation has {base.schema!r}"
            )
