"""Relational algebra operators over :class:`~repro.relational.relation.Relation`.

The operators are pure functions: they never mutate their inputs and always
return new relations.  Together with the fixpoint operators in
:mod:`repro.relational.fixpoint` they are sufficient to express the transitive
closure queries of the paper in the same algebraic style the PRISMA/DB
machine evaluates them, including the joins used for the final assembly of
per-fragment results.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import SchemaError
from .relation import Relation, Row

Predicate = Callable[[Dict[str, object]], bool]


def select(relation: Relation, predicate: Predicate) -> Relation:
    """Return the rows of ``relation`` satisfying ``predicate``.

    The predicate receives each row as an attribute-name dictionary, which
    keeps call sites readable (``lambda r: r["source"] == "Amsterdam"``).
    """
    schema = relation.schema
    selected = [row for row in relation.rows if predicate(dict(zip(schema, row)))]
    return relation.with_rows(selected)


def select_eq(relation: Relation, attribute: str, value: object) -> Relation:
    """Return the rows where ``attribute`` equals ``value`` (index-based, fast path)."""
    index = relation.attribute_index(attribute)
    return relation.with_rows(row for row in relation.rows if row[index] == value)


def select_in(relation: Relation, attribute: str, values: Iterable[object]) -> Relation:
    """Return the rows where ``attribute`` is one of ``values``.

    This is the *disconnection set selection*: the per-fragment transitive
    closure queries restrict their search to paths entering or leaving the
    fragment through the (small) set of border nodes, which is exactly a
    semijoin of the fragment with the disconnection set.
    """
    index = relation.attribute_index(attribute)
    value_set = set(values)
    return relation.with_rows(row for row in relation.rows if row[index] in value_set)


def project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Return the projection of ``relation`` onto ``attributes`` (duplicates removed)."""
    indices = [relation.attribute_index(attribute) for attribute in attributes]
    rows = {tuple(row[i] for i in indices) for row in relation.rows}
    return Relation(attributes, rows, name=relation.name)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """Return ``relation`` with attributes renamed according to ``mapping``.

    Attributes not mentioned in ``mapping`` keep their names.

    Raises:
        SchemaError: if a key of ``mapping`` is not an attribute, or the
            renaming would create duplicate attribute names.
    """
    for old in mapping:
        relation.attribute_index(old)
    new_schema = [mapping.get(attribute, attribute) for attribute in relation.schema]
    if len(set(new_schema)) != len(new_schema):
        raise SchemaError(f"renaming {dict(mapping)!r} creates duplicate attributes {new_schema!r}")
    return Relation(new_schema, relation.rows, name=relation.name)


def union(left: Relation, right: Relation) -> Relation:
    """Return the set union of two union-compatible relations.

    Raises:
        SchemaError: if the schemas differ.
    """
    _require_same_schema(left, right, "union")
    return left.with_rows(left.rows | right.rows)


def difference(left: Relation, right: Relation) -> Relation:
    """Return the rows of ``left`` that are not in ``right``.

    Raises:
        SchemaError: if the schemas differ.
    """
    _require_same_schema(left, right, "difference")
    return left.with_rows(left.rows - right.rows)


def intersection(left: Relation, right: Relation) -> Relation:
    """Return the rows present in both relations.

    Raises:
        SchemaError: if the schemas differ.
    """
    _require_same_schema(left, right, "intersection")
    return left.with_rows(left.rows & right.rows)


def cartesian_product(left: Relation, right: Relation) -> Relation:
    """Return the Cartesian product; attribute clashes are prefixed with the relation names."""
    left_schema = list(left.schema)
    right_schema = [
        attribute if attribute not in left.schema else f"{right.name}.{attribute}"
        for attribute in right.schema
    ]
    schema = left_schema + right_schema
    rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation(schema, rows, name=f"{left.name}x{right.name}")


def natural_join(left: Relation, right: Relation) -> Relation:
    """Return the natural join on all shared attribute names (hash join).

    The result schema is the left schema followed by the right-only
    attributes, matching the usual convention.
    """
    shared = [attribute for attribute in left.schema if attribute in right.schema]
    if not shared:
        return cartesian_product(left, right)
    left_idx = [left.attribute_index(a) for a in shared]
    right_idx = [right.attribute_index(a) for a in shared]
    right_only = [a for a in right.schema if a not in shared]
    right_only_idx = [right.attribute_index(a) for a in right_only]

    buckets: Dict[Tuple[object, ...], List[Row]] = {}
    for row in right.rows:
        key = tuple(row[i] for i in right_idx)
        buckets.setdefault(key, []).append(row)

    schema = list(left.schema) + right_only
    rows: List[Row] = []
    for lrow in left.rows:
        key = tuple(lrow[i] for i in left_idx)
        for rrow in buckets.get(key, ()):
            rows.append(lrow + tuple(rrow[i] for i in right_only_idx))
    return Relation(schema, rows, name=f"{left.name}*{right.name}")


def equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[Tuple[str, str]],
    *,
    suffix: str = "_r",
) -> Relation:
    """Return the equi-join of two relations on explicit attribute pairs.

    Args:
        left, right: the operands.
        on: pairs ``(left_attribute, right_attribute)`` that must be equal.
        suffix: appended to right attribute names that clash with left ones
            in the result schema (join attributes from the right are dropped).

    This is the join shape used in the assembly phase of the disconnection
    set approach, where per-fragment path relations are chained on border
    nodes: ``paths_i.exit = paths_{i+1}.entry``.
    """
    left_idx = [left.attribute_index(l) for l, _ in on]
    right_idx = [right.attribute_index(r) for _, r in on]
    dropped = {r for _, r in on}

    right_kept = [a for a in right.schema if a not in dropped]
    right_kept_idx = [right.attribute_index(a) for a in right_kept]
    result_right_names = [a if a not in left.schema else f"{a}{suffix}" for a in right_kept]
    schema = list(left.schema) + result_right_names

    buckets: Dict[Tuple[object, ...], List[Row]] = {}
    for row in right.rows:
        key = tuple(row[i] for i in right_idx)
        buckets.setdefault(key, []).append(row)

    rows: List[Row] = []
    for lrow in left.rows:
        key = tuple(lrow[i] for i in left_idx)
        for rrow in buckets.get(key, ()):
            rows.append(lrow + tuple(rrow[i] for i in right_kept_idx))
    return Relation(schema, rows, name=f"{left.name}|x|{right.name}")


def semijoin(left: Relation, right: Relation, on: Sequence[Tuple[str, str]]) -> Relation:
    """Return the rows of ``left`` that join with at least one row of ``right``."""
    left_idx = [left.attribute_index(l) for l, _ in on]
    right_idx = [right.attribute_index(r) for _, r in on]
    keys = {tuple(row[i] for i in right_idx) for row in right.rows}
    return left.with_rows(row for row in left.rows if tuple(row[i] for i in left_idx) in keys)


def compose(left: Relation, right: Relation) -> Relation:
    """Return the relational composition of two binary path relations.

    Both operands must have schema ``(source, target[, cost])``.  The result
    contains ``(a, c)`` whenever ``(a, b)`` is in ``left`` and ``(b, c)`` is in
    ``right``; when a ``cost`` attribute is present, costs are added.  This is
    the single algebraic step of the transitive closure iteration.
    """
    has_cost = "cost" in left.schema and "cost" in right.schema
    ls, lt = left.attribute_index("source"), left.attribute_index("target")
    rs, rt = right.attribute_index("source"), right.attribute_index("target")
    lc = left.attribute_index("cost") if has_cost else None
    rc = right.attribute_index("cost") if has_cost else None

    buckets: Dict[object, List[Row]] = {}
    for row in right.rows:
        buckets.setdefault(row[rs], []).append(row)

    rows: List[Row] = []
    for lrow in left.rows:
        for rrow in buckets.get(lrow[lt], ()):
            if has_cost:
                rows.append((lrow[ls], rrow[rt], lrow[lc] + rrow[rc]))  # type: ignore[index]
            else:
                rows.append((lrow[ls], rrow[rt]))
    schema = ("source", "target", "cost") if has_cost else ("source", "target")
    return Relation(schema, rows, name=f"{left.name}o{right.name}")


def aggregate_min(relation: Relation, group_by: Sequence[str], value_attribute: str) -> Relation:
    """Group rows by ``group_by`` and keep the minimum of ``value_attribute``.

    For shortest-path transitive closure this is the "cheapest path per
    (source, target)" reduction applied after each composition step and in the
    final assembly.
    """
    group_idx = [relation.attribute_index(a) for a in group_by]
    value_idx = relation.attribute_index(value_attribute)
    best: Dict[Tuple[object, ...], object] = {}
    for row in relation.rows:
        key = tuple(row[i] for i in group_idx)
        value = row[value_idx]
        if key not in best or value < best[key]:  # type: ignore[operator]
            best[key] = value
    schema = list(group_by) + [value_attribute]
    rows = [key + (value,) for key, value in best.items()]
    return Relation(schema, rows, name=relation.name)


def _require_same_schema(left: Relation, right: Relation, operation: str) -> None:
    if left.schema != right.schema:
        raise SchemaError(
            f"{operation} requires identical schemas, got {left.schema!r} and {right.schema!r}"
        )
