"""Relations: schema-carrying sets of tuples.

The disconnection set approach is formulated over a relational database: the
base relation ``R(source, target, cost)`` stores the graph, fragments are
horizontal fragments of ``R``, and the transitive closure is evaluated with
relational algebra plus a fixpoint.  This module provides the ``Relation``
value type that the algebra in :mod:`repro.relational.algebra` operates on.

A relation is an *immutable* set of equal-length tuples together with a
schema (a tuple of attribute names).  Duplicate tuples are eliminated, as in
the standard set semantics of the relational model.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import SchemaError

Row = Tuple[object, ...]


class Relation:
    """An immutable relation: a named schema plus a set of rows."""

    __slots__ = ("_schema", "_rows", "_name")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Optional[Iterable[Sequence[object]]] = None,
        *,
        name: str = "R",
    ) -> None:
        schema_tuple = tuple(schema)
        if len(set(schema_tuple)) != len(schema_tuple):
            raise SchemaError(f"duplicate attribute names in schema {schema_tuple!r}")
        if not schema_tuple:
            raise SchemaError("a relation needs at least one attribute")
        normalized: List[Row] = []
        if rows is not None:
            for row in rows:
                row_tuple = tuple(row)
                if len(row_tuple) != len(schema_tuple):
                    raise SchemaError(
                        f"row {row_tuple!r} has {len(row_tuple)} values but the schema "
                        f"{schema_tuple!r} has {len(schema_tuple)} attributes"
                    )
                normalized.append(row_tuple)
        self._schema: Tuple[str, ...] = schema_tuple
        self._rows: FrozenSet[Row] = frozenset(normalized)
        self._name = name

    # ------------------------------------------------------------ properties

    @property
    def schema(self) -> Tuple[str, ...]:
        """The attribute names, in order."""
        return self._schema

    @property
    def name(self) -> str:
        """The (informational) name of the relation."""
        return self._name

    @property
    def rows(self) -> FrozenSet[Row]:
        """The rows as a frozen set of tuples."""
        return self._rows

    def arity(self) -> int:
        """Return the number of attributes."""
        return len(self._schema)

    def cardinality(self) -> int:
        """Return the number of rows."""
        return len(self._rows)

    def is_empty(self) -> bool:
        """Return ``True`` if the relation has no rows."""
        return not self._rows

    def attribute_index(self, attribute: str) -> int:
        """Return the position of ``attribute`` in the schema.

        Raises:
            SchemaError: if the attribute is not part of the schema.
        """
        try:
            return self._schema.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} is not in schema {self._schema!r}"
            ) from None

    # -------------------------------------------------------------- protocol

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._schema, self._rows))

    def __repr__(self) -> str:
        return f"Relation(name={self._name!r}, schema={self._schema!r}, rows={len(self._rows)})"

    # --------------------------------------------------------------- helpers

    def with_name(self, name: str) -> "Relation":
        """Return the same relation under a different name."""
        return Relation(self._schema, self._rows, name=name)

    def with_rows(self, rows: Iterable[Sequence[object]]) -> "Relation":
        """Return a relation with the same schema and name but new rows."""
        return Relation(self._schema, rows, name=self._name)

    def sorted_rows(self) -> List[Row]:
        """Return the rows sorted by their ``repr`` (stable for reporting)."""
        return sorted(self._rows, key=repr)

    def as_dicts(self) -> List[Dict[str, object]]:
        """Return the rows as attribute-name dictionaries, sorted for stability."""
        return [dict(zip(self._schema, row)) for row in self.sorted_rows()]

    def column(self, attribute: str) -> List[object]:
        """Return the values in ``attribute`` (with duplicates, sorted by repr)."""
        index = self.attribute_index(attribute)
        return [row[index] for row in self.sorted_rows()]

    def distinct_values(self, attribute: str) -> FrozenSet[object]:
        """Return the distinct values appearing in ``attribute``."""
        index = self.attribute_index(attribute)
        return frozenset(row[index] for row in self._rows)

    @staticmethod
    def empty(schema: Sequence[str], *, name: str = "R") -> "Relation":
        """Return an empty relation over ``schema``."""
        return Relation(schema, [], name=name)


def edge_relation(
    edges: Iterable[Tuple[object, object, float]],
    *,
    schema: Sequence[str] = ("source", "target", "cost"),
    name: str = "R",
) -> Relation:
    """Build the base relation R(source, target, cost) from weighted edges."""
    return Relation(schema, [tuple(edge) for edge in edges], name=name)


def pair_relation(
    pairs: Iterable[Tuple[object, object]],
    *,
    schema: Sequence[str] = ("source", "target"),
    name: str = "R",
) -> Relation:
    """Build a binary relation from (source, target) pairs."""
    return Relation(schema, [tuple(pair) for pair in pairs], name=name)
