"""Relational algebra engine: relations, operators, and fixpoint evaluation.

The disconnection set approach is a database strategy: the graph lives in a
relation, fragments are horizontal fragments of that relation, and both the
per-fragment transitive closures and the final assembly are relational
queries.  This package provides that machinery in pure Python.
"""

from .aggregates import (
    argmin_rows,
    count,
    count_distinct,
    group_count,
    maximum,
    minimum,
    total,
)
from .algebra import (
    aggregate_min,
    cartesian_product,
    compose,
    difference,
    equi_join,
    intersection,
    natural_join,
    project,
    rename,
    select,
    select_eq,
    select_in,
    semijoin,
    union,
)
from .fixpoint import FixpointStatistics, naive_closure, seminaive_closure, smart_closure
from .fragmented import FragmentedRelation
from .relation import Relation, edge_relation, pair_relation

__all__ = [
    "FixpointStatistics",
    "FragmentedRelation",
    "Relation",
    "aggregate_min",
    "argmin_rows",
    "cartesian_product",
    "compose",
    "count",
    "count_distinct",
    "difference",
    "edge_relation",
    "equi_join",
    "group_count",
    "intersection",
    "maximum",
    "minimum",
    "naive_closure",
    "natural_join",
    "pair_relation",
    "project",
    "rename",
    "select",
    "select_eq",
    "select_in",
    "semijoin",
    "seminaive_closure",
    "smart_closure",
    "total",
    "union",
]
