"""Aggregate helpers over relations.

Besides the grouped minimum already provided by
:func:`repro.relational.algebra.aggregate_min`, the experiment harness and the
assembly phase occasionally need counts, grouped counts and min/max scans;
they are collected here to keep :mod:`repro.relational.algebra` focused on the
classical operators.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .relation import Relation


def count(relation: Relation) -> int:
    """Return the number of rows in ``relation``."""
    return relation.cardinality()


def count_distinct(relation: Relation, attribute: str) -> int:
    """Return the number of distinct values of ``attribute``."""
    return len(relation.distinct_values(attribute))


def group_count(relation: Relation, group_by: Sequence[str]) -> Relation:
    """Return a relation with one row per group and a ``count`` attribute."""
    indices = [relation.attribute_index(a) for a in group_by]
    counts: Dict[Tuple[object, ...], int] = {}
    for row in relation.rows:
        key = tuple(row[i] for i in indices)
        counts[key] = counts.get(key, 0) + 1
    schema = list(group_by) + ["count"]
    return Relation(schema, [key + (value,) for key, value in counts.items()], name=relation.name)


def minimum(relation: Relation, attribute: str) -> Optional[object]:
    """Return the minimum value of ``attribute`` or ``None`` for an empty relation."""
    index = relation.attribute_index(attribute)
    values = [row[index] for row in relation.rows]
    return min(values) if values else None


def maximum(relation: Relation, attribute: str) -> Optional[object]:
    """Return the maximum value of ``attribute`` or ``None`` for an empty relation."""
    index = relation.attribute_index(attribute)
    values = [row[index] for row in relation.rows]
    return max(values) if values else None


def total(relation: Relation, attribute: str) -> float:
    """Return the sum of ``attribute`` over all rows (0.0 when empty)."""
    index = relation.attribute_index(attribute)
    return float(sum(row[index] for row in relation.rows))  # type: ignore[arg-type]


def argmin_rows(relation: Relation, attribute: str) -> List[Tuple[object, ...]]:
    """Return all rows attaining the minimum of ``attribute`` (sorted for stability)."""
    index = relation.attribute_index(attribute)
    best = minimum(relation, attribute)
    if best is None:
        return []
    return sorted((row for row in relation.rows if row[index] == best), key=repr)
