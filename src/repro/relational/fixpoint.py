"""Fixpoint (transitive closure) operators over relations.

Transitive closure does not belong to the basic relational algebra; the paper
treats it as an extension (alpha operator / logic rules) evaluated by an
iterative fixpoint.  This module provides the three standard evaluation
strategies over the binary path relation ``R(source, target[, cost])``:

* :func:`naive_closure` — recompute the whole closure each round,
* :func:`seminaive_closure` — differential evaluation; only newly derived
  tuples are joined with the base relation in the next round,
* :func:`smart_closure` — logarithmic "squaring" evaluation.

Each function also reports evaluation statistics (iterations, tuples
produced), which is what the parallel cost model consumes: the paper argues
that fragmenting the graph cuts the number of iterations because the fixpoint
is reached after *diameter-many* rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .algebra import aggregate_min, compose, union
from .relation import Relation


@dataclass
class FixpointStatistics:
    """Bookkeeping for one fixpoint evaluation."""

    iterations: int = 0
    tuples_produced: int = 0
    delta_sizes: List[int] = field(default_factory=list)
    result_size: int = 0

    def record_round(self, delta_size: int) -> None:
        """Record one iteration producing ``delta_size`` new tuples."""
        self.iterations += 1
        self.tuples_produced += delta_size
        self.delta_sizes.append(delta_size)


def _minimize(relation: Relation) -> Relation:
    """Keep the cheapest tuple per (source, target) when a cost attribute exists."""
    if "cost" in relation.schema:
        return aggregate_min(relation, ("source", "target"), "cost")
    return relation


def _closure_union(left: Relation, right: Relation) -> Relation:
    """Union two path relations and keep cheapest costs when applicable."""
    return _minimize(union(left, right))


def naive_closure(relation: Relation, *, max_iterations: Optional[int] = None) -> tuple:
    """Compute the transitive closure by naive iteration.

    Each round recomputes ``closure := closure ∪ (closure ∘ R)`` from the full
    current closure.  Semantically equivalent to semi-naive evaluation but
    does redundant work; included as the textbook baseline the paper's
    efficiency discussion presupposes.

    Returns:
        ``(closure, statistics)``.
    """
    closure = _minimize(relation)
    stats = FixpointStatistics()
    while True:
        if max_iterations is not None and stats.iterations >= max_iterations:
            break
        expanded = _closure_union(closure, compose(closure, relation))
        new_tuples = len(expanded.rows - closure.rows)
        stats.record_round(len(expanded))
        if expanded == closure:
            break
        closure = expanded
        if new_tuples == 0:
            break
    stats.result_size = len(closure)
    return closure, stats


def seminaive_closure(relation: Relation, *, max_iterations: Optional[int] = None) -> tuple:
    """Compute the transitive closure by semi-naive (differential) iteration.

    Only the tuples derived in the previous round (the *delta*) are joined
    with the base relation.  For shortest-path relations a tuple also counts
    as new when it improves the best known cost for its (source, target)
    pair.

    Returns:
        ``(closure, statistics)``.
    """
    base = _minimize(relation)
    closure = base
    delta = base
    stats = FixpointStatistics()
    while not delta.is_empty():
        if max_iterations is not None and stats.iterations >= max_iterations:
            break
        candidate = compose(delta, base)
        combined = _closure_union(closure, candidate)
        new_rows = combined.rows - closure.rows
        stats.record_round(len(candidate))
        if not new_rows:
            break
        delta = Relation(combined.schema, new_rows, name=relation.name)
        closure = combined
    stats.result_size = len(closure)
    return closure, stats


def smart_closure(relation: Relation, *, max_iterations: Optional[int] = None) -> tuple:
    """Compute the transitive closure by repeated squaring ("smart" / logarithmic).

    Each round composes the current closure with itself, doubling the maximum
    path length covered; the fixpoint is reached after ``ceil(log2(diameter))``
    rounds.  The paper cites this family of algorithms ([16]) as the
    single-site state of the art that per-fragment evaluation can reuse.

    Returns:
        ``(closure, statistics)``.
    """
    closure = _minimize(relation)
    stats = FixpointStatistics()
    while True:
        if max_iterations is not None and stats.iterations >= max_iterations:
            break
        squared = _closure_union(closure, compose(closure, closure))
        new_rows = squared.rows - closure.rows
        stats.record_round(len(squared))
        if not new_rows:
            break
        closure = squared
    stats.result_size = len(closure)
    return closure, stats
