"""Command-line interface for the library.

``python -m repro <command>`` exposes the main workflows without writing
Python:

* ``generate``  — generate a transportation or general random graph and write
  it to a JSON file,
* ``fragment``  — fragment a graph JSON file with one of the paper's
  algorithms (or the advisor's recommendation) and print the Table 1-3
  characteristics,
* ``query``     — answer a reachability or shortest-path query on a graph
  with the disconnection set approach,
* ``experiment``— regenerate one of the paper's tables (delegates to
  :mod:`repro.experiments`),
* ``snapshot``  — prepare a graph (fragment + complementary information) and
  persist the catalog so later commands skip the preparation,
* ``batch-query``— answer many queries in one shared-work batch, from a
  snapshot directory or a graph JSON file,
* ``serve``     — run a long-lived query service reading a line protocol
  (``query A B`` / ``update A B W`` / ``stats`` / ``trace on|off`` /
  ``slowlog N`` / ...) from stdin,
* ``net-serve`` — run the network serving tier: an asyncio TCP server
  speaking newline-delimited JSON over the same grammar, with preemptable
  closure streaming, continuation tokens, and admission control,
* ``stats``     — run a query workload and render the telemetry it produced
  (text with latency percentiles, JSON, or Prometheus text exposition;
  ``--health`` renders the pool-liveness/SLO health document instead),
* ``profile``   — run a query workload under the continuous sampling
  profiler and print the hot frames, span breakdown, and kernel-backend
  shares.

Both serving front-ends parse commands through the one shared grammar in
:mod:`repro.serving.protocol`, so the surfaces cannot drift apart.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .disconnection import DisconnectionSetEngine, RouteReconstructingEngine
from .exceptions import ReproError
from .experiments import render_result, run_experiment
from .experiments.reporting import format_table
from .fragmentation import AdvisorConstraints, Fragmenter, characterize, recommend
from .generators import (
    RandomGraphConfig,
    TransportationGraphConfig,
    generate_random_graph,
    generate_transportation_graph,
)
from .graph import DiGraph, load_json, save_json
from .observability import SamplingProfiler, SLOMonitor, default_slos
from .refragmentation import (
    REFRAGMENT_ALGORITHMS,
    RefragmentationAdvisor,
    fragmenter_for,
)
from .service import (
    QueryService,
    WorkerPoolError,
    is_snapshot_directory,
    save_snapshot,
    semiring_from_name,
)
from .serving import (
    AdmissionConfig,
    ClosureServer,
    Request,
    ServingConfig,
    commands_for,
    decode_node,
    parse_line,
)

# The one name -> algorithm set, shared with the serving layer's refragment
# strings so the two surfaces can never drift apart.
ALGORITHMS = REFRAGMENT_ALGORITHMS
SEMIRINGS = ("shortest-path", "reachability")


def _make_fragmenter(name: str, fragment_count: int, graph: DiGraph, seed: int) -> Fragmenter:
    """Map a CLI algorithm name to a configured fragmenter.

    Delegates to the shared :func:`repro.refragmentation.fragmenter_for`
    mapping; only the ``auto`` path differs (the CLI prints the advisor's
    rationale).
    """
    if name == "auto":
        recommendation = recommend(graph, AdvisorConstraints(processor_count=fragment_count))
        for line in recommendation.rationale:
            print(f"# advisor: {line}")
        return recommendation.fragmenter
    return fragmenter_for(name, fragment_count, graph=graph, seed=seed)


def _decode_node(value: str):
    """Interpret a CLI node argument: integers stay integers, the rest are strings."""
    return decode_node(value)


# ----------------------------------------------------------------- commands


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "transportation":
        config = TransportationGraphConfig(
            cluster_count=args.clusters,
            nodes_per_cluster=args.nodes,
            inter_cluster_edges=args.inter_cluster_edges,
        )
        network = generate_transportation_graph(config, seed=args.seed)
        graph = network.graph
    else:
        config = RandomGraphConfig(node_count=args.nodes, c1=args.c1, c2=args.c2)
        graph = generate_random_graph(config, seed=args.seed)
    save_json(graph, args.output)
    print(
        f"wrote {args.output}: {graph.node_count()} nodes, "
        f"{graph.undirected_edge_count()} undirected edges"
    )
    return 0


def _cmd_fragment(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    fragmentation.validate()
    characteristics = characterize(fragmentation)
    rows = [characteristics.as_dict()]
    print(format_table(rows, ["algorithm", "fragment_count", "F", "DS", "AF", "ADS", "loosely_connected"]))
    if args.output:
        document = {
            "algorithm": fragmentation.algorithm,
            "fragments": [
                sorted([list(edge) for edge in fragment.edges], key=repr)
                for fragment in fragmentation.fragments
            ],
        }
        Path(args.output).write_text(json.dumps(document, indent=2, default=str))
        print(f"wrote fragmentation to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    source = _decode_node(args.source)
    target = _decode_node(args.target)
    if args.route:
        engine = RouteReconstructingEngine(fragmentation)
        answer = engine.shortest_path(source, target)
        print(f"cost: {answer.cost}")
        print(f"route: {' -> '.join(str(node) for node in answer.route)}")
        print(f"fragment chain: {list(answer.chain)}")
        return 0
    engine = DisconnectionSetEngine(fragmentation)
    result = engine.query(source, target)
    if not result.exists():
        print("no path")
        return 1
    print(f"cost: {result.value}")
    print(f"fragment chain: {list(result.chain or ())}")
    print(f"sites involved: {sorted(result.report.site_work)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.table, trials=args.trials, seed=args.seed)
    print(render_result(result, as_csv=args.csv))
    return 0


# -------------------------------------------------------- service commands


def _build_service(args: argparse.Namespace) -> QueryService:
    """Build a :class:`QueryService` from a snapshot directory or a graph JSON file."""
    source = Path(args.source)
    options = {"cache_size": args.cache_size, "workers": args.workers}
    if getattr(args, "auto_refragment", False):
        options["auto_refragment"] = True
    if getattr(args, "refragment_cadence", None):
        options["refragment_cadence"] = args.refragment_cadence
    placement = getattr(args, "placement", None)
    if placement is not None:
        # An explicit "none" forces the replicated pool even when a snapshot
        # persisted a placement plan; leaving the flag off keeps whatever
        # the snapshot (or the service default) says.
        options["placement"] = (
            None if placement == "none" else placement.replace("-", "_")
        )
    if is_snapshot_directory(source):
        service = QueryService.from_snapshot(source, **options)
        print(f"# loaded snapshot {source} (version {service.catalog_version})")
        return service
    if source.is_dir():
        raise ReproError(
            f"{source} is a directory but not a snapshot (missing manifest.json/payload.pkl)"
        )
    if not source.is_file():
        raise ReproError(f"{source} does not exist")
    graph = load_json(source)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    semiring = semiring_from_name(args.semiring.replace("-", "_"))
    print(f"# prepared {fragmentation.fragment_count()} fragments from {source}")
    return QueryService(fragmentation, semiring=semiring, **options)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    fragmentation.validate()
    semiring = semiring_from_name(args.semiring.replace("-", "_"))
    engine = DisconnectionSetEngine(fragmentation, semiring=semiring)
    manifest = save_snapshot(args.output, engine)
    for key, value in manifest.as_dict().items():
        print(f"{key}: {value}")
    print(f"wrote snapshot to {args.output}")
    return 0


def _parse_pairs(pairs: List[str]) -> List[tuple]:
    queries = []
    for pair in pairs:
        if ":" not in pair:
            raise ReproError(f"batch query {pair!r} is not of the form SOURCE:TARGET")
        source, _, target = pair.partition(":")
        queries.append((_decode_node(source), _decode_node(target)))
    return queries


def _print_answer(answer) -> None:
    if answer.error is not None:
        print(f"{answer.source} -> {answer.target}: error: {answer.error}")
    elif not answer.exists():
        print(f"{answer.source} -> {answer.target}: no path")
    else:
        cached = " (cached)" if answer.cached else ""
        chain = list(answer.chain) if answer.chain else []
        print(f"{answer.source} -> {answer.target}: value {answer.value}, chain {chain}{cached}")


def _print_stats(service: QueryService) -> None:
    for key, value in service.stats.as_dict().items():
        if isinstance(value, float) and "latency" in key:
            print(f"{key}: {value:.6f}s")
        else:
            print(f"{key}: {value}")
    for outcome in ("evaluated", "cached"):
        quantiles = service.stats.latency_quantiles(outcome=outcome)
        for name, value in quantiles.items():
            print(f"{outcome}_latency_{name}: {value:.6f}s")


def _print_slowlog(service: QueryService, count: int) -> None:
    entries = service.query_log.slowest(count)
    if not entries:
        print("slow log empty")
        return
    for entry in entries:
        suffix = " (cached)" if entry.cached else ""
        if entry.trace_id is not None:
            # The link into the tracing layer: feed this id to the tracer's
            # retained traces to see the query's full span tree.
            suffix += f" trace {entry.trace_id}"
        if entry.error is not None:
            suffix += f" error: {entry.error}"
        print(
            f"{entry.latency:.6f}s {entry.source} -> {entry.target} "
            f"fragments {list(entry.fragments)}{suffix}"
        )


def _render_metrics(service: QueryService, fmt: str) -> None:
    if fmt == "prometheus":
        sys.stdout.write(service.metrics("prometheus"))
    elif fmt == "json":
        print(json.dumps(service.metrics("json"), indent=2, default=str, sort_keys=True))
    else:
        _print_stats(service)


def _cmd_batch_query(args: argparse.Namespace) -> int:
    if args.queries:
        queries = [
            (_decode_node(str(pair[0])), _decode_node(str(pair[1])))
            for pair in json.loads(Path(args.queries).read_text())
        ]
    else:
        queries = _parse_pairs(args.pairs)
    if not queries:
        raise ReproError("no queries given: pass SOURCE:TARGET pairs or --queries FILE")
    with _build_service(args) as service:
        for answer in service.query_batch(queries):
            _print_answer(answer)
        if args.stats:
            _print_stats(service)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    queries = []
    if args.queries:
        queries = [
            (_decode_node(str(pair[0])), _decode_node(str(pair[1])))
            for pair in json.loads(Path(args.queries).read_text())
        ]
    elif args.pairs:
        queries = _parse_pairs(args.pairs)
    # The build chatter ("# prepared ...") goes to stderr so the rendered
    # metrics stay machine-parseable (JSON output especially).
    with contextlib.redirect_stdout(sys.stderr):
        service = _build_service(args)
    with service:
        # The monitor baselines *before* the workload so the health view
        # reflects what the workload did, not a zero-delta snapshot.
        monitor = SLOMonitor(service.registry, default_slos()) if args.health else None
        if queries:
            service.query_batch(queries)
        if monitor is not None:
            _print_health(service, monitor, ready=False)
        else:
            _render_metrics(service, args.format)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.queries:
        queries = [
            (_decode_node(str(pair[0])), _decode_node(str(pair[1])))
            for pair in json.loads(Path(args.queries).read_text())
        ]
    else:
        queries = _parse_pairs(args.pairs)
    if not queries:
        raise ReproError("no queries given: pass SOURCE:TARGET pairs or --queries FILE")
    with contextlib.redirect_stdout(sys.stderr):
        service = _build_service(args)
    with service:
        profiler = SamplingProfiler(args.interval, tracer=service.tracer)
        profiler.start()
        try:
            for _ in range(max(1, args.repeat)):
                # Re-evaluate every round: a cached repeat loop would give
                # the sampler nothing but cache hits to look at.
                service.cache.clear()
                service.query_batch(queries)
        finally:
            profiler.stop()
        if args.json:
            print(json.dumps(profiler.report(top=args.top), indent=2, sort_keys=True))
        else:
            _print_profile(profiler, args.top)
    return 0


def _print_placement(service: QueryService) -> None:
    plan = service.placement_plan
    if plan is None:
        print("placement: replicated (every worker pins every fragment)")
        return
    print(f"placement: policy {plan.policy}, {plan.worker_count} workers")
    for worker in range(plan.worker_count):
        owned = plan.owned_by(worker)
        replicated = sorted(set(plan.fragments_on(worker)) - set(owned))
        suffix = f" (+replicas {replicated})" if replicated else ""
        print(f"worker {worker}: owns {owned}{suffix}")


def _print_health(
    service: QueryService, monitor: SLOMonitor, *, ready: bool
) -> None:
    """Console rendering of the ``healthz`` / ``readyz`` documents.

    Mirrors the network server's checks minus the admission queue (stdin
    serves one command at a time, so there is no queue to saturate).
    """
    pool = service.pool_health()
    statuses = monitor.evaluate()
    severity = monitor.worst_severity(statuses)
    healthy = bool(pool.get("healthy", True))
    if ready:
        is_ready = healthy and severity != "page"
        print("ready" if is_ready else "not_ready")
    else:
        print("ok" if healthy else "degraded")
    print(
        f"pool: {pool.get('mode')} ({pool.get('alive')}/{pool.get('workers')} "
        f"workers alive)"
    )
    print(f"catalog_version: {service.catalog_version}")
    print(f"slo_severity: {severity}")
    for status in statuses.values():
        print(
            f"slo {status.name}: error_rate {status.error_rate:.6f}, "
            f"budget_remaining {status.budget_remaining:.3f}, "
            f"severity {status.severity}"
        )


def _print_profile(profiler: Optional[SamplingProfiler], top: int) -> None:
    if profiler is None:
        print("profiling disabled (start with --profile-interval)")
        return
    report = profiler.report(top=top)
    print(
        f"samples: {report['samples']} (interval {report['interval_seconds']}s)"
    )
    for row in report["top_offenders"]:
        print(f"{row['share']:.3f} [{row['backend']}] {row['frame']}")
    for row in report["span_breakdown"]:
        print(f"span {row['span']} [{row['backend']}]: {row['share']:.3f}")
    for backend, share in sorted(report["backend_shares"].items()):
        print(f"backend {backend}: {share:.3f}")


def _execute_console_command(
    service: QueryService,
    request: Request,
    *,
    slo_monitor: Optional[SLOMonitor] = None,
    profiler: Optional[SamplingProfiler] = None,
) -> bool:
    """Execute one validated console command; returns ``False`` on quit/exit.

    Arity and choices were already checked by the shared grammar
    (:func:`repro.serving.protocol.parse_line`), so the dispatch below only
    interprets arguments — exactly what the network server does with the
    same :class:`~repro.serving.protocol.Request` objects.
    """
    op = request.op
    if op in ("quit", "exit"):
        return False
    if op == "query":
        _print_answer(service.query(request.node(0), request.node(1)))
    elif op == "batch":
        for answer in service.query_batch(request.pairs()):
            _print_answer(answer)
    elif op == "update":
        owner = service.update_edge(
            request.node(0), request.node(1), request.number(2, 1.0)
        )
        print(f"updated; fragment {owner}, catalog version {service.catalog_version}")
    elif op == "delete":
        owner = service.update_edge(request.node(0), request.node(1), delete=True)
        print(f"deleted; fragment {owner}, catalog version {service.catalog_version}")
    elif op == "stats":
        _render_metrics(service, (request.text(0, "text") or "text").lower())
    elif op == "trace":
        toggle = (request.text(0) or "").lower()
        if toggle == "on":
            service.tracer.enable()
        else:
            service.tracer.disable()
        print(f"tracing {toggle}")
    elif op == "slowlog":
        _print_slowlog(service, request.integer(0, 10) or 10)
    elif op in ("healthz", "readyz"):
        # A per-command throwaway monitor would baseline at the current
        # counters and report zero burn forever; the serve loop passes one
        # monitor that lives as long as the session.
        monitor = slo_monitor or SLOMonitor(service.registry, default_slos())
        _print_health(service, monitor, ready=op == "readyz")
    elif op == "profile":
        _print_profile(profiler, request.integer(0, 10) or 10)
    elif op == "placement":
        _print_placement(service)
    elif op == "migrate":
        fragment, worker = request.integer(0), request.integer(1)
        moved = service.migrate(fragment, worker)
        print(
            f"migrated fragment {fragment} to worker {worker}"
            if moved
            else f"fragment {fragment} already lives on worker {worker}"
        )
    elif op == "rebalance":
        migrations = service.rebalance()
        if not migrations:
            print("balanced; no migrations recommended")
        for migration in migrations:
            print(
                f"migrated fragment {migration.fragment_id}: worker "
                f"{migration.from_worker} -> {migration.to_worker} "
                f"({migration.reason})"
            )
    elif op == "refragment":
        redraws_before = service.stats.refragments
        result = service.refragment(request.text(0))
        if result is not None:
            print(
                f"refragmented live: rebuilt {len(result.changed)} "
                f"fragment(s), kept {len(result.unchanged)}, "
                f"recovered {result.border_nodes_recovered()} border "
                f"node(s); catalog version {service.catalog_version}"
            )
        elif service.stats.refragments > redraws_before:
            print(
                "refragmented (full rebuild); catalog version "
                f"{service.catalog_version}"
            )
        else:
            print("advisor found no worthwhile redraw; layout unchanged")
    elif op == "advise":
        advisor = service.refragment_advisor or RefragmentationAdvisor()
        fragmentation = service.database.fragmentation()
        assessment = advisor.assess(
            fragmentation,
            version_vector=service.version_vector,
            delta_log=service.database.delta_log,
            query_log=service.query_log,
        )
        for key, value in assessment.signals.as_dict().items():
            print(f"{key}: {value}")
        print(f"update_skew: {assessment.update_skew:.2f}")
        for line in advisor.recommend(fragmentation).rationale:
            print(f"# {line}")
    elif op == "snapshot":
        directory = request.text(0)
        manifest = service.snapshot(directory)
        print(f"wrote snapshot to {directory} (version {manifest.version})")
    return True


def _cmd_serve(args: argparse.Namespace) -> int:
    with _build_service(args) as service:
        slo_monitor = SLOMonitor(service.registry, default_slos())
        profiler: Optional[SamplingProfiler] = None
        if getattr(args, "profile_interval", None) is not None:
            # Sample the serve loop's own thread: stdin commands evaluate
            # synchronously right here.
            profiler = SamplingProfiler(args.profile_interval, tracer=service.tracer)
            profiler.start()
        print("# ready; commands: " + " | ".join(commands_for("console")))
        try:
            for line in sys.stdin:
                try:
                    # One grammar, one error path: parse_line validates against
                    # the same specs the network server enforces, and every
                    # grammar/service failure renders as the same "error: ...".
                    request = parse_line(line, surface="console")
                    if request is None:
                        continue
                    if not _execute_console_command(
                        service, request, slo_monitor=slo_monitor, profiler=profiler
                    ):
                        break
                except (ReproError, ValueError, OSError, WorkerPoolError) as error:
                    # A bad line must not take the server down — nor must a
                    # routed-pool failure (worker error reply, reply timeout).
                    print(f"error: {error}")
        finally:
            if profiler is not None:
                profiler.stop()
        print("# bye")
    return 0


def _cmd_net_serve(args: argparse.Namespace) -> int:
    import asyncio

    if args.idle_assess is not None and getattr(args, "auto_refragment", False):
        # The whole point of the idle task: assessment leaves the update
        # hot path and runs between requests instead.
        args.refragment_cadence = "background"
    with _build_service(args) as service:
        config = ServingConfig(
            host=args.host,
            port=args.port,
            quantum_seconds=args.quantum,
            page_size=args.page_size,
            quanta_per_call=args.quanta_per_call,
            preemption=not args.no_preemption,
            idle_assess_seconds=args.idle_assess,
            profile_interval=args.profile_interval,
            admission=AdmissionConfig(
                max_concurrent=args.max_concurrent,
                max_queue=args.max_queue,
            ),
        )

        async def _run() -> None:
            server = ClosureServer(service, config)
            host, port = await server.start()
            print(
                f"# serving on {host}:{port}; newline-delimited JSON "
                '({"op": "query", "args": [...]}); commands: '
                + " | ".join(commands_for("network"))
            )
            sys.stdout.flush()
            try:
                await server.serve_forever()
            finally:
                await server.aclose()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            pass
        print("# bye")
    return 0


# -------------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data fragmentation for parallel transitive closure strategies (ICDE 1993).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a graph and write it to JSON")
    generate.add_argument("output", help="output JSON path")
    generate.add_argument("--kind", choices=("transportation", "random"), default="transportation")
    generate.add_argument("--clusters", type=int, default=4)
    generate.add_argument("--nodes", type=int, default=25, help="nodes per cluster (or total for random)")
    generate.add_argument("--inter-cluster-edges", type=int, default=2)
    generate.add_argument("--c1", type=float, default=7800.0)
    generate.add_argument("--c2", type=float, default=0.08)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    fragment = subparsers.add_parser("fragment", help="fragment a graph JSON file")
    fragment.add_argument("graph", help="input graph JSON path")
    fragment.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    fragment.add_argument("--fragments", type=int, default=4)
    fragment.add_argument("--seed", type=int, default=0)
    fragment.add_argument("--output", help="optional output JSON path for the fragment edge lists")
    fragment.set_defaults(handler=_cmd_fragment)

    query = subparsers.add_parser("query", help="answer a path query with the disconnection set approach")
    query.add_argument("graph", help="input graph JSON path")
    query.add_argument("source")
    query.add_argument("target")
    query.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    query.add_argument("--fragments", type=int, default=4)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--route", action="store_true", help="also reconstruct the node sequence")
    query.set_defaults(handler=_cmd_query)

    experiment = subparsers.add_parser("experiment", help="regenerate a table of the paper")
    experiment.add_argument("table", choices=("table1", "table2", "table3"))
    experiment.add_argument("--trials", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--csv", action="store_true")
    experiment.set_defaults(handler=_cmd_experiment)

    def add_service_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "source", help="snapshot directory or graph JSON path"
        )
        subparser.add_argument("--algorithm", choices=ALGORITHMS, default="auto",
                               help="fragmenter when preparing from a graph JSON")
        subparser.add_argument("--fragments", type=int, default=4)
        subparser.add_argument("--seed", type=int, default=0)
        subparser.add_argument("--semiring", choices=SEMIRINGS, default="shortest-path")
        subparser.add_argument("--cache-size", type=int, default=1024)
        subparser.add_argument("--workers", type=int, default=None,
                               help="resident worker processes (default: in-process evaluation)")
        subparser.add_argument(
            "--placement",
            choices=("none", "round-robin", "cost-balanced", "workload-aware"),
            default=None,
            help="shared-nothing placement: route each fragment to a dedicated "
                 "owner worker instead of replicating every fragment everywhere; "
                 "'none' forces the replicated pool even over a snapshot's "
                 "persisted plan (default: the snapshot's plan, if any)",
        )
        subparser.add_argument(
            "--auto-refragment",
            action="store_true",
            help="watch the layout's locality (border growth, cross-fragment "
                 "edge ratio, update skew) and redraw fragment boundaries "
                 "live when it erodes",
        )

    snapshot = subparsers.add_parser(
        "snapshot", help="prepare a graph and persist the catalog for serving"
    )
    snapshot.add_argument("graph", help="input graph JSON path")
    snapshot.add_argument("output", help="output snapshot directory")
    snapshot.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    snapshot.add_argument("--fragments", type=int, default=4)
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument("--semiring", choices=SEMIRINGS, default="shortest-path")
    snapshot.set_defaults(handler=_cmd_snapshot)

    batch_query = subparsers.add_parser(
        "batch-query", help="answer a batch of queries with shared local work"
    )
    add_service_options(batch_query)
    batch_query.add_argument("pairs", nargs="*", help="queries as SOURCE:TARGET pairs")
    batch_query.add_argument("--queries", help="JSON file with a list of [source, target] pairs")
    batch_query.add_argument("--stats", action="store_true", help="also print service statistics")
    batch_query.set_defaults(handler=_cmd_batch_query)

    net_serve = subparsers.add_parser(
        "net-serve",
        help="run the network serving tier: asyncio TCP, newline-delimited "
             "JSON, preemptable closure streaming with continuation tokens, "
             "admission control",
    )
    add_service_options(net_serve)
    net_serve.add_argument("--host", default="127.0.0.1")
    net_serve.add_argument("--port", type=int, default=7432,
                           help="TCP port (0 picks an ephemeral port)")
    net_serve.add_argument("--quantum", type=float, default=0.02,
                           help="seconds one evaluation quantum may run before "
                                "yielding the event loop")
    net_serve.add_argument("--page-size", type=int, default=256,
                           help="maximum closure result rows per streamed page")
    net_serve.add_argument("--quanta-per-call", type=int, default=2,
                           help="quanta one closure/resume call runs before "
                                "suspending into a continuation token")
    net_serve.add_argument("--no-preemption", action="store_true",
                           help="disable quanta: closures run to completion in "
                                "one event-loop turn (benchmark baseline only)")
    net_serve.add_argument("--max-concurrent", type=int, default=8,
                           help="requests evaluating at once (admission slots)")
    net_serve.add_argument("--max-queue", type=int, default=64,
                           help="requests allowed to wait for a slot before "
                                "reject-with-retry-after")
    net_serve.add_argument("--idle-assess", type=float, default=None,
                           help="with --auto-refragment: assess the layout on "
                                "this idle cadence (seconds) instead of on the "
                                "update hot path")
    net_serve.add_argument("--profile-interval", type=float, default=None,
                           help="enable the continuous sampling profiler at "
                                "this interval (seconds); read it back with "
                                "the 'profile' command")
    net_serve.set_defaults(handler=_cmd_net_serve)

    serve = subparsers.add_parser(
        "serve", help="serve queries from stdin against a prepared catalog"
    )
    add_service_options(serve)
    serve.add_argument("--profile-interval", type=float, default=None,
                       help="enable the continuous sampling profiler at this "
                            "interval (seconds); read it back with the "
                            "'profile' command")
    serve.set_defaults(handler=_cmd_serve)

    stats = subparsers.add_parser(
        "stats", help="run a workload and render the telemetry it produced"
    )
    add_service_options(stats)
    stats.add_argument("pairs", nargs="*", help="queries as SOURCE:TARGET pairs")
    stats.add_argument("--queries", help="JSON file with a list of [source, target] pairs")
    stats.add_argument(
        "--format",
        choices=("text", "json", "prometheus"),
        default="text",
        help="text prints counters plus latency percentiles; json dumps "
             "QueryService.metrics(); prometheus emits text exposition format",
    )
    stats.add_argument(
        "--health",
        action="store_true",
        help="render the health document (pool liveness, SLO burn) instead "
             "of the metrics",
    )
    stats.set_defaults(handler=_cmd_stats)

    profile = subparsers.add_parser(
        "profile",
        help="run a query workload under the sampling profiler and print the "
             "hot frames, span breakdown, and kernel-backend shares",
    )
    add_service_options(profile)
    profile.add_argument("pairs", nargs="*", help="queries as SOURCE:TARGET pairs")
    profile.add_argument("--queries", help="JSON file with a list of [source, target] pairs")
    profile.add_argument("--interval", type=float, default=0.002,
                         help="profiler sampling interval in seconds")
    profile.add_argument("--repeat", type=int, default=1,
                         help="run the workload this many times (later runs "
                              "profile the cache path)")
    profile.add_argument("--top", type=int, default=10, help="hot frames to print")
    profile.add_argument("--json", action="store_true",
                         help="dump the full profile report as JSON")
    profile.set_defaults(handler=_cmd_profile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
