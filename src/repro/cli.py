"""Command-line interface for the library.

``python -m repro <command>`` exposes the main workflows without writing
Python:

* ``generate``  — generate a transportation or general random graph and write
  it to a JSON file,
* ``fragment``  — fragment a graph JSON file with one of the paper's
  algorithms (or the advisor's recommendation) and print the Table 1-3
  characteristics,
* ``query``     — answer a reachability or shortest-path query on a graph
  with the disconnection set approach,
* ``experiment``— regenerate one of the paper's tables (delegates to
  :mod:`repro.experiments`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .disconnection import DisconnectionSetEngine, RouteReconstructingEngine
from .exceptions import ReproError
from .experiments import render_result, run_experiment
from .experiments.reporting import format_table
from .fragmentation import (
    AdvisorConstraints,
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    Fragmenter,
    HashFragmenter,
    KConnectivityFragmenter,
    LinearFragmenter,
    characterize,
    recommend,
)
from .generators import (
    RandomGraphConfig,
    TransportationGraphConfig,
    generate_random_graph,
    generate_transportation_graph,
)
from .graph import DiGraph, load_json, save_json

ALGORITHMS = ("center", "center-distributed", "bond-energy", "linear", "k-connectivity", "hash", "auto")


def _make_fragmenter(name: str, fragment_count: int, graph: DiGraph, seed: int) -> Fragmenter:
    """Map a CLI algorithm name to a configured fragmenter."""
    if name == "center":
        return CenterBasedFragmenter(fragment_count, center_selection="random", seed=seed)
    if name == "center-distributed":
        return CenterBasedFragmenter(fragment_count, center_selection="distributed")
    if name == "bond-energy":
        return BondEnergyFragmenter(fragment_count)
    if name == "linear":
        return LinearFragmenter(fragment_count)
    if name == "k-connectivity":
        return KConnectivityFragmenter(fragment_count)
    if name == "hash":
        return HashFragmenter(fragment_count)
    recommendation = recommend(graph, AdvisorConstraints(processor_count=fragment_count))
    for line in recommendation.rationale:
        print(f"# advisor: {line}")
    return recommendation.fragmenter


def _decode_node(value: str):
    """Interpret a CLI node argument: integers stay integers, the rest are strings."""
    return int(value) if value.lstrip("-").isdigit() else value


# ----------------------------------------------------------------- commands


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "transportation":
        config = TransportationGraphConfig(
            cluster_count=args.clusters,
            nodes_per_cluster=args.nodes,
            inter_cluster_edges=args.inter_cluster_edges,
        )
        network = generate_transportation_graph(config, seed=args.seed)
        graph = network.graph
    else:
        config = RandomGraphConfig(node_count=args.nodes, c1=args.c1, c2=args.c2)
        graph = generate_random_graph(config, seed=args.seed)
    save_json(graph, args.output)
    print(
        f"wrote {args.output}: {graph.node_count()} nodes, "
        f"{graph.undirected_edge_count()} undirected edges"
    )
    return 0


def _cmd_fragment(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    fragmentation.validate()
    characteristics = characterize(fragmentation)
    rows = [characteristics.as_dict()]
    print(format_table(rows, ["algorithm", "fragment_count", "F", "DS", "AF", "ADS", "loosely_connected"]))
    if args.output:
        document = {
            "algorithm": fragmentation.algorithm,
            "fragments": [
                sorted([list(edge) for edge in fragment.edges], key=repr)
                for fragment in fragmentation.fragments
            ],
        }
        Path(args.output).write_text(json.dumps(document, indent=2, default=str))
        print(f"wrote fragmentation to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_json(args.graph)
    fragmenter = _make_fragmenter(args.algorithm, args.fragments, graph, args.seed)
    fragmentation = fragmenter.fragment(graph)
    source = _decode_node(args.source)
    target = _decode_node(args.target)
    if args.route:
        engine = RouteReconstructingEngine(fragmentation)
        answer = engine.shortest_path(source, target)
        print(f"cost: {answer.cost}")
        print(f"route: {' -> '.join(str(node) for node in answer.route)}")
        print(f"fragment chain: {list(answer.chain)}")
        return 0
    engine = DisconnectionSetEngine(fragmentation)
    result = engine.query(source, target)
    if not result.exists():
        print("no path")
        return 1
    print(f"cost: {result.value}")
    print(f"fragment chain: {list(result.chain or ())}")
    print(f"sites involved: {sorted(result.report.site_work)}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.table, trials=args.trials, seed=args.seed)
    print(render_result(result, as_csv=args.csv))
    return 0


# -------------------------------------------------------------------- parser


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data fragmentation for parallel transitive closure strategies (ICDE 1993).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a graph and write it to JSON")
    generate.add_argument("output", help="output JSON path")
    generate.add_argument("--kind", choices=("transportation", "random"), default="transportation")
    generate.add_argument("--clusters", type=int, default=4)
    generate.add_argument("--nodes", type=int, default=25, help="nodes per cluster (or total for random)")
    generate.add_argument("--inter-cluster-edges", type=int, default=2)
    generate.add_argument("--c1", type=float, default=7800.0)
    generate.add_argument("--c2", type=float, default=0.08)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    fragment = subparsers.add_parser("fragment", help="fragment a graph JSON file")
    fragment.add_argument("graph", help="input graph JSON path")
    fragment.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    fragment.add_argument("--fragments", type=int, default=4)
    fragment.add_argument("--seed", type=int, default=0)
    fragment.add_argument("--output", help="optional output JSON path for the fragment edge lists")
    fragment.set_defaults(handler=_cmd_fragment)

    query = subparsers.add_parser("query", help="answer a path query with the disconnection set approach")
    query.add_argument("graph", help="input graph JSON path")
    query.add_argument("source")
    query.add_argument("target")
    query.add_argument("--algorithm", choices=ALGORITHMS, default="auto")
    query.add_argument("--fragments", type=int, default=4)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--route", action="store_true", help="also reconstruct the node sequence")
    query.set_defaults(handler=_cmd_query)

    experiment = subparsers.add_parser("experiment", help="regenerate a table of the paper")
    experiment.add_argument("table", choices=("table1", "table2", "table3"))
    experiment.add_argument("--trials", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--csv", action="store_true")
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
