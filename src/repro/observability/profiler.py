"""Continuous sampling profiler tagging hot frames with trace and backend.

A daemon thread wakes every ``interval`` seconds, grabs the target
thread's current stack via ``sys._current_frames()``, and records the leaf
frame together with two tags read racily from the serving thread:

* the tracer's innermost open span (trace id + span name), so a hot frame
  points back at the requests burning in it;
* the kernel backend currently executing (published by
  ``repro.closure.kernels.reachability_rows`` around each dispatch), so a
  ``chain``-vs-``numpy`` selection regression shows up as a shifted
  backend column in the profile, not a vibe.

Frames aggregate by ``function (module:first_line)`` — the *defining* line,
not the executing line, so one hot loop is one row.  The profiler keeps
bounded state only: a frame×backend count table, a span-name×backend
table, and a small ring of recent trace-tagged samples linking profile
rows back to assembled traces.

Both tag reads are deliberately unsynchronised — worst case a sample lands
on the wrong side of a span boundary and is mis-tagged once.  The
profiler must never make the serving thread slower; it takes no locks the
serving thread could contend on, and :meth:`pause` / :meth:`resume` gate
sampling without thread churn so benchmarks can price the on/off delta
honestly.

``backend_probe`` is injected (defaulting to lazily importing
``repro.closure.backends.active_backend``) to keep this module free of an
import cycle with the closure package.
"""

from __future__ import annotations

import os.path
import sys
import threading
from collections import Counter as TallyCounter
from collections import deque
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .tracing import Tracer

__all__ = ["SamplingProfiler"]

DEFAULT_INTERVAL_SECONDS = 0.005


def _default_backend_probe() -> Optional[str]:
    from ..closure.backends import active_backend

    return active_backend()


def _frame_key(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({os.path.basename(code.co_filename)}:{code.co_firstlineno})"


class SamplingProfiler:
    """Wall-clock sampler for one target thread.

    Args:
        interval: seconds between samples (wall-clock resolution).
        tracer: the tracer whose current span tags samples (optional).
        backend_probe: zero-arg callable returning the active kernel
            backend name or ``None`` (default: the closure package's
            published active backend).
        max_depth: frames walked per sample when recording the stack edge.
        recent_capacity: trace-tagged samples retained for trace linkage.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL_SECONDS,
        *,
        tracer: Optional[Tracer] = None,
        backend_probe: Optional[Callable[[], Optional[str]]] = None,
        max_depth: int = 24,
        recent_capacity: int = 512,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"profiler interval must be positive, got {interval}")
        self.interval = interval
        self._tracer = tracer
        self._backend_probe = backend_probe or _default_backend_probe
        self._max_depth = max_depth
        self._frame_counts: TallyCounter = TallyCounter()
        self._span_counts: TallyCounter = TallyCounter()
        self._recent: Deque[Tuple[str, str, str, str]] = deque(maxlen=recent_capacity)
        self._samples = 0
        self._errors = 0
        self._started_at: Optional[float] = None
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._sampling = threading.Event()

    # ------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        """Whether the sampler thread is alive (paused still counts)."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def sampling(self) -> bool:
        """Whether samples are currently being taken (running and not paused)."""
        return self.running and self._sampling.is_set()

    @property
    def samples(self) -> int:
        """Samples recorded so far."""
        return self._samples

    def start(self, target_ident: Optional[int] = None) -> None:
        """Start sampling ``target_ident`` (default: the calling thread).

        Idempotent while running — a second start against the same target
        is a no-op, so the CLI and server can both request profiling.
        """
        if self.running:
            return
        self._target_ident = (
            target_ident if target_ident is not None else threading.get_ident()
        )
        self._stop_event.clear()
        self._sampling.set()
        self._started_at = perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampler thread (recorded aggregates are kept)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_event.set()
        thread.join(timeout=2.0)
        self._thread = None

    def pause(self) -> None:
        """Suspend sampling without stopping the thread."""
        self._sampling.clear()

    def resume(self) -> None:
        """Resume sampling after :meth:`pause`."""
        self._sampling.set()

    def reset(self) -> None:
        """Drop every recorded aggregate (the sampler keeps running)."""
        self._frame_counts.clear()
        self._span_counts.clear()
        self._recent.clear()
        self._samples = 0
        self._errors = 0
        self._started_at = perf_counter() if self.running else None

    # -------------------------------------------------------------- sampling

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            if not self._sampling.is_set():
                continue
            try:
                self._sample_once()
            except Exception:
                # A sample must never take the process down; a frame can
                # vanish between the _current_frames snapshot and our walk.
                self._errors += 1

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return
        leaf = _frame_key(frame)
        backend = self._backend_probe() or "-"
        trace_id = ""
        span_name = "-"
        tracer = self._tracer
        if tracer is not None:
            span = tracer.current_span
            if span is not None:
                trace_id = span.trace_id
                span_name = span.name
        self._samples += 1
        self._frame_counts[(leaf, backend)] += 1
        self._span_counts[(span_name, backend)] += 1
        if trace_id:
            self._recent.append((trace_id, span_name, leaf, backend))

    # ------------------------------------------------------------- reporting

    def top_offenders(self, count: int = 10) -> List[Dict[str, object]]:
        """The hottest ``(frame, backend)`` rows, by sample share."""
        total = self._samples or 1
        rows = []
        for (frame, backend), hits in self._frame_counts.most_common(max(count, 0)):
            rows.append(
                {
                    "frame": frame,
                    "backend": backend,
                    "samples": hits,
                    "share": hits / total,
                }
            )
        return rows

    def span_breakdown(self) -> List[Dict[str, object]]:
        """Samples by (span name, backend) — where request time concentrates."""
        total = self._samples or 1
        return [
            {"span": span, "backend": backend, "samples": hits, "share": hits / total}
            for (span, backend), hits in self._span_counts.most_common()
        ]

    def backend_shares(self) -> Dict[str, float]:
        """Fraction of samples landing in each kernel backend."""
        total = self._samples or 1
        shares: Dict[str, float] = {}
        for (_, backend), hits in self._frame_counts.items():
            shares[backend] = shares.get(backend, 0.0) + hits / total
        return shares

    def recent_traced_samples(self, count: int = 20) -> List[Dict[str, object]]:
        """The newest trace-tagged samples (profile row -> trace id linkage)."""
        rows = list(self._recent)[-max(count, 0):]
        return [
            {"trace": trace_id, "span": span, "frame": frame, "backend": backend}
            for trace_id, span, frame, backend in reversed(rows)
        ]

    def report(self, *, top: int = 10) -> Dict[str, object]:
        """The full plain-data profile (the ``profile`` command's payload)."""
        elapsed = (
            perf_counter() - self._started_at if self._started_at is not None else 0.0
        )
        return {
            "running": self.running,
            "sampling": self.sampling,
            "interval_seconds": self.interval,
            "elapsed_seconds": elapsed,
            "samples": self._samples,
            "errors": self._errors,
            "top_offenders": self.top_offenders(top),
            "span_breakdown": self.span_breakdown(),
            "backend_shares": self.backend_shares(),
            "recent_traced_samples": self.recent_traced_samples(),
        }
