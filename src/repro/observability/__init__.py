"""Telemetry for the serving stack: metrics, traces, and the query log.

Five interacting layers (cache → batch planner → routed pool → workers →
kernels) plus two advisors need more than a flat counter bag.  This package
is the cross-cutting observability substrate they share:

* :mod:`~repro.observability.metrics` — :class:`MetricsRegistry` with
  labeled counters, gauges, and fixed-bucket histograms (p50/p90/p99),
  mergeable across processes, exported as JSON or Prometheus text,
* :mod:`~repro.observability.tracing` — :class:`Tracer` producing one trace
  per service call with spans for every pipeline stage, including
  worker-side kernel spans shipped back over the result channels,
* :mod:`~repro.observability.querylog` — the bounded structured
  :class:`QueryLog` (endpoints, fragments touched, latency, cache/trace
  outcome, slow-query side car), the first real *workload* signal the
  placement and refragmentation advisors consume,
* :mod:`~repro.observability.slo` — declarative latency/error objectives
  evaluated from the registry with multi-window burn-rate alerting, the
  substance behind the serving tier's ``healthz`` / ``readyz``,
* :mod:`~repro.observability.profiler` — the continuous sampling profiler
  tagging hot frames with the active trace/span and kernel backend.

:class:`~repro.service.stats.ServiceStatistics` remains the operator-facing
counter view, but is now a thin compatibility façade over a registry from
this package.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from .querylog import (
    DEFAULT_SLOW_THRESHOLD_SECONDS,
    QueryLog,
    QueryLogEntry,
)
from .profiler import SamplingProfiler
from .slo import (
    DEFAULT_BURN_WINDOWS,
    BurnWindow,
    SLODefinition,
    SLOMonitor,
    SLOStatus,
    default_slos,
)
from .tracing import NULL_SPAN, Span, Trace, TraceContext, Tracer

__all__ = [
    "BurnWindow",
    "Counter",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOW_THRESHOLD_SECONDS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_SPAN",
    "QueryLog",
    "QueryLogEntry",
    "SLODefinition",
    "SLOMonitor",
    "SLOStatus",
    "SamplingProfiler",
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "default_slos",
]
