"""The structured query log: the service's first real workload signal.

The advisors so far read *structural* signals (border growth, cross-fragment
edge ratio, update skew) — they can see the layout erode but not what the
workload actually asks.  The workload-mined fragmentation literature ("Query
Workload-based RDF Graph Fragmentation and Allocation", PAPERS.md) needs
exactly what nobody recorded: which endpoints are queried, which fragments
their chains touch, how often, and how slowly.  :class:`QueryLog` records
that, bounded (oldest entries evicted first) and structured
(:class:`QueryLogEntry`), with a slow-query threshold that retains the
outliers even after the main window rolled past them.

The aggregation helpers (:meth:`QueryLog.fragment_frequencies`,
:meth:`QueryLog.co_access_counts`, :meth:`QueryLog.query_skew`) are the
interface the :class:`~repro.placement.advisor.RebalanceAdvisor` and
:class:`~repro.refragmentation.advisor.RefragmentationAdvisor` consume —
notably, the log attributes *cached* answers to their fragments too, a load
signal the dispatch counters structurally cannot see (a hit dispatches
nothing).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

DEFAULT_CAPACITY = 256
DEFAULT_SLOW_THRESHOLD_SECONDS = 0.1


class QueryLogEntry:
    """One answered (or failed) query, as the workload model sees it.

    A plain slotted class rather than a (frozen) dataclass: one entry is
    built per answered query on the hot path, and frozen-dataclass
    construction pays ``object.__setattr__`` per field.

    Attributes:
        source / target: the queried endpoints.
        semiring: the path problem's name.
        fragments: the fragment ids the answer's chain involved (for cached
            answers, the fragments the cached entry depends on).
        latency: wall-clock seconds spent answering.
        cached: whether the result cache answered.
        batched: whether the query arrived through ``query_batch``.
        trace_id: the id of the trace covering this query (``None`` when
            tracing was off).
        error: the planning failure message, for failed batch queries.
        timestamp: wall-clock time of the answer (``time.time``).
    """

    __slots__ = (
        "source",
        "target",
        "semiring",
        "fragments",
        "latency",
        "cached",
        "batched",
        "trace_id",
        "error",
        "timestamp",
    )

    def __init__(
        self,
        source: Hashable,
        target: Hashable,
        semiring: str,
        fragments: Tuple[int, ...] = (),
        latency: float = 0.0,
        cached: bool = False,
        batched: bool = False,
        trace_id: Optional[str] = None,
        error: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        self.source = source
        self.target = target
        self.semiring = semiring
        self.fragments = fragments
        self.latency = latency
        self.cached = cached
        self.batched = batched
        self.trace_id = trace_id
        self.error = error
        self.timestamp = time.time() if timestamp is None else timestamp

    def __repr__(self) -> str:
        return (
            f"QueryLogEntry(source={self.source!r}, target={self.target!r}, "
            f"fragments={self.fragments!r}, latency={self.latency}, "
            f"cached={self.cached}, error={self.error!r})"
        )

    def as_dict(self) -> Dict[str, object]:
        """Return the entry as plain data (CLI / JSON reporting)."""
        return {
            "source": self.source,
            "target": self.target,
            "semiring": self.semiring,
            "fragments": list(self.fragments),
            "latency": self.latency,
            "cached": self.cached,
            "batched": self.batched,
            "trace_id": self.trace_id,
            "error": self.error,
            "timestamp": self.timestamp,
        }


class QueryLog:
    """A bounded, structured log of answered queries with a slow-query side car.

    Args:
        capacity: entries retained in the main window (0 disables the log
            entirely — every :meth:`record` is a no-op).
        slow_threshold: seconds past which an entry is also retained in the
            slow-query window (which is bounded separately, so a burst of
            fast traffic cannot evict the outliers an operator is hunting).
        slow_capacity: slow-window size (defaults to ``capacity``).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD_SECONDS,
        slow_capacity: Optional[int] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"query log capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self.slow_threshold = slow_threshold
        # Rows are stored as bare tuples (field order = QueryLogEntry's
        # positional parameters) and materialised into entry objects only on
        # read: the hot path pays one tuple per answered query, the ten
        # attribute stores of an object happen on the operator's time.
        self._entries: Deque[tuple] = deque(maxlen=capacity or None)
        self._slow: Deque[tuple] = deque(maxlen=(slow_capacity or capacity) or None)
        self._enabled = capacity > 0
        self.recorded = 0
        self.slow_count = 0

    # ------------------------------------------------------------- recording

    @property
    def enabled(self) -> bool:
        """Whether entries are currently recorded (toggle with enable/disable)."""
        return self._enabled

    def enable(self) -> None:
        """Resume recording (a no-op on a capacity-0 log, which has no window)."""
        if self._capacity > 0:
            self._enabled = True

    def disable(self) -> None:
        """Pause recording; the retained window keeps serving reads."""
        self._enabled = False

    @property
    def capacity(self) -> int:
        """The main window's bound."""
        return self._capacity

    def push(
        self,
        source: Hashable,
        target: Hashable,
        semiring: str,
        fragments: Tuple[int, ...] = (),
        latency: float = 0.0,
        cached: bool = False,
        batched: bool = False,
        trace_id: Optional[str] = None,
        error: Optional[str] = None,
        timestamp: Optional[float] = None,
    ) -> None:
        """Append one query as positional fields — the hot-path entry point.

        Argument order matches :class:`QueryLogEntry`'s constructor; the
        fields are retained as a tuple, evicting the oldest when the window
        is full.
        """
        if not self._enabled:
            return
        row = (
            source,
            target,
            semiring,
            fragments,
            latency,
            cached,
            batched,
            trace_id,
            error,
            time.time() if timestamp is None else timestamp,
        )
        self._entries.append(row)
        self.recorded += 1
        if latency >= self.slow_threshold:
            self._slow.append(row)
            self.slow_count += 1

    def record(self, entry: QueryLogEntry) -> None:
        """Append one entry object (convenience wrapper around :meth:`push`)."""
        self.push(
            entry.source,
            entry.target,
            entry.semiring,
            entry.fragments,
            entry.latency,
            entry.cached,
            entry.batched,
            entry.trace_id,
            entry.error,
            entry.timestamp,
        )

    def clear(self) -> int:
        """Drop every retained entry (counters keep their totals)."""
        dropped = len(self._entries) + len(self._slow)
        self._entries.clear()
        self._slow.clear()
        return dropped

    # ------------------------------------------------------------- windows

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[QueryLogEntry]:
        """Return the retained window, oldest first."""
        return [QueryLogEntry(*row) for row in self._entries]

    def recent(self, count: int = 10) -> List[QueryLogEntry]:
        """Return the newest ``count`` entries, newest first."""
        if count <= 0:
            return []
        window = list(self._entries)
        return [QueryLogEntry(*row) for row in window[-count:][::-1]]

    def slowest(self, count: int = 10) -> List[QueryLogEntry]:
        """Return the slowest retained queries, slowest first.

        Prefers the dedicated slow window (entries past the threshold);
        when nothing ever crossed the threshold, falls back to ranking the
        main window so the command is still useful on a fast service.
        """
        if count <= 0:
            return []
        pool = list(self._slow) or list(self._entries)
        ranked = sorted(pool, key=lambda row: row[4], reverse=True)[:count]
        return [QueryLogEntry(*row) for row in ranked]

    # ---------------------------------------------------- workload signals

    def fragment_frequencies(self) -> Dict[int, int]:
        """Return fragment id -> how many retained queries touched it.

        Cached answers count: their fragments carried real read traffic even
        though no dispatch happened — the signal the dispatch counters miss.
        """
        frequencies: Dict[int, int] = {}
        for row in self._entries:
            for fragment_id in row[3]:
                frequencies[fragment_id] = frequencies.get(fragment_id, 0) + 1
        return frequencies

    def co_access_counts(self) -> Dict[Tuple[int, int], int]:
        """Return (fragment, fragment) -> co-occurrences on one answer's chain.

        Pairs are ordered ``(min, max)``.  This is the co-location signal
        workload-mined fragmentation wants: fragments that keep appearing on
        the same chain belong near each other.
        """
        pairs: Dict[Tuple[int, int], int] = {}
        for row in self._entries:
            fragments = sorted(set(row[3]))
            for index, first in enumerate(fragments):
                for second in fragments[index + 1:]:
                    pairs[(first, second)] = pairs.get((first, second), 0) + 1
        return pairs

    def query_skew(self) -> float:
        """Return max/mean fragment touch concentration (0.0 when idle)."""
        frequencies = self.fragment_frequencies()
        if not frequencies:
            return 0.0
        mean = sum(frequencies.values()) / len(frequencies)
        return max(frequencies.values()) / mean if mean else 0.0

    def cached_share(self) -> float:
        """Return the retained window's cache-hit share (0.0 when empty)."""
        if not self._entries:
            return 0.0
        return sum(1 for row in self._entries if row[5]) / len(self._entries)

    def error_count(self) -> int:
        """Return how many retained entries carry a planning error."""
        return sum(1 for row in self._entries if row[8] is not None)

    def as_dicts(self, count: Optional[int] = None) -> List[Dict[str, object]]:
        """Return the newest ``count`` entries (default all) as plain data."""
        window = self.entries() if count is None else self.recent(count)
        return [entry.as_dict() for entry in window]
