"""Request tracing: one trace id per service call, spans per pipeline stage.

Every ``QueryService`` entry point (``query`` / ``query_batch`` /
``update_edge`` / ``refragment``) opens a root span; the stages it passes
through — cache lookup, batch planning, owner routing, per-worker evaluation,
kernel execution — open child spans under it, so one answer's wall-clock
decomposes into exactly the layers the ROADMAP's cost models need.

Two span flavours exist:

* **in-process spans** (:meth:`Tracer.span`): a context manager timing the
  enclosed block with ``perf_counter``;
* **remote spans** (:meth:`Tracer.remote_span`): a worker process timed the
  work *in-process* and shipped the duration back over its private result
  channel; the coordinator attaches it under the current (or an explicit)
  parent.  Remote spans are how routed evaluation is attributed per owner
  worker and per fragment without any cross-process clock agreement — only
  durations cross the boundary, never timestamps.

The tracer keeps a bounded ring of finished traces (:meth:`Tracer.recent`)
and can be toggled live (``trace on|off`` in the serve loop); when disabled,
``span`` yields a shared no-op span and the hot path pays one attribute
check.  The tracer is deliberately single-threaded — the service answers one
call at a time — so the active-span stack needs no context variables.

Distributed propagation builds on one rule the asyncio serving tier must
obey: a span never stays open across an ``await`` (interleaved connection
handlers share this one stack).  Instead each synchronous segment of a
request — opening the iterator, every evaluation quantum, a resumed
continuation — opens its own *root* span that adopts the request's
:class:`TraceContext` via :meth:`Tracer.request_span`, so the segments file
separate :class:`Trace` records sharing one trace id.  The context travels
as a W3C ``traceparent`` string on the wire, as a plain tuple inside pickled
``SavedQueryState``\\ s, and as a bare trace id over the pool's task queues;
:meth:`Tracer.assemble` merges the filed segments back into the one logical
trace.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple, Union

_HEX_DIGITS = frozenset("0123456789abcdef")

#: Span ids are ints locally; a parent adopted from the wire is a 16-hex
#: string — the two never collide, which is what lets :meth:`Tracer.assemble`
#: tell a local edge from a remote one.
SpanId = Union[int, str]


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of one request's trace.

    ``trace_id`` names the trace every segment of the request joins;
    ``parent_span_id`` is the span the next segment's root should hang
    under — ``None`` for a brand-new request, a local span id when hopping
    between segments in one process, or a 16-hex string when adopted from a
    client's ``traceparent`` header.
    """

    trace_id: str
    parent_span_id: Optional[SpanId] = None

    def to_traceparent(self) -> str:
        """Render as a W3C ``traceparent`` header value (version 00)."""
        parent = self.parent_span_id
        if isinstance(parent, int):
            span_hex = f"{parent & 0xFFFFFFFFFFFFFFFF:016x}"
        elif isinstance(parent, str) and parent:
            span_hex = parent
        else:
            span_hex = "0" * 16
        return f"00-{self.trace_id}-{span_hex}-01"

    @classmethod
    def from_traceparent(cls, header: object) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` value; tolerant — malformed input is ``None``.

        A bad header from a client must never fail the request, only drop
        the propagation (the server then starts a fresh trace).
        """
        if not isinstance(header, str):
            return None
        parts = header.strip().lower().split("-")
        if len(parts) < 4:
            return None
        version, trace_id, span_id = parts[0], parts[1], parts[2]
        if len(version) != 2 or not set(version) <= _HEX_DIGITS or version == "ff":
            return None
        if len(trace_id) != 32 or not set(trace_id) <= _HEX_DIGITS:
            return None
        if len(span_id) != 16 or not set(span_id) <= _HEX_DIGITS:
            return None
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        return cls(trace_id=trace_id, parent_span_id=span_id)

    def as_tuple(self) -> Tuple[str, Optional[SpanId]]:
        """Plain-data form, safe to pickle into a ``SavedQueryState``."""
        return (self.trace_id, self.parent_span_id)


class Span:
    """One timed stage of a traced service call.

    A plain slotted class, not a dataclass, and its own context manager —
    the hot path opens six spans per query, so each span is exactly one
    allocation and the ``contextlib`` generator machinery (several
    microseconds per use) is avoided entirely.

    Attributes:
        name: the stage ("query", "cache_lookup", "kernel", ...).
        trace_id: the trace every span of one call shares.
        span_id: this span's id, unique within the trace.
        parent_id: the enclosing span's id (``None`` for the root).
        start: coordinator ``perf_counter`` at entry (for remote spans, the
            attach time minus the shipped duration — ordering only, the
            duration is the measurement).
        duration: seconds spent in the stage.
        attributes: free-form labels (fragment id, owner worker, task count).
        remote: ``True`` when the duration was measured inside a worker
            process and shipped back, rather than timed here.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "remote",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[SpanId],
        start: float,
        duration: float = 0.0,
        attributes: Optional[Dict[str, object]] = None,
        remote: bool = False,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attributes = {} if attributes is None else attributes
        self.remote = remote
        self._tracer: Optional["Tracer"] = None

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, trace_id={self.trace_id!r}, "
            f"span_id={self.span_id}, parent_id={self.parent_id}, "
            f"duration={self.duration}, remote={self.remote})"
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.duration = perf_counter() - self.start
        tracer = self._tracer
        if tracer is not None:
            tracer._stack.pop()
            if not tracer._stack:
                tracer._finish(self)
        return False

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def as_dict(self) -> Dict[str, object]:
        """Return the span as plain data (reporting / assertions)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "remote": self.remote,
        }


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """The shared no-op context manager for a disabled tracer's hot path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


@dataclass(slots=True)
class Trace:
    """One finished trace: the root span plus every descendant, in open order.

    Slotted and unfrozen: one is built per service call on the hot path, and
    a frozen dataclass pays ``object.__setattr__`` per field at construction.
    """

    trace_id: str
    root_name: str
    duration: float
    spans: List[Span]

    def span_names(self) -> List[str]:
        """Return every span name, root first."""
        return [span.name for span in self.spans]

    def children_of(self, parent: Span) -> List[Span]:
        """Return the spans whose parent is ``parent``."""
        return [span for span in self.spans if span.parent_id == parent.span_id]

    def find(self, name: str) -> List[Span]:
        """Return every span called ``name``."""
        return [span for span in self.spans if span.name == name]

    def as_dict(self) -> Dict[str, object]:
        """Return the trace as plain data."""
        return {
            "trace_id": self.trace_id,
            "root_name": self.root_name,
            "duration": self.duration,
            "spans": [span.as_dict() for span in self.spans],
        }


class Tracer:
    """Produces and retains traces for the query service's calls.

    Args:
        enabled: start with tracing on (the serve loop toggles it live).
        capacity: finished traces retained (oldest evicted first).

    The first :meth:`span` opened while no span is active becomes a trace's
    root; closing it files the whole trace into the bounded ring.  Spans
    opened while a root is active nest under the innermost open span.
    """

    def __init__(self, *, enabled: bool = True, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self._enabled = enabled
        self._traces: Deque[Trace] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._live: List[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        # Generated ids are valid 32-hex W3C trace ids: the pid makes them
        # unique across the pool's processes, the counter within one.
        self._prefix = f"{os.getpid() & 0xFFFFFFFF:08x}"
        self.traces_finished = 0
        self.traces_dropped = 0

    # ------------------------------------------------------------- toggling

    @property
    def enabled(self) -> bool:
        """Whether spans are currently being produced."""
        return self._enabled

    def enable(self) -> None:
        """Turn span production on (from the next root span)."""
        self._enabled = True

    def disable(self) -> None:
        """Turn span production off; an in-flight trace still completes."""
        self._enabled = False

    # -------------------------------------------------------------- spanning

    @property
    def current_trace_id(self) -> Optional[str]:
        """The active trace's id, or ``None`` outside any span."""
        return self._stack[-1].trace_id if self._stack else None

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attributes: object) -> object:
        """Open a timed span named ``name`` under the current span (or as root).

        A context manager yielding the :class:`Span` (or a shared no-op when
        tracing is off — callers may ``set`` attributes on either without
        checking).
        """
        return self._open(name, None, None, attributes)

    def new_trace_id(self) -> str:
        """Mint a fresh 32-hex trace id without opening a span."""
        return f"{self._prefix}{next(self._trace_ids):024x}"

    def new_context(self) -> TraceContext:
        """Mint a fresh request context (no parent — the next root is root)."""
        return TraceContext(trace_id=self.new_trace_id())

    def current_context(self) -> Optional[TraceContext]:
        """A context parenting under the innermost open span, or ``None``."""
        if not self._stack:
            return None
        current = self._stack[-1]
        return TraceContext(trace_id=current.trace_id, parent_span_id=current.span_id)

    def request_span(
        self, name: str, *, context: Optional[TraceContext] = None, **attributes: object
    ) -> object:
        """Open a span that adopts ``context`` when it becomes a root.

        The serving tier's entry point: each synchronous segment of a
        network request opens one of these, so the segment's spans carry the
        request's trace id (and hang under its ``parent_span_id``) instead
        of minting a fresh trace.  Nested calls (a span already open) ignore
        the context and behave exactly like :meth:`span`.
        """
        if context is None or self._stack:
            return self._open(name, None, None, attributes)
        return self._open(name, context.trace_id, context.parent_span_id, attributes)

    def _open(
        self,
        name: str,
        trace_id: Optional[str],
        parent_id: Optional[SpanId],
        attributes: Dict[str, object],
    ) -> object:
        stack = self._stack
        if not stack:
            if not self._enabled:
                return _NULL_SPAN_CONTEXT
            if trace_id is None:
                trace_id = self.new_trace_id()
            self._live = []
        else:
            parent = stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name,
            trace_id,
            next(self._span_ids),
            parent_id,
            perf_counter(),
            attributes=attributes,
        )
        span._tracer = self
        stack.append(span)
        self._live.append(span)
        return span

    def attach_span(
        self,
        name: str,
        duration: float,
        *,
        parent: Optional[Span] = None,
        remote: bool = False,
        **attributes: object,
    ) -> Optional[Span]:
        """Attach an already-timed span under ``parent`` (default: current span).

        The duration was measured elsewhere — by a kernel's own in-process
        timer, or (``remote=True``) inside a worker process and shipped back
        over its result channel; only the duration is trusted, the start is
        back-dated locally for ordering.  Returns the attached span, or
        ``None`` when no trace is active (tracing off, or called outside any
        service call).
        """
        anchor = parent if parent is not None else (self._stack[-1] if self._stack else None)
        if anchor is None:
            return None
        span = Span(
            name,
            anchor.trace_id,
            next(self._span_ids),
            anchor.span_id,
            perf_counter() - duration,
            duration=duration,
            attributes=attributes,
            remote=remote,
        )
        self._live.append(span)
        return span

    def remote_span(
        self,
        name: str,
        duration: float,
        *,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Optional[Span]:
        """Attach a worker-timed span (``attach_span`` with ``remote=True``)."""
        return self.attach_span(
            name, duration, parent=parent, remote=True, **attributes
        )

    def _finish(self, root: Span) -> None:
        if len(self._traces) == self._traces.maxlen:
            self.traces_dropped += 1
        # The live list is handed to the Trace, not copied: the next root
        # span starts a fresh one.
        self._traces.append(
            Trace(
                trace_id=root.trace_id,
                root_name=root.name,
                duration=root.duration,
                spans=self._live,
            )
        )
        self._live = []
        self.traces_finished += 1

    # ------------------------------------------------------------- retrieval

    def recent(self, count: int = 10) -> List[Trace]:
        """Return the most recent finished traces, newest first."""
        if count <= 0:
            return []
        return list(itertools.islice(reversed(self._traces), count))

    def find(self, trace_id: str) -> Optional[Trace]:
        """Return the retained trace with ``trace_id``, or ``None``."""
        for trace in self._traces:
            if trace.trace_id == trace_id:
                return trace
        return None

    def spans_of(self, trace_id: str) -> List[Span]:
        """Every retained span carrying ``trace_id``, oldest segment first.

        A propagated request files one :class:`Trace` record per
        synchronous segment (open, each quantum, resume); this gathers them
        back into one flat list.
        """
        spans: List[Span] = []
        for trace in self._traces:
            if trace.trace_id == trace_id:
                spans.extend(trace.spans)
        return spans

    def assemble(self, trace_id: str) -> Optional[Trace]:
        """Merge every retained segment of ``trace_id`` into one trace.

        Segment roots whose parent span lives in another segment become
        interior nodes of the merged tree; a parent id that matches no
        retained span (``None``, or a client's 16-hex wire span) marks a
        top-level span.  The merged duration sums the top-level spans'
        durations — time the request actually ran, suspension gaps
        excluded.  Returns ``None`` when nothing with ``trace_id`` is
        retained.
        """
        spans = self.spans_of(trace_id)
        if not spans:
            return None
        local_ids = {span.span_id for span in spans}
        top_level = [
            span
            for span in spans
            if span.parent_id is None or span.parent_id not in local_ids
        ]
        anchors = top_level or spans
        return Trace(
            trace_id=trace_id,
            root_name=anchors[0].name,
            duration=sum(span.duration for span in anchors),
            spans=spans,
        )

    def clear(self) -> int:
        """Drop every retained trace; returns how many were dropped."""
        dropped = len(self._traces)
        self._traces.clear()
        return dropped
