"""Request tracing: one trace id per service call, spans per pipeline stage.

Every ``QueryService`` entry point (``query`` / ``query_batch`` /
``update_edge`` / ``refragment``) opens a root span; the stages it passes
through — cache lookup, batch planning, owner routing, per-worker evaluation,
kernel execution — open child spans under it, so one answer's wall-clock
decomposes into exactly the layers the ROADMAP's cost models need.

Two span flavours exist:

* **in-process spans** (:meth:`Tracer.span`): a context manager timing the
  enclosed block with ``perf_counter``;
* **remote spans** (:meth:`Tracer.remote_span`): a worker process timed the
  work *in-process* and shipped the duration back over its private result
  channel; the coordinator attaches it under the current (or an explicit)
  parent.  Remote spans are how routed evaluation is attributed per owner
  worker and per fragment without any cross-process clock agreement — only
  durations cross the boundary, never timestamps.

The tracer keeps a bounded ring of finished traces (:meth:`Tracer.recent`)
and can be toggled live (``trace on|off`` in the serve loop); when disabled,
``span`` yields a shared no-op span and the hot path pays one attribute
check.  The tracer is deliberately single-threaded — the service answers one
call at a time — so the active-span stack needs no context variables.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Deque, Dict, List, Optional


class Span:
    """One timed stage of a traced service call.

    A plain slotted class, not a dataclass, and its own context manager —
    the hot path opens six spans per query, so each span is exactly one
    allocation and the ``contextlib`` generator machinery (several
    microseconds per use) is avoided entirely.

    Attributes:
        name: the stage ("query", "cache_lookup", "kernel", ...).
        trace_id: the trace every span of one call shares.
        span_id: this span's id, unique within the trace.
        parent_id: the enclosing span's id (``None`` for the root).
        start: coordinator ``perf_counter`` at entry (for remote spans, the
            attach time minus the shipped duration — ordering only, the
            duration is the measurement).
        duration: seconds spent in the stage.
        attributes: free-form labels (fragment id, owner worker, task count).
        remote: ``True`` when the duration was measured inside a worker
            process and shipped back, rather than timed here.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "remote",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        duration: float = 0.0,
        attributes: Optional[Dict[str, object]] = None,
        remote: bool = False,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration = duration
        self.attributes = {} if attributes is None else attributes
        self.remote = remote
        self._tracer: Optional["Tracer"] = None

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, trace_id={self.trace_id!r}, "
            f"span_id={self.span_id}, parent_id={self.parent_id}, "
            f"duration={self.duration}, remote={self.remote})"
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.duration = perf_counter() - self.start
        tracer = self._tracer
        if tracer is not None:
            tracer._stack.pop()
            if not tracer._stack:
                tracer._finish(self)
        return False

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def as_dict(self) -> Dict[str, object]:
        """Return the span as plain data (reporting / assertions)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "remote": self.remote,
        }


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """The shared no-op context manager for a disabled tracer's hot path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


@dataclass(slots=True)
class Trace:
    """One finished trace: the root span plus every descendant, in open order.

    Slotted and unfrozen: one is built per service call on the hot path, and
    a frozen dataclass pays ``object.__setattr__`` per field at construction.
    """

    trace_id: str
    root_name: str
    duration: float
    spans: List[Span]

    def span_names(self) -> List[str]:
        """Return every span name, root first."""
        return [span.name for span in self.spans]

    def children_of(self, parent: Span) -> List[Span]:
        """Return the spans whose parent is ``parent``."""
        return [span for span in self.spans if span.parent_id == parent.span_id]

    def find(self, name: str) -> List[Span]:
        """Return every span called ``name``."""
        return [span for span in self.spans if span.name == name]

    def as_dict(self) -> Dict[str, object]:
        """Return the trace as plain data."""
        return {
            "trace_id": self.trace_id,
            "root_name": self.root_name,
            "duration": self.duration,
            "spans": [span.as_dict() for span in self.spans],
        }


class Tracer:
    """Produces and retains traces for the query service's calls.

    Args:
        enabled: start with tracing on (the serve loop toggles it live).
        capacity: finished traces retained (oldest evicted first).

    The first :meth:`span` opened while no span is active becomes a trace's
    root; closing it files the whole trace into the bounded ring.  Spans
    opened while a root is active nest under the innermost open span.
    """

    def __init__(self, *, enabled: bool = True, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self._enabled = enabled
        self._traces: Deque[Trace] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._live: List[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._prefix = f"{os.getpid():x}"
        self.traces_finished = 0
        self.traces_dropped = 0

    # ------------------------------------------------------------- toggling

    @property
    def enabled(self) -> bool:
        """Whether spans are currently being produced."""
        return self._enabled

    def enable(self) -> None:
        """Turn span production on (from the next root span)."""
        self._enabled = True

    def disable(self) -> None:
        """Turn span production off; an in-flight trace still completes."""
        self._enabled = False

    # -------------------------------------------------------------- spanning

    @property
    def current_trace_id(self) -> Optional[str]:
        """The active trace's id, or ``None`` outside any span."""
        return self._stack[-1].trace_id if self._stack else None

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attributes: object) -> object:
        """Open a timed span named ``name`` under the current span (or as root).

        A context manager yielding the :class:`Span` (or a shared no-op when
        tracing is off — callers may ``set`` attributes on either without
        checking).
        """
        stack = self._stack
        if not stack:
            if not self._enabled:
                return _NULL_SPAN_CONTEXT
            trace_id = f"{self._prefix}-{next(self._trace_ids):08x}"
            parent_id = None
            self._live = []
        else:
            parent = stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name,
            trace_id,
            next(self._span_ids),
            parent_id,
            perf_counter(),
            attributes=attributes,
        )
        span._tracer = self
        stack.append(span)
        self._live.append(span)
        return span

    def attach_span(
        self,
        name: str,
        duration: float,
        *,
        parent: Optional[Span] = None,
        remote: bool = False,
        **attributes: object,
    ) -> Optional[Span]:
        """Attach an already-timed span under ``parent`` (default: current span).

        The duration was measured elsewhere — by a kernel's own in-process
        timer, or (``remote=True``) inside a worker process and shipped back
        over its result channel; only the duration is trusted, the start is
        back-dated locally for ordering.  Returns the attached span, or
        ``None`` when no trace is active (tracing off, or called outside any
        service call).
        """
        anchor = parent if parent is not None else (self._stack[-1] if self._stack else None)
        if anchor is None:
            return None
        span = Span(
            name,
            anchor.trace_id,
            next(self._span_ids),
            anchor.span_id,
            perf_counter() - duration,
            duration=duration,
            attributes=attributes,
            remote=remote,
        )
        self._live.append(span)
        return span

    def remote_span(
        self,
        name: str,
        duration: float,
        *,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Optional[Span]:
        """Attach a worker-timed span (``attach_span`` with ``remote=True``)."""
        return self.attach_span(
            name, duration, parent=parent, remote=True, **attributes
        )

    def _finish(self, root: Span) -> None:
        if len(self._traces) == self._traces.maxlen:
            self.traces_dropped += 1
        # The live list is handed to the Trace, not copied: the next root
        # span starts a fresh one.
        self._traces.append(
            Trace(
                trace_id=root.trace_id,
                root_name=root.name,
                duration=root.duration,
                spans=self._live,
            )
        )
        self._live = []
        self.traces_finished += 1

    # ------------------------------------------------------------- retrieval

    def recent(self, count: int = 10) -> List[Trace]:
        """Return the most recent finished traces, newest first."""
        if count <= 0:
            return []
        return list(itertools.islice(reversed(self._traces), count))

    def find(self, trace_id: str) -> Optional[Trace]:
        """Return the retained trace with ``trace_id``, or ``None``."""
        for trace in self._traces:
            if trace.trace_id == trace_id:
                return trace
        return None

    def clear(self) -> int:
        """Drop every retained trace; returns how many were dropped."""
        dropped = len(self._traces)
        self._traces.clear()
        return dropped
