"""Labeled metrics: counters, gauges, and fixed-bucket histograms.

The serving stack needs more than a flat counter bag: latency is a
*distribution* (a mean hides the p99 the paper's batching is supposed to
protect), per-fragment and per-worker figures are *labeled series* of one
logical metric, and worker processes produce measurements that must be folded
into the coordinator's view without shared memory.  :class:`MetricsRegistry`
provides exactly that substrate:

* :class:`Counter` — monotone labeled totals (``repro_queries_total``),
* :class:`Gauge` — last-written labeled values (pool shape, cache capacity),
* :class:`Histogram` — fixed-bucket labeled distributions with
  :meth:`Histogram.quantile` estimation (p50/p90/p99) from the bucket counts,

all addressable by ``(name, labels)``, exportable as JSON
(:meth:`MetricsRegistry.as_dict`) and Prometheus text exposition
(:meth:`MetricsRegistry.to_prometheus`), and **mergeable across processes**:
a worker keeps its own registry, ships :meth:`MetricsRegistry.drain`
payloads over its private result channel, and the coordinator folds them in
with :meth:`MetricsRegistry.merge_dict` — counters and histogram buckets
add, gauges take the maximum (the conservative reading for high-water
marks).  Buckets are fixed at registration, so two processes' histograms of
the same metric always merge bucket-for-bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from math import inf
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelValues = Tuple[str, ...]

# Default latency buckets in seconds: sub-millisecond kernels up to
# multi-second full-rebuild work, roughly 2.5x apart.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(ch not in _NAME_OK for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Render a sample the way Prometheus expects (integers without ``.0``)."""
    if value == inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Metric:
    """Base of the three metric kinds: a named family of labeled series.

    Attributes:
        name: the metric's Prometheus-style name.
        help: one-line description (the ``# HELP`` text).
        labelnames: the label keys every series of this family carries.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def _key(self, labels: Mapping[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: LabelValues) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    # Subclasses implement: series_dicts, merge_series, reset, prometheus_lines.


class Counter(Metric):
    """A monotone labeled total.  ``inc`` adds; merging sums."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series named by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Return the series' current total (0.0 when never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def set_value(self, value: float, **labels: object) -> None:
        """Overwrite a series (checkpoint restore / compatibility view only)."""
        self._values[self._key(labels)] = float(value)

    def series(self) -> Dict[LabelValues, float]:
        """Return every labeled series' value, keyed by label-value tuple."""
        return dict(self._values)

    def series_dicts(self) -> List[Dict[str, object]]:
        return [
            {"labels": self._labels_of(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def merge_series(self, series: Iterable[Mapping[str, object]]) -> None:
        for entry in series:
            labels = dict(entry["labels"])  # type: ignore[arg-type]
            key = self._key(labels)
            self._values[key] = self._values.get(key, 0.0) + float(entry["value"])  # type: ignore[arg-type]

    def reset(self) -> None:
        self._values.clear()

    def prometheus_lines(self) -> List[str]:
        lines = []
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_render_labels(self.labelnames, key)} {_format_value(value)}")
        return lines


class Gauge(Metric):
    """A labeled last-written value.  ``set`` overwrites; merging takes the max.

    The max-merge is deliberate: every gauge this stack ships across a
    process boundary is a high-water mark (queue depth peak, resident
    fragments), for which the conservative fold is the maximum.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the series named by ``labels``."""
        self._values[self._key(labels)] = float(value)

    def max_of(self, value: float, **labels: object) -> None:
        """Raise the series to ``value`` when larger (high-water mark write)."""
        key = self._key(labels)
        self._values[key] = max(self._values.get(key, value), value)

    def value(self, **labels: object) -> float:
        """Return the series' current value (0.0 when never set)."""
        return self._values.get(self._key(labels), 0.0)

    def series_dicts(self) -> List[Dict[str, object]]:
        return [
            {"labels": self._labels_of(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def merge_series(self, series: Iterable[Mapping[str, object]]) -> None:
        for entry in series:
            key = self._key(dict(entry["labels"]))  # type: ignore[arg-type]
            value = float(entry["value"])  # type: ignore[arg-type]
            self._values[key] = max(self._values.get(key, value), value)

    def reset(self) -> None:
        self._values.clear()

    def prometheus_lines(self) -> List[str]:
        lines = []
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_render_labels(self.labelnames, key)} {_format_value(value)}")
        return lines


class _HistogramSeries:
    """One labeled series of a histogram: bucket counts + sum + count + max."""

    __slots__ = ("bucket_counts", "sum", "count", "max")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0
        self.max = 0.0


class Histogram(Metric):
    """A labeled fixed-bucket distribution with quantile estimation.

    Args:
        name / help / labelnames: as for any metric.
        buckets: strictly increasing finite upper bounds; an implicit
            ``+Inf`` bucket is always appended.  Fixed at registration so
            histograms of the same metric merge bucket-for-bucket across
            processes.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])) or bounds[-1] == inf:
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing finite "
                f"upper bounds, got {bounds}"
            )
        self.buckets: Tuple[float, ...] = bounds
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def _get(self, labels: Mapping[str, object]) -> _HistogramSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
        return series

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the series named by ``labels``."""
        series = self._get(labels)
        index = bisect_left(self.buckets, value)
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1
        if value > series.max:
            series.max = value

    def count(self, **labels: object) -> int:
        """Return the series' observation count (0 when never observed)."""
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        """Return the series' observation sum (0.0 when never observed)."""
        series = self._series.get(self._key(labels))
        return series.sum if series is not None else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the bucket counts.

        The estimate interpolates linearly inside the bucket holding the
        target rank (lower bound 0.0 for the first bucket); ranks landing in
        the ``+Inf`` bucket return the observed maximum.  Returns 0.0 for a
        series with no observations.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        series = self._series.get(self._key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        cumulative = 0
        for index, bucket_count in enumerate(series.bucket_counts):
            if bucket_count == 0:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.buckets):
                    return series.max
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                within = (rank - (cumulative - bucket_count)) / bucket_count
                return min(lower + (upper - lower) * within, series.max or upper)
        return series.max

    def series_dicts(self) -> List[Dict[str, object]]:
        entries = []
        for key, series in sorted(self._series.items()):
            entries.append(
                {
                    "labels": self._labels_of(key),
                    "buckets": list(self.buckets),
                    "bucket_counts": list(series.bucket_counts),
                    "sum": series.sum,
                    "count": series.count,
                    "max": series.max,
                }
            )
        return entries

    def merge_series(self, series: Iterable[Mapping[str, object]]) -> None:
        for entry in series:
            if tuple(entry["buckets"]) != self.buckets:  # type: ignore[arg-type]
                raise ValueError(
                    f"histogram {self.name!r} bucket mismatch: cannot merge "
                    f"{entry['buckets']} into {list(self.buckets)}"
                )
            target = self._get(dict(entry["labels"]))  # type: ignore[arg-type]
            for index, bucket_count in enumerate(entry["bucket_counts"]):  # type: ignore[arg-type]
                target.bucket_counts[index] += int(bucket_count)
            target.sum += float(entry["sum"])  # type: ignore[arg-type]
            target.count += int(entry["count"])  # type: ignore[arg-type]
            target.max = max(target.max, float(entry["max"]))  # type: ignore[arg-type]

    def reset(self) -> None:
        self._series.clear()

    def prometheus_lines(self) -> List[str]:
        lines = []
        for key, series in sorted(self._series.items()):
            cumulative = 0
            for bound, bucket_count in zip(
                list(self.buckets) + [inf], series.bucket_counts
            ):
                cumulative += bucket_count
                labels = _render_labels(
                    self.labelnames + ("le",), key + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(series.sum)}")
            lines.append(f"{self.name}_count{plain} {series.count}")
        return lines


def _render_labels(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + body + "}"


class MetricsRegistry:
    """A named collection of metrics, exportable and mergeable.

    Registration is get-or-create: asking twice for the same name returns
    the same metric object (so independent components can share one series
    family), but asking with a different kind, label set, or bucket layout
    raises — silent divergence between two writers is exactly the bug a
    registry exists to prevent.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ---------------------------------------------------------- registration

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create the counter ``name``."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed on creation)."""
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_compatible(existing, Histogram, labelnames)
            assert isinstance(existing, Histogram)
            if tuple(float(b) for b in buckets) != existing.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{list(existing.buckets)}"
                )
            if help and not existing.help:
                existing.help = help
            return existing
        metric = Histogram(name, help, labelnames, buckets)
        self._metrics[name] = metric
        return metric

    def _register(self, cls, name: str, help: str, labelnames: Sequence[str]):
        existing = self._metrics.get(name)
        if existing is not None:
            self._check_compatible(existing, cls, labelnames)
            # Backfill help on a metric first touched helplessly (a worker
            # drain or a bare pre-registration): without this, whichever
            # writer got there first decided forever whether the Prometheus
            # exposition carries a # HELP line.
            if help and not existing.help:
                existing.help = help
            return existing
        metric = cls(name, help, labelnames)
        self._metrics[name] = metric
        return metric

    @staticmethod
    def _check_compatible(existing: Metric, cls, labelnames: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {existing.name!r} is already registered as a "
                f"{existing.kind}, not a {cls.kind}"
            )
        if tuple(labelnames) != existing.labelnames:
            raise ValueError(
                f"metric {existing.name!r} is already registered with labels "
                f"{existing.labelnames}, not {tuple(labelnames)}"
            )

    # ------------------------------------------------------------- accessors

    def get(self, name: str) -> Optional[Metric]:
        """Return the metric registered as ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Return the registered metric names, sorted."""
        return sorted(self._metrics)

    # --------------------------------------------------------------- export

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Return every metric's series as plain data (JSON-serialisable)."""
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "series": metric.series_dicts(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def to_prometheus(self) -> str:
        """Return the registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.prometheus_lines())
        return "\n".join(lines) + "\n"

    # --------------------------------------------------------------- merging

    def merge_dict(self, payload: Mapping[str, Mapping[str, object]]) -> None:
        """Fold an :meth:`as_dict` / :meth:`drain` payload into this registry.

        Metrics absent here are created from the payload's description;
        counters and histogram buckets add, gauges take the maximum.  This
        is how worker-process measurements reach the coordinator: the worker
        drains its registry into plain data, ships it over its result
        channel, and the coordinator merges.
        """
        for name, description in payload.items():
            kind = description["kind"]
            labelnames = tuple(description.get("labelnames", ()))  # type: ignore[arg-type]
            help_text = str(description.get("help", ""))
            if kind == "counter":
                metric: Metric = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                series = description.get("series") or []
                buckets = (
                    tuple(series[0]["buckets"])  # type: ignore[index]
                    if series
                    else DEFAULT_LATENCY_BUCKETS
                )
                metric = self.histogram(name, help_text, labelnames, buckets)
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            metric.merge_series(description.get("series", ()))  # type: ignore[arg-type]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (see :meth:`merge_dict`)."""
        self.merge_dict(other.as_dict())

    def drain(self) -> Dict[str, Dict[str, object]]:
        """Return :meth:`as_dict` and reset every series.

        The shipping primitive for worker processes: each drained payload
        holds only the observations since the previous drain, so repeated
        merges on the coordinator never double-count.
        """
        payload = self.as_dict()
        self.reset()
        return payload

    def reset(self) -> None:
        """Zero every registered metric (the metrics stay registered)."""
        for metric in self._metrics.values():
            metric.reset()
