"""Declarative SLOs over the metrics registry, with burn-rate alerting.

An :class:`SLODefinition` names an objective ("99% of queries complete
within 100ms", "99.9% of serving requests succeed") and points at the
registry series that measure it — a latency histogram with a threshold
bucket, or a labeled counter with a bad-outcome predicate.  The
:class:`SLOMonitor` snapshots the cumulative good/total counts on every
evaluation and keeps a bounded time-stamped ring of them, which is what
turns monotone counters into *windowed* error rates.

Alerting follows the multi-window burn-rate recipe: an objective is
burning when both a long window and a short confirmation window exceed the
same burn-rate factor (burn rate = windowed error rate divided by the
error budget ``1 - objective``).  The long window gives the alert
significance, the short one makes it stop quickly once the bleeding
stops.  Two standard windows are preconfigured: a fast page (1h/5m at
14.4x — budget gone in ~2 days) and a slow ticket (6h/30m at 6x).

The monitor takes an injectable clock so tests can replay hours of burn
in microseconds, and it never writes to the registry — evaluation is a
read-side concern the serving tier triggers lazily from ``healthz`` /
``readyz`` / ``stats``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "SLODefinition",
    "SLOMonitor",
    "SLOStatus",
    "default_slos",
]


@dataclass(frozen=True)
class BurnWindow:
    """One long/short burn-rate alert pair."""

    long_seconds: float
    short_seconds: float
    factor: float
    severity: str  # "page" | "ticket"


#: The standard SRE pairs: page on fast burn, ticket on slow burn.
DEFAULT_BURN_WINDOWS: Tuple[BurnWindow, ...] = (
    BurnWindow(long_seconds=3600.0, short_seconds=300.0, factor=14.4, severity="page"),
    BurnWindow(long_seconds=21600.0, short_seconds=1800.0, factor=6.0, severity="ticket"),
)

_SEVERITY_RANK = {"ok": 0, "ticket": 1, "page": 2}


@dataclass(frozen=True)
class SLODefinition:
    """One objective and the registry series that measure it.

    Exactly one source must be set:

    * ``histogram`` + ``threshold`` — a latency objective: an observation is
      *good* when it landed in a bucket whose upper bound is at most
      ``threshold``; total is the histogram's count.
    * ``counter`` + ``bad_label`` + ``bad_values`` — an availability
      objective: series whose ``bad_label`` value is in ``bad_values``
      count as bad, everything else as good.
    """

    name: str
    objective: float
    description: str = ""
    histogram: Optional[str] = None
    threshold: Optional[float] = None
    counter: Optional[str] = None
    bad_label: Optional[str] = None
    bad_values: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: objective must be in (0, 1), got {self.objective}"
            )
        latency = self.histogram is not None
        availability = self.counter is not None
        if latency == availability:
            raise ValueError(
                f"SLO {self.name!r}: set exactly one of histogram= or counter="
            )
        if latency and self.threshold is None:
            raise ValueError(f"SLO {self.name!r}: histogram SLOs need threshold=")
        if availability and (self.bad_label is None or not self.bad_values):
            raise ValueError(
                f"SLO {self.name!r}: counter SLOs need bad_label= and bad_values="
            )

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction ``1 - objective``."""
        return 1.0 - self.objective


@dataclass(slots=True)
class SLOStatus:
    """One SLO's evaluated state."""

    name: str
    objective: float
    description: str
    good: float
    total: float
    error_rate: float
    budget_remaining: float
    severity: str
    burn: List[Dict[str, object]] = field(default_factory=list)

    @property
    def alerting(self) -> bool:
        return self.severity != "ok"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "objective": self.objective,
            "description": self.description,
            "good": self.good,
            "total": self.total,
            "error_rate": self.error_rate,
            "budget_remaining": self.budget_remaining,
            "severity": self.severity,
            "alerting": self.alerting,
            "burn": [dict(entry) for entry in self.burn],
        }


class SLOMonitor:
    """Evaluates a set of SLOs against one registry, remembering history.

    Args:
        registry: the metrics registry the objectives read from.
        slos: the objectives to track.
        windows: burn-rate alert pairs (default the standard page/ticket).
        clock: monotone seconds source (injectable for tests).
        capacity: snapshots retained per SLO; at one sample per ``healthz``
            scrape this comfortably covers the longest default window.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: Sequence[SLODefinition],
        *,
        windows: Sequence[BurnWindow] = DEFAULT_BURN_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = 2048,
    ) -> None:
        if capacity < 2:
            raise ValueError(f"SLO history capacity must be >= 2, got {capacity}")
        self._registry = registry
        self._slos = tuple(slos)
        self._windows = tuple(windows)
        self._clock = clock
        self._history: Dict[str, Deque[Tuple[float, float, float]]] = {
            slo.name: deque(maxlen=capacity) for slo in self._slos
        }
        # Baseline snapshot: a monitor started against a warm registry must
        # measure burn from now on, not inherit the past as instant debt.
        self.sample()

    @property
    def slos(self) -> Tuple[SLODefinition, ...]:
        return self._slos

    # -------------------------------------------------------------- sampling

    def _totals(self, slo: SLODefinition) -> Tuple[float, float]:
        """Cumulative (good, total) for ``slo`` right now."""
        if slo.histogram is not None:
            metric = self._registry.get(slo.histogram)
            if not isinstance(metric, Histogram):
                return (0.0, 0.0)
            good = total = 0.0
            threshold = float(slo.threshold)  # type: ignore[arg-type]
            for series in metric.series_dicts():
                counts = series["bucket_counts"]
                for upper, count in zip(metric.buckets, counts):
                    if upper <= threshold:
                        good += count
                total += series["count"]
            return (good, total)
        metric = self._registry.get(slo.counter)  # type: ignore[arg-type]
        if metric is None or slo.bad_label not in metric.labelnames:
            return (0.0, 0.0)
        good = total = 0.0
        for series in metric.series_dicts():
            value = float(series["value"])
            total += value
            if series["labels"].get(slo.bad_label) not in slo.bad_values:
                good += value
        return (good, total)

    def sample(self, now: Optional[float] = None) -> None:
        """Snapshot every SLO's cumulative counts at ``now``."""
        stamp = self._clock() if now is None else now
        for slo in self._slos:
            good, total = self._totals(slo)
            self._history[slo.name].append((stamp, good, total))

    # ------------------------------------------------------------ evaluation

    @staticmethod
    def _window_error_rate(
        samples: Deque[Tuple[float, float, float]], window: float
    ) -> float:
        """Error rate between the newest sample and the window's oldest."""
        newest = samples[-1]
        cutoff = newest[0] - window
        base = samples[0]
        for sample in samples:
            if sample[0] >= cutoff:
                base = sample
                break
        delta_total = newest[2] - base[2]
        if delta_total <= 0:
            return 0.0
        delta_good = newest[1] - base[1]
        return max(0.0, 1.0 - delta_good / delta_total)

    def evaluate(self, now: Optional[float] = None) -> Dict[str, SLOStatus]:
        """Sample, then return every SLO's status keyed by name."""
        self.sample(now)
        statuses: Dict[str, SLOStatus] = {}
        for slo in self._slos:
            samples = self._history[slo.name]
            _, good, total = samples[-1]
            error_rate = 1.0 - good / total if total > 0 else 0.0
            severity = "ok"
            burn_report: List[Dict[str, object]] = []
            for window in self._windows:
                long_rate = self._window_error_rate(samples, window.long_seconds)
                short_rate = self._window_error_rate(samples, window.short_seconds)
                long_burn = long_rate / slo.budget
                short_burn = short_rate / slo.budget
                firing = long_burn >= window.factor and short_burn >= window.factor
                burn_report.append(
                    {
                        "severity": window.severity,
                        "long_seconds": window.long_seconds,
                        "short_seconds": window.short_seconds,
                        "factor": window.factor,
                        "long_burn": long_burn,
                        "short_burn": short_burn,
                        "firing": firing,
                    }
                )
                if firing and _SEVERITY_RANK[window.severity] > _SEVERITY_RANK[severity]:
                    severity = window.severity
            statuses[slo.name] = SLOStatus(
                name=slo.name,
                objective=slo.objective,
                description=slo.description,
                good=good,
                total=total,
                error_rate=error_rate,
                budget_remaining=max(0.0, 1.0 - error_rate / slo.budget),
                severity=severity,
                burn=burn_report,
            )
        return statuses

    def worst_severity(self, statuses: Optional[Dict[str, SLOStatus]] = None) -> str:
        """The highest severity across SLOs ("ok" | "ticket" | "page")."""
        if statuses is None:
            statuses = self.evaluate()
        worst = "ok"
        for status in statuses.values():
            if _SEVERITY_RANK[status.severity] > _SEVERITY_RANK[worst]:
                worst = status.severity
        return worst

    def as_dict(self, statuses: Optional[Dict[str, SLOStatus]] = None) -> Dict[str, object]:
        """Plain-data summary for health endpoints and ``stats`` exports."""
        if statuses is None:
            statuses = self.evaluate()
        return {
            "severity": self.worst_severity(statuses),
            "objectives": [statuses[slo.name].as_dict() for slo in self._slos],
        }


def default_slos(
    *,
    latency_threshold: float = 0.1,
    latency_objective: float = 0.99,
    availability_objective: float = 0.999,
) -> Tuple[SLODefinition, ...]:
    """The serving tier's stock objectives.

    Latency reads the service's ``repro_query_latency_seconds`` histogram
    (the threshold should be one of its bucket bounds); availability reads
    the server's per-outcome ``repro_serving_requests_total`` counter.
    """
    return (
        SLODefinition(
            name="query_latency",
            objective=latency_objective,
            description=(
                f"{latency_objective:.1%} of queries complete within "
                f"{latency_threshold * 1000:g}ms"
            ),
            histogram="repro_query_latency_seconds",
            threshold=latency_threshold,
        ),
        SLODefinition(
            name="serving_availability",
            objective=availability_objective,
            description=(
                f"{availability_objective:.2%} of serving requests succeed"
            ),
            counter="repro_serving_requests_total",
            bad_label="outcome",
            bad_values=("error",),
        ),
    )
