"""repro: Data fragmentation for parallel transitive closure strategies.

A full reproduction of Houtsma, Apers and Schipper (ICDE 1993): the
disconnection set approach to parallel transitive-closure evaluation, the
three data fragmentation algorithms the paper contributes (center-based,
bond-energy, linear), the graph generators of its evaluation, and a simulated
shared-nothing multiprocessor to stand in for the PRISMA/DB machine.

Typical usage::

    from repro import (
        generate_transportation_graph, paper_table1_config,
        BondEnergyFragmenter, DisconnectionSetEngine,
    )

    network = generate_transportation_graph(paper_table1_config(), seed=7)
    fragmentation = BondEnergyFragmenter(fragment_count=4).fragment(network.graph)
    engine = DisconnectionSetEngine(fragmentation)
    answer = engine.query(source, target)
"""

from .closure import (
    ClosureResult,
    ClosureStatistics,
    Semiring,
    bill_of_materials,
    is_connected,
    naive_transitive_closure,
    reachability_closure,
    reachability_semiring,
    seminaive_transitive_closure,
    shortest_path_closure,
    shortest_path_cost,
    shortest_path_semiring,
    smart_transitive_closure,
    warshall_closure,
)
from .disconnection import (
    ComplementaryInformation,
    DisconnectionSetEngine,
    DistributedCatalog,
    FragmentedDatabase,
    HierarchicalEngine,
    QueryAnswer,
    QueryPlanner,
    UpdateEvent,
    precompute_complementary_information,
    reachability_engine,
    shortest_path_engine,
)
from .exceptions import (
    DisconnectedError,
    FragmentationError,
    GraphError,
    NoChainError,
    ReproError,
)
from .fragmentation import (
    BondEnergyFragmenter,
    CenterBasedFragmenter,
    Fragment,
    Fragmentation,
    FragmentationCharacteristics,
    FragmentationGraph,
    Fragmenter,
    GroundTruthFragmenter,
    HashFragmenter,
    KConnectivityFragmenter,
    LinearFragmenter,
    RandomNodeFragmenter,
    characterize,
)
from .generators import (
    PathQuery,
    RandomGraphConfig,
    TransportationGraph,
    TransportationGraphConfig,
    european_railway_example,
    generate_random_graph,
    generate_transportation_graph,
    paper_table1_config,
    paper_table2_config,
)
from .graph import CompactGraph, DiGraph, Point
from .observability import MetricsRegistry, QueryLog, Tracer
from .parallel import (
    CostModel,
    MultiprocessQueryExecutor,
    ParallelSimulator,
    SpeedupPoint,
    compare_fragmenters,
    speedup_curve,
)
from .placement import (
    Migration,
    PlacementPlan,
    RebalanceAdvisor,
    plan_placement,
)
from .refragmentation import (
    LiveRefragmenter,
    RefragmentResult,
    RefragmentationAdvisor,
    measure_layout,
)
from .relational import Relation, edge_relation, seminaive_closure
from .service import (
    BatchPlanner,
    LRUCache,
    PlacedWorkerPool,
    QueryService,
    ResidentWorkerPool,
    ServiceAnswer,
    ServiceStatistics,
    SnapshotStore,
    load_snapshot,
    save_snapshot,
)

__version__ = "1.0.0"

__all__ = [
    "BatchPlanner",
    "BondEnergyFragmenter",
    "CenterBasedFragmenter",
    "ClosureResult",
    "ClosureStatistics",
    "CompactGraph",
    "ComplementaryInformation",
    "CostModel",
    "DiGraph",
    "DisconnectedError",
    "DisconnectionSetEngine",
    "DistributedCatalog",
    "Fragment",
    "Fragmentation",
    "FragmentationCharacteristics",
    "FragmentationError",
    "FragmentationGraph",
    "FragmentedDatabase",
    "Fragmenter",
    "GraphError",
    "GroundTruthFragmenter",
    "HashFragmenter",
    "HierarchicalEngine",
    "KConnectivityFragmenter",
    "LRUCache",
    "LinearFragmenter",
    "LiveRefragmenter",
    "MetricsRegistry",
    "Migration",
    "MultiprocessQueryExecutor",
    "NoChainError",
    "ParallelSimulator",
    "PathQuery",
    "PlacedWorkerPool",
    "PlacementPlan",
    "plan_placement",
    "Point",
    "QueryAnswer",
    "QueryLog",
    "QueryPlanner",
    "QueryService",
    "RandomGraphConfig",
    "RandomNodeFragmenter",
    "RebalanceAdvisor",
    "RefragmentResult",
    "RefragmentationAdvisor",
    "Relation",
    "ReproError",
    "ResidentWorkerPool",
    "Semiring",
    "ServiceAnswer",
    "ServiceStatistics",
    "SnapshotStore",
    "SpeedupPoint",
    "Tracer",
    "TransportationGraph",
    "TransportationGraphConfig",
    "UpdateEvent",
    "bill_of_materials",
    "characterize",
    "compare_fragmenters",
    "edge_relation",
    "european_railway_example",
    "generate_random_graph",
    "generate_transportation_graph",
    "is_connected",
    "load_snapshot",
    "measure_layout",
    "naive_transitive_closure",
    "paper_table1_config",
    "paper_table2_config",
    "precompute_complementary_information",
    "reachability_closure",
    "reachability_engine",
    "reachability_semiring",
    "save_snapshot",
    "seminaive_closure",
    "seminaive_transitive_closure",
    "shortest_path_closure",
    "shortest_path_cost",
    "shortest_path_engine",
    "shortest_path_semiring",
    "smart_transitive_closure",
    "speedup_curve",
    "warshall_closure",
]
