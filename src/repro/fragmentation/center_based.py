"""Center-based fragmentation (Sec. 3.1 and Fig. 4 of the paper).

The algorithm aims at a *balanced workload*: fragments that require roughly
the same amount of per-processor computation.  It works in two phases:

1. **Center selection.**  Nodes are scored with a weighted neighbourhood
   formula (a variant of Hoede's status score, :mod:`repro.graph.status`);
   the actual centers are then picked from the high-scoring candidate pool —
   either at random (the paper's first variant) or spread out geometrically
   using the node coordinates (the "distributed centers" refinement of
   Sec. 4.2.1, which Table 2 shows to be a large improvement).

2. **Fragment growth.**  Starting from the centers, the algorithm iterates
   over the fragments and repeatedly adds all edges adjacent to the fragment's
   current node set (Fig. 4).  The iteration order is adaptable: the
   ``round_robin`` balance policy adds one layer per fragment per round (the
   diameter-balancing variant of Fig. 4), while ``smallest_first`` always
   expands the fragment with the fewest edges (the size-balancing variant).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph, spread_out_selection, top_candidates
from .base import Edge, Fragmentation
from .protocols import Fragmenter

Node = Hashable

BALANCE_BY_DIAMETER = "round_robin"
BALANCE_BY_SIZE = "smallest_first"

CENTER_SELECTION_RANDOM = "random"
CENTER_SELECTION_DISTRIBUTED = "distributed"
CENTER_SELECTION_TOP_SCORE = "top_score"


class CenterBasedFragmenter(Fragmenter):
    """The center-based fragmentation algorithm.

    Args:
        fragment_count: the number of fragments (= number of centers); the
            paper notes this "may depend on factors such as the number of
            processors available".
        center_selection: how centers are picked from the high-score candidate
            pool: ``"random"`` (the paper's first variant), ``"distributed"``
            (coordinate-spread selection, the Table 2 refinement) or
            ``"top_score"`` (simply the highest-scoring nodes; deterministic
            but may cluster centers together).
        balance: ``"round_robin"`` adds one ring of edges per fragment per
            round (balances fragment diameters); ``"smallest_first"`` always
            grows the currently smallest fragment (balances fragment sizes).
        attenuation: the ``a < 1`` factor of the status score.
        score_radius: how many rings the status score looks at (paper: 3).
        candidate_pool_factor: size of the candidate pool relative to
            ``fragment_count``.
        seed: RNG seed for the random center selection.
    """

    name = "center-based"

    def __init__(
        self,
        fragment_count: int,
        *,
        center_selection: str = CENTER_SELECTION_RANDOM,
        balance: str = BALANCE_BY_DIAMETER,
        attenuation: float = 0.5,
        score_radius: int = 3,
        candidate_pool_factor: float = 3.0,
        seed: int = 0,
    ) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        if center_selection not in (
            CENTER_SELECTION_RANDOM,
            CENTER_SELECTION_DISTRIBUTED,
            CENTER_SELECTION_TOP_SCORE,
        ):
            raise FragmenterConfigurationError(
                f"unknown center_selection {center_selection!r}"
            )
        if balance not in (BALANCE_BY_DIAMETER, BALANCE_BY_SIZE):
            raise FragmenterConfigurationError(f"unknown balance policy {balance!r}")
        if not 0.0 < attenuation:
            raise FragmenterConfigurationError("attenuation must be positive")
        self.fragment_count = fragment_count
        self.center_selection = center_selection
        self.balance = balance
        self.attenuation = attenuation
        self.score_radius = score_radius
        self.candidate_pool_factor = candidate_pool_factor
        self.seed = seed
        if center_selection == CENTER_SELECTION_DISTRIBUTED:
            self.name = "center-based-distributed"

    # ------------------------------------------------------------------ API

    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Fragment ``graph`` by growing fragments around selected centers."""
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        count = min(self.fragment_count, max(1, graph.node_count()))
        centers = self.select_centers(graph, count)
        fragment_edges = self._grow_fragments(graph, centers)
        populated = [edges for edges in fragment_edges if edges]
        return Fragmentation(
            graph,
            populated,
            algorithm=self.name,
            metadata={
                "centers": centers,
                "balance": self.balance,
                "center_selection": self.center_selection,
            },
        )

    # --------------------------------------------------------------- centers

    def select_centers(self, graph: DiGraph, count: int) -> List[Node]:
        """Select ``count`` centers using the configured policy."""
        # The distributed policy needs a wide pool to have geometrically
        # spread candidates to pick from: with a narrow pool all high-score
        # nodes may sit in the same dense cluster and the spreading step has
        # nothing to work with (the failure mode Table 2 documents for the
        # plain variant).
        pool_factor = (
            max(self.candidate_pool_factor, 32.0)
            if self.center_selection == CENTER_SELECTION_DISTRIBUTED
            else self.candidate_pool_factor
        )
        candidates = list(
            top_candidates(
                graph,
                count,
                pool_factor=pool_factor,
                attenuation=self.attenuation,
                radius=self.score_radius,
            )
        )
        if len(candidates) <= count:
            return candidates
        if self.center_selection == CENTER_SELECTION_TOP_SCORE:
            return candidates[:count]
        if self.center_selection == CENTER_SELECTION_DISTRIBUTED:
            if graph.has_coordinates():
                return spread_out_selection(graph.coordinates(), candidates, count)
            # Fall back to a graph-distance spread when there are no coordinates.
            return self._spread_by_graph_distance(graph, candidates, count)
        rng = random.Random(self.seed)
        return rng.sample(candidates, count)

    def _spread_by_graph_distance(
        self, graph: DiGraph, candidates: Sequence[Node], count: int
    ) -> List[Node]:
        """Greedy farthest-first selection using hop distances instead of coordinates."""
        from ..graph import bfs_levels

        selected: List[Node] = [candidates[0]]
        while len(selected) < count:
            # Distance from every candidate to the nearest already-selected center.
            distance_to_selected: Dict[Node, int] = {}
            for center in selected:
                levels = bfs_levels(graph, center, undirected=True)
                for node in candidates:
                    hops = levels.get(node, graph.node_count() + 1)
                    if node not in distance_to_selected or hops < distance_to_selected[node]:
                        distance_to_selected[node] = hops
            remaining = [node for node in candidates if node not in selected]
            if not remaining:
                break
            best = max(remaining, key=lambda node: (distance_to_selected.get(node, 0), repr(node)))
            selected.append(best)
        return selected

    # ---------------------------------------------------------------- growth

    def _grow_fragments(self, graph: DiGraph, centers: List[Node]) -> List[Set[Edge]]:
        """Grow fragments from the centers until every edge is assigned (Fig. 4)."""
        count = len(centers)
        fragment_nodes: List[Set[Node]] = [set() for _ in range(count)]
        fragment_edges: List[Set[Edge]] = [set() for _ in range(count)]
        unassigned: Set[Edge] = set(graph.edges())

        # Initialisation: each fragment takes its center and the edges adjacent to it.
        for index, center in enumerate(centers):
            fragment_nodes[index].add(center)
            adjacent = {
                edge
                for edge in self._incident_edges(graph, center)
                if edge in unassigned
            }
            fragment_edges[index] |= adjacent
            unassigned -= adjacent
            for source, target in adjacent:
                fragment_nodes[index].add(source)
                fragment_nodes[index].add(target)

        stalled_rounds = 0
        while unassigned:
            order = self._expansion_order(fragment_edges)
            progress = False
            for index in order:
                added = self._expand_once(graph, fragment_nodes[index], fragment_edges[index], unassigned)
                if added:
                    progress = True
                    if self.balance == BALANCE_BY_SIZE:
                        # Re-evaluate which fragment is smallest after every expansion.
                        break
            if not progress:
                stalled_rounds += 1
                # Remaining edges are unreachable from every center (other weak
                # component): seed them into the currently smallest fragment so
                # the partition still covers the whole relation.
                if stalled_rounds > 1 or not self._seed_disconnected_edge(
                    graph, fragment_nodes, fragment_edges, unassigned
                ):
                    break
            else:
                stalled_rounds = 0
        return fragment_edges

    def _expansion_order(self, fragment_edges: List[Set[Edge]]) -> List[int]:
        indices = list(range(len(fragment_edges)))
        if self.balance == BALANCE_BY_SIZE:
            indices.sort(key=lambda index: (len(fragment_edges[index]), index))
        return indices

    def _expand_once(
        self,
        graph: DiGraph,
        nodes: Set[Node],
        edges: Set[Edge],
        unassigned: Set[Edge],
    ) -> bool:
        """Add every still-unassigned edge touching the fragment's node set."""
        frontier_edges: Set[Edge] = set()
        for node in nodes:
            for edge in self._incident_edges(graph, node):
                if edge in unassigned:
                    frontier_edges.add(edge)
        if not frontier_edges:
            return False
        edges |= frontier_edges
        unassigned -= frontier_edges
        for source, target in frontier_edges:
            nodes.add(source)
            nodes.add(target)
        return True

    def _seed_disconnected_edge(
        self,
        graph: DiGraph,
        fragment_nodes: List[Set[Node]],
        fragment_edges: List[Set[Edge]],
        unassigned: Set[Edge],
    ) -> bool:
        """Assign one unreachable edge to the smallest fragment to restart growth."""
        if not unassigned:
            return False
        smallest = min(range(len(fragment_edges)), key=lambda index: (len(fragment_edges[index]), index))
        edge = min(unassigned, key=repr)
        unassigned.discard(edge)
        fragment_edges[smallest].add(edge)
        fragment_nodes[smallest].add(edge[0])
        fragment_nodes[smallest].add(edge[1])
        return True

    @staticmethod
    def _incident_edges(graph: DiGraph, node: Node) -> List[Edge]:
        incident: List[Edge] = [(node, target) for target in graph.successors(node)]
        incident.extend((source, node) for source in graph.predecessors(node))
        return incident
