"""Fragmentation framework: the paper's core contribution.

Value objects (:class:`Fragment`, :class:`Fragmentation`), the fragmentation
graph, the characteristic metrics of Tables 1-3, and the fragmentation
algorithms: center-based (Sec. 3.1), bond-energy (Sec. 3.2), linear
(Sec. 3.3), the rejected k-connectivity idea, and the trivial baselines.
"""

from .advisor import AdvisorConstraints, Recommendation, recommend
from .base import Fragment, Fragmentation, fragmentation_from_node_blocks
from .baselines import GroundTruthFragmenter, HashFragmenter, RandomNodeFragmenter
from .bond_energy import BondEnergyFragmenter
from .center_based import (
    BALANCE_BY_DIAMETER,
    BALANCE_BY_SIZE,
    CENTER_SELECTION_DISTRIBUTED,
    CENTER_SELECTION_RANDOM,
    CENTER_SELECTION_TOP_SCORE,
    CenterBasedFragmenter,
)
from .fragmentation_graph import FragmentationGraph
from .kconnectivity import KConnectivityFragmenter
from .linear import (
    SWEEP_BOTTOM_TO_TOP,
    SWEEP_LEFT_TO_RIGHT,
    SWEEP_RIGHT_TO_LEFT,
    SWEEP_TOP_TO_BOTTOM,
    LinearFragmenter,
)
from .metrics import (
    FragmentationCharacteristics,
    characteristics_table,
    characterize,
    complementary_information_size,
    fragment_diameters,
    total_border_nodes,
    workload_balance,
)
from .protocols import Fragmenter
from .validation import (
    assert_valid,
    cluster_agreement,
    covers_all_nodes,
    disconnection_set_correctness,
    edge_preservation,
    is_valid,
)

__all__ = [
    "AdvisorConstraints",
    "Recommendation",
    "recommend",
    "BALANCE_BY_DIAMETER",
    "BALANCE_BY_SIZE",
    "BondEnergyFragmenter",
    "CENTER_SELECTION_DISTRIBUTED",
    "CENTER_SELECTION_RANDOM",
    "CENTER_SELECTION_TOP_SCORE",
    "CenterBasedFragmenter",
    "Fragment",
    "Fragmentation",
    "FragmentationCharacteristics",
    "FragmentationGraph",
    "Fragmenter",
    "GroundTruthFragmenter",
    "HashFragmenter",
    "KConnectivityFragmenter",
    "LinearFragmenter",
    "RandomNodeFragmenter",
    "SWEEP_BOTTOM_TO_TOP",
    "SWEEP_LEFT_TO_RIGHT",
    "SWEEP_RIGHT_TO_LEFT",
    "SWEEP_TOP_TO_BOTTOM",
    "assert_valid",
    "characteristics_table",
    "characterize",
    "cluster_agreement",
    "complementary_information_size",
    "covers_all_nodes",
    "disconnection_set_correctness",
    "edge_preservation",
    "fragment_diameters",
    "fragmentation_from_node_blocks",
    "is_valid",
    "total_border_nodes",
    "workload_balance",
]
