"""The fragmentation graph G' and its structural analysis.

Section 2.1 of the paper defines the fragmentation graph ``G' = <N, E>``: one
node per fragment, one edge per nonempty disconnection set.  A fragmentation
is *loosely connected* when this graph is acyclic; in that case there is a
single chain of fragments between any two fragments, which keeps query
planning trivial and avoids redundant work.

This module builds the fragmentation graph from a
:class:`~repro.fragmentation.base.Fragmentation` and answers the planning
questions the disconnection-set engine asks: is it loosely connected, what are
the chains between two fragments, how many cycles does it have.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..graph import DiGraph, undirected_cycle_count, weakly_connected_components
from .base import Fragmentation, FragmentId

Node = Hashable


class FragmentationGraph:
    """The graph of fragments induced by a fragmentation."""

    def __init__(self, fragmentation: Fragmentation) -> None:
        self._fragmentation = fragmentation
        self._graph = DiGraph()
        for fragment in fragmentation.fragments:
            self._graph.add_node(fragment.fragment_id)
        for (i, j) in fragmentation.disconnection_sets():
            self._graph.add_symmetric_edge(i, j, 1.0)

    @property
    def graph(self) -> DiGraph:
        """The underlying fragment-level graph (symmetric edges)."""
        return self._graph

    @property
    def fragmentation(self) -> Fragmentation:
        """The fragmentation this graph was derived from."""
        return self._fragmentation

    def fragment_ids(self) -> List[FragmentId]:
        """Return the fragment ids (nodes of the fragmentation graph)."""
        return list(self._graph.nodes())

    def edges(self) -> List[Tuple[FragmentId, FragmentId]]:
        """Return the adjacent fragment pairs (each unordered pair once, i < j)."""
        return sorted(
            {(min(i, j), max(i, j)) for i, j in self._graph.edges()}
        )

    def neighbors(self, fragment_id: FragmentId) -> List[FragmentId]:
        """Return the fragments adjacent to ``fragment_id``."""
        return sorted(self._graph.neighbors(fragment_id))

    # --------------------------------------------------------------- shape

    def cycle_count(self) -> int:
        """Return the circuit rank of the fragmentation graph (0 when acyclic)."""
        return undirected_cycle_count(self._graph)

    def is_loosely_connected(self) -> bool:
        """Return ``True`` when the fragmentation graph is acyclic.

        This is the paper's loose-connectivity property: between any two
        fragments there is at most one chain of fragments.
        """
        return self.cycle_count() == 0

    def is_connected(self) -> bool:
        """Return ``True`` when every fragment can reach every other fragment."""
        return len(weakly_connected_components(self._graph)) <= 1

    # -------------------------------------------------------------- chains

    def chains(
        self,
        start: FragmentId,
        end: FragmentId,
        *,
        max_chains: Optional[int] = None,
    ) -> List[List[FragmentId]]:
        """Return all simple chains of fragments from ``start`` to ``end``.

        For a loosely connected fragmentation this list has at most one
        element; otherwise every simple path must be considered independently
        (Sec. 2.1).  ``max_chains`` caps the enumeration for very cyclic
        fragmentation graphs (the situation Parallel Hierarchical Evaluation
        is designed to avoid).
        """
        if start == end:
            return [[start]]
        chains: List[List[FragmentId]] = []
        stack: List[Tuple[FragmentId, List[FragmentId]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for neighbour in sorted(self._graph.neighbors(node), reverse=True):
                if neighbour in path:
                    continue
                extended = path + [neighbour]
                if neighbour == end:
                    chains.append(extended)
                    if max_chains is not None and len(chains) >= max_chains:
                        return chains
                else:
                    stack.append((neighbour, extended))
        return chains

    def shortest_chain(self, start: FragmentId, end: FragmentId) -> Optional[List[FragmentId]]:
        """Return a chain with the fewest fragments, or ``None`` if none exists."""
        found = self.chains(start, end)
        if not found:
            return None
        return min(found, key=lambda chain: (len(chain), chain))

    def chain_disconnection_sets(self, chain: List[FragmentId]) -> List[FrozenSet[Node]]:
        """Return the disconnection sets crossed along ``chain`` (one per hop)."""
        return [
            self._fragmentation.disconnection_set(chain[index], chain[index + 1])
            for index in range(len(chain) - 1)
        ]

    def degree_histogram(self) -> Dict[int, int]:
        """Return a histogram of fragment degrees in the fragmentation graph."""
        histogram: Dict[int, int] = {}
        for fragment_id in self.fragment_ids():
            degree = len(self.neighbors(fragment_id))
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def __repr__(self) -> str:
        return (
            f"FragmentationGraph(fragments={len(self.fragment_ids())}, "
            f"edges={len(self.edges())}, cycles={self.cycle_count()})"
        )
