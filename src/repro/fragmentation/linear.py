"""Linear fragmentation (Sec. 3.3 and Fig. 7 of the paper).

This algorithm guarantees an *acyclic* (loosely connected) fragmentation
graph.  It assumes every node carries a coordinate pair and sweeps the graph
from one extreme end to the other:

1. The start nodes are the ``s`` nodes with the smallest x-coordinates (or, in
   general, the extreme nodes along a configurable sweep direction; Fig. 8
   illustrates that the choice of the sweep direction matters).
2. The current fragment repeatedly absorbs every edge incident to its frontier
   nodes until the fragment holds at least ``|E| / f`` edges.
3. The frontier nodes at that point become the disconnection set to the next
   fragment and the sweep continues from them.

Because every edge reachable from the frontier is absorbed before a cut is
made, each fragment is only adjacent to its predecessor and successor in the
sweep, so the fragmentation graph is a simple path (acyclic).  The price is
that the disconnection sets may become large and the fragment sizes
unbalanced, exactly the trade-off Tables 1 and 3 show.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..exceptions import FragmenterConfigurationError, MissingCoordinatesError
from ..graph import DiGraph
from .base import Edge, Fragmentation
from .protocols import Fragmenter

Node = Hashable

SWEEP_LEFT_TO_RIGHT = "left_to_right"
SWEEP_RIGHT_TO_LEFT = "right_to_left"
SWEEP_BOTTOM_TO_TOP = "bottom_to_top"
SWEEP_TOP_TO_BOTTOM = "top_to_bottom"

_SWEEP_KEYS = {
    SWEEP_LEFT_TO_RIGHT: lambda point: point.x,
    SWEEP_RIGHT_TO_LEFT: lambda point: -point.x,
    SWEEP_BOTTOM_TO_TOP: lambda point: point.y,
    SWEEP_TOP_TO_BOTTOM: lambda point: -point.y,
}


class LinearFragmenter(Fragmenter):
    """The linear fragmentation algorithm.

    Args:
        fragment_count: the number of fragments ``f``; the edge threshold per
            fragment is ``|E| / f``.
        start_node_count: how many extreme nodes seed the first fragment (the
            paper's ``s``); defaults to 1.
        sweep: sweep direction (default left to right, the paper's choice of
            "starting at the leftmost side").
        start_nodes: explicit start nodes, overriding the coordinate-based
            selection — the paper notes that "for actual applications we might
            ask the user to provide us with the start nodes".
    """

    name = "linear"

    def __init__(
        self,
        fragment_count: int,
        *,
        start_node_count: int = 1,
        sweep: str = SWEEP_LEFT_TO_RIGHT,
        start_nodes: Optional[Sequence[Node]] = None,
    ) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        if start_node_count <= 0:
            raise FragmenterConfigurationError("start_node_count must be positive")
        if sweep not in _SWEEP_KEYS:
            raise FragmenterConfigurationError(f"unknown sweep direction {sweep!r}")
        self.fragment_count = fragment_count
        self.start_node_count = start_node_count
        self.sweep = sweep
        self.start_nodes = list(start_nodes) if start_nodes is not None else None

    # ------------------------------------------------------------------ API

    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Fragment ``graph`` with a coordinate sweep (Fig. 7)."""
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        start_nodes = self._select_start_nodes(graph)
        threshold = self._edge_threshold(graph)
        fragment_edges, disconnection_sets = self._sweep(graph, start_nodes, threshold)
        populated = [edges for edges in fragment_edges if edges]
        return Fragmentation(
            graph,
            populated,
            algorithm=self.name,
            metadata={
                "start_nodes": list(start_nodes),
                "threshold": threshold,
                "sweep": self.sweep,
                "boundary_sets": [sorted(nodes, key=repr) for nodes in disconnection_sets],
            },
        )

    def _edge_threshold(self, graph: DiGraph) -> int:
        """Return the per-fragment edge threshold ``|E| / f`` (undirected count)."""
        return max(1, graph.undirected_edge_count() // self.fragment_count)

    def _select_start_nodes(self, graph: DiGraph) -> List[Node]:
        if self.start_nodes is not None:
            missing = [node for node in self.start_nodes if not graph.has_node(node)]
            if missing:
                raise FragmenterConfigurationError(
                    f"start node(s) not in the graph: {missing!r}"
                )
            return list(self.start_nodes)
        if not graph.has_coordinates():
            raise MissingCoordinatesError(
                "linear fragmentation needs node coordinates (or explicit start_nodes)"
            )
        key = _SWEEP_KEYS[self.sweep]
        coordinates = graph.coordinates()
        ordered = sorted(coordinates, key=lambda node: (key(coordinates[node]), repr(node)))
        return ordered[: self.start_node_count]

    # ---------------------------------------------------------------- sweep

    def _sweep(
        self,
        graph: DiGraph,
        start_nodes: Sequence[Node],
        threshold: int,
    ) -> Tuple[List[Set[Edge]], List[Set[Node]]]:
        """Run the sweep of Fig. 7; return per-fragment edge sets and the boundary sets."""
        unassigned: Set[Edge] = set(graph.edges())
        assigned_nodes: Set[Node] = set()
        frontier: Set[Node] = set(start_nodes)
        fragment_edges: List[Set[Edge]] = []
        boundary_sets: List[Set[Node]] = []

        while unassigned:
            current_edges: Set[Edge] = set()
            current_undirected: Set[Tuple[Node, Node]] = set()
            current_nodes: Set[Node] = set(frontier)
            # The last of the f requested fragments absorbs the whole
            # remainder: integer rounding of the |E|/f threshold must not
            # spill leftover edges into fragments beyond the requested count.
            unbounded = len(fragment_edges) >= self.fragment_count - 1
            while (unbounded or len(current_undirected) < threshold) and unassigned:
                new_edges = {
                    edge
                    for edge in unassigned
                    if edge[0] in frontier or edge[1] in frontier
                }
                if not new_edges:
                    break
                next_frontier: Set[Node] = set()
                for source, target in new_edges:
                    for endpoint in (source, target):
                        if endpoint not in current_nodes:
                            next_frontier.add(endpoint)
                    current_undirected.add(
                        (source, target) if repr(source) <= repr(target) else (target, source)
                    )
                current_edges |= new_edges
                unassigned -= new_edges
                current_nodes |= next_frontier
                frontier = next_frontier
            if not current_edges:
                # The sweep is stuck (remaining edges unreachable from the
                # frontier, e.g. another weak component): restart from the
                # extreme unvisited node so every edge still gets assigned.
                frontier = self._restart_frontier(graph, unassigned)
                if not frontier:
                    break
                continue
            fragment_edges.append(current_edges)
            assigned_nodes |= current_nodes
            # The nodes on the boundary (current frontier) seed the next
            # fragment and form the disconnection set to it.
            boundary_sets.append(set(frontier))
            if not frontier:
                frontier = self._restart_frontier(graph, unassigned)
        return fragment_edges, boundary_sets

    def _restart_frontier(self, graph: DiGraph, unassigned: Set[Edge]) -> Set[Node]:
        """Pick a new frontier from the unassigned edges (disconnected remainder)."""
        if not unassigned:
            return set()
        nodes = {node for edge in unassigned for node in edge}
        if graph.has_coordinates():
            key = _SWEEP_KEYS[self.sweep]
            coordinates = graph.coordinates()
            best = min(nodes, key=lambda node: (key(coordinates[node]), repr(node)))
        else:
            best = min(nodes, key=repr)
        return {best}
