"""Fragmentation characteristics: the quantities Tables 1-3 report.

For a fragmentation the paper reports four numbers (Sec. 4.2):

* ``F``   — average fragment size (number of edges),
* ``DS``  — average disconnection set size (number of nodes),
* ``AF``  — average deviation of the fragment sizes from ``F``,
* ``ADS`` — average deviation of the disconnection set sizes from ``DS``.

This module computes those, plus the structural characteristics that motivate
the three algorithms (cycle count of the fragmentation graph, per-fragment
diameters for the workload-balance view) and the derived workload estimates
used by the parallel cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..graph import hop_diameter, mean, mean_absolute_deviation
from .base import Fragmentation
from .fragmentation_graph import FragmentationGraph


@dataclass(frozen=True)
class FragmentationCharacteristics:
    """The paper's table row for one fragmentation, plus structural extras.

    Attributes:
        algorithm: name of the fragmentation algorithm.
        fragment_count: number of fragments produced.
        average_fragment_size: ``F`` — mean undirected edge count per fragment.
        average_disconnection_set_size: ``DS`` — mean node count over nonempty
            disconnection sets (0.0 when there are none).
        fragment_size_deviation: ``AF`` — mean absolute deviation of fragment
            sizes.
        disconnection_set_deviation: ``ADS`` — mean absolute deviation of
            disconnection set sizes.
        disconnection_set_count: number of nonempty disconnection sets.
        cycle_count: circuit rank of the fragmentation graph (0 = loosely
            connected).
        loosely_connected: whether the fragmentation graph is acyclic.
        max_fragment_diameter: the largest per-fragment hop diameter, the
            driver of the slowest processor's iteration count.
    """

    algorithm: str
    fragment_count: int
    average_fragment_size: float
    average_disconnection_set_size: float
    fragment_size_deviation: float
    disconnection_set_deviation: float
    disconnection_set_count: int
    cycle_count: int
    loosely_connected: bool
    max_fragment_diameter: int

    def as_dict(self) -> Dict[str, object]:
        """Return the characteristics as a flat dictionary for reporting."""
        return {
            "algorithm": self.algorithm,
            "fragment_count": self.fragment_count,
            "F": self.average_fragment_size,
            "DS": self.average_disconnection_set_size,
            "AF": self.fragment_size_deviation,
            "ADS": self.disconnection_set_deviation,
            "disconnection_set_count": self.disconnection_set_count,
            "cycle_count": self.cycle_count,
            "loosely_connected": self.loosely_connected,
            "max_fragment_diameter": self.max_fragment_diameter,
        }


def characterize(fragmentation: Fragmentation, *, include_diameter: bool = True) -> FragmentationCharacteristics:
    """Compute the :class:`FragmentationCharacteristics` of a fragmentation.

    Args:
        fragmentation: the fragmentation to measure.
        include_diameter: computing per-fragment diameters costs a BFS per
            node; disable for very large sweeps where only the table columns
            are needed.
    """
    sizes = [float(size) for size in fragmentation.fragment_sizes()]
    ds_sizes = [float(size) for size in fragmentation.disconnection_set_sizes()]
    fragmentation_graph = FragmentationGraph(fragmentation)
    if include_diameter:
        max_diameter = max(
            (
                hop_diameter(fragmentation.fragment_subgraph(fragment.fragment_id))
                for fragment in fragmentation.fragments
            ),
            default=0,
        )
    else:
        max_diameter = 0
    return FragmentationCharacteristics(
        algorithm=fragmentation.algorithm,
        fragment_count=fragmentation.fragment_count(),
        average_fragment_size=mean(sizes),
        average_disconnection_set_size=mean(ds_sizes),
        fragment_size_deviation=mean_absolute_deviation(sizes),
        disconnection_set_deviation=mean_absolute_deviation(ds_sizes),
        disconnection_set_count=len(ds_sizes),
        cycle_count=fragmentation_graph.cycle_count(),
        loosely_connected=fragmentation_graph.is_loosely_connected(),
        max_fragment_diameter=max_diameter,
    )


def fragment_diameters(fragmentation: Fragmentation) -> List[int]:
    """Return the hop diameter of every fragment (iteration-count proxy)."""
    return [
        hop_diameter(fragmentation.fragment_subgraph(fragment.fragment_id))
        for fragment in fragmentation.fragments
    ]


def workload_balance(fragmentation: Fragmentation) -> float:
    """Return a balance score in (0, 1]: average fragment size / largest fragment size.

    1.0 means perfectly equal fragments (the center-based goal); values near
    1/n mean one fragment holds nearly everything.
    """
    sizes = fragmentation.fragment_sizes()
    largest = max(sizes) if sizes else 0
    if largest == 0:
        return 1.0
    return mean([float(size) for size in sizes]) / float(largest)


def border_node_set(fragmentation: Fragmentation) -> set:
    """Return the distinct nodes that appear in any disconnection set.

    The single definition of "border node" shared by the table metrics, the
    refragmentation advisor's locality signals and the live refragmenter's
    recovery accounting.
    """
    border = set()
    for nodes in fragmentation.disconnection_sets().values():
        border |= nodes
    return border


def total_border_nodes(fragmentation: Fragmentation) -> int:
    """Return the number of distinct nodes that appear in any disconnection set."""
    return len(border_node_set(fragmentation))


def complementary_information_size(fragmentation: Fragmentation) -> int:
    """Estimate the number of precomputed border-to-border facts.

    For each fragment the complementary information stores a value for every
    ordered pair of its border nodes; small disconnection sets keep this
    quadratic term small, which is the paper's argument for preferring them.
    """
    size = 0
    for fragment in fragmentation.fragments:
        border = fragmentation.border_nodes(fragment.fragment_id)
        size += len(border) * max(0, len(border) - 1)
    return size


def characteristics_table(rows: List[FragmentationCharacteristics]) -> List[Dict[str, object]]:
    """Return a list of dictionaries ready for tabular reporting."""
    return [row.as_dict() for row in rows]
