"""Bond-energy fragmentation (Sec. 3.2 of the paper).

This algorithm aims at *small disconnection sets*.  It is a variant of the
bond energy algorithm (BEA) of McCormick, Schweitzer and White (1972):

1. Build the (symmetric) adjacency matrix of the graph, with the diagonal set
   to 1.
2. Reorder the columns so that closely related nodes end up next to each
   other: columns are placed one at a time at the position (leftmost,
   rightmost, or between any two placed columns) that maximises the sum of
   inner products of adjacent columns.  The outcome depends on the column
   chosen first, so the paper iterates over all possible first columns and
   keeps the best ordering; because that multiplies the cost by ``n`` we make
   the number of restarts configurable (``restarts=None`` reproduces the
   paper's exhaustive iteration).
3. Split the reordered matrix into blocks of contiguous columns.  The paper
   scans the columns left to right and splits when a *local condition* holds;
   it implements the **threshold** condition (split as soon as the number of
   connections from the current block to nodes outside it reaches a
   threshold) with an optional minimum block size to avoid fragments that are
   "too small".  Both knobs are exposed here, and a local-minimum splitting
   policy is provided as well for completeness.

Each block of nodes becomes a fragment; edges inside a block belong to that
fragment, edges between blocks are assigned to the lower-indexed block (so the
shared endpoint becomes part of both fragments' node sets, i.e. of the
disconnection set).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph
from .base import Fragmentation, fragmentation_from_node_blocks
from .protocols import Fragmenter

Node = Hashable

SPLIT_THRESHOLD = "threshold"
SPLIT_LOCAL_MINIMUM = "local_minimum"


class BondEnergyFragmenter(Fragmenter):
    """The bond-energy fragmentation algorithm.

    Args:
        fragment_count: desired number of fragments.  When ``threshold`` is
            not given it is derived automatically so that roughly this many
            blocks are produced.
        threshold: explicit split threshold — split as soon as the number of
            connections from the current block to outside nodes reaches this
            value.  ``None`` derives a threshold from ``fragment_count``.
        min_block_size: minimum number of columns per block; the "finetuning"
            of the paper that avoids fragments that are too small.  ``None``
            derives it from the graph size and ``fragment_count``.
        split_policy: ``"threshold"`` (the paper's implemented choice) or
            ``"local_minimum"`` (split at local minima of the external
            connection count).
        restarts: how many different first columns to try for the BEA
            ordering; ``None`` tries every column (the paper's exhaustive
            variant, quadratic in the node count on top of the placement
            cost).
    """

    name = "bond-energy"

    def __init__(
        self,
        fragment_count: int,
        *,
        threshold: Optional[int] = None,
        min_block_size: Optional[int] = None,
        split_policy: str = SPLIT_THRESHOLD,
        restarts: Optional[int] = 4,
    ) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        if threshold is not None and threshold <= 0:
            raise FragmenterConfigurationError("threshold must be positive when given")
        if min_block_size is not None and min_block_size <= 0:
            raise FragmenterConfigurationError("min_block_size must be positive when given")
        if split_policy not in (SPLIT_THRESHOLD, SPLIT_LOCAL_MINIMUM):
            raise FragmenterConfigurationError(f"unknown split_policy {split_policy!r}")
        if restarts is not None and restarts <= 0:
            raise FragmenterConfigurationError("restarts must be positive or None")
        self.fragment_count = fragment_count
        self.threshold = threshold
        self.min_block_size = min_block_size
        self.split_policy = split_policy
        self.restarts = restarts

    # ------------------------------------------------------------------ API

    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Fragment ``graph`` via BEA ordering plus contiguous-block splitting."""
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        ordering = self.order_columns(graph)
        blocks = self.split_ordering(graph, ordering)
        return fragmentation_from_node_blocks(
            graph,
            blocks,
            algorithm=self.name,
            metadata={
                "ordering": list(ordering),
                "split_policy": self.split_policy,
                "threshold": self.threshold,
                "block_count": len(blocks),
            },
        )

    # ------------------------------------------------------------- ordering

    def order_columns(self, graph: DiGraph) -> List[Node]:
        """Return the BEA column ordering of the graph's nodes."""
        nodes = graph.nodes()
        if len(nodes) <= 2:
            return list(nodes)
        adjacency = self._adjacency_rows(graph)
        inner = _InnerProductCache(adjacency)
        start_columns = self._start_columns(nodes)
        best_order: Optional[List[Node]] = None
        best_score = float("-inf")
        for start in start_columns:
            order, score = self._place_all(nodes, start, inner)
            if score > best_score:
                best_order, best_score = order, score
        assert best_order is not None  # at least one start column is tried
        return best_order

    def _start_columns(self, nodes: Sequence[Node]) -> List[Node]:
        if self.restarts is None or self.restarts >= len(nodes):
            return list(nodes)
        # Deterministic, spread over the node list.
        step = max(1, len(nodes) // self.restarts)
        return [nodes[index] for index in range(0, len(nodes), step)][: self.restarts]

    @staticmethod
    def _adjacency_rows(graph: DiGraph) -> Dict[Node, Set[Node]]:
        """Return, per column (node), the set of rows with a 1 (neighbours + self)."""
        rows: Dict[Node, Set[Node]] = {}
        for node in graph.nodes():
            rows[node] = set(graph.neighbors(node))
            rows[node].add(node)
        return rows

    def _place_all(
        self,
        nodes: Sequence[Node],
        start: Node,
        inner: "_InnerProductCache",
    ) -> Tuple[List[Node], float]:
        """Place every column greedily, starting from ``start``; return order and bond score."""
        placed: List[Node] = [start]
        remaining: List[Node] = [node for node in nodes if node != start]
        # Place the column maximising the inner product with the start column
        # first (the paper's explicit second step), then continue greedily.
        while remaining:
            best_node_index = 0
            best_position = 0
            best_gain = float("-inf")
            for node_index, node in enumerate(remaining):
                position, gain = self._best_position(placed, node, inner)
                if gain > best_gain:
                    best_gain = gain
                    best_node_index = node_index
                    best_position = position
            node = remaining.pop(best_node_index)
            placed.insert(best_position, node)
        score = sum(inner.product(placed[i], placed[i + 1]) for i in range(len(placed) - 1))
        return placed, float(score)

    @staticmethod
    def _best_position(
        placed: Sequence[Node],
        node: Node,
        inner: "_InnerProductCache",
    ) -> Tuple[int, float]:
        """Return the insertion position of ``node`` maximising the bond gain."""
        best_position = 0
        best_gain = float("-inf")
        for position in range(len(placed) + 1):
            left = placed[position - 1] if position > 0 else None
            right = placed[position] if position < len(placed) else None
            gain = 0.0
            if left is not None:
                gain += inner.product(left, node)
            if right is not None:
                gain += inner.product(node, right)
            if left is not None and right is not None:
                gain -= inner.product(left, right)
            if gain > best_gain:
                best_gain = gain
                best_position = position
        return best_position, best_gain

    # ------------------------------------------------------------ splitting

    def split_ordering(self, graph: DiGraph, ordering: Sequence[Node]) -> List[List[Node]]:
        """Split an ordered node sequence into contiguous blocks (fragments).

        The columns are scanned once, left to right (as in the paper); the
        number of connections from the current block to nodes outside it is
        maintained incrementally.  Under the threshold policy the block is cut
        as soon as that count has come down to the threshold — for a well
        clustered ordering the count rises while a cluster is being crossed
        and collapses to the few inter-cluster connections at its boundary,
        which is exactly where the cut should land.  If the count never
        reaches the threshold before the block hits its size cap (general
        graphs without sharp cluster structure), the cut is placed at the best
        (lowest-count) position seen so far.
        """
        n = len(ordering)
        if n == 0:
            return []
        threshold = self.threshold if self.threshold is not None else self._derive_threshold(graph)
        min_block = (
            self.min_block_size
            if self.min_block_size is not None
            else max(2, n // (self.fragment_count * 2))
        )
        neighbour_sets = {node: set(graph.neighbors(node)) for node in ordering}

        blocks: List[List[Node]] = []
        start = 0
        while start < n and len(blocks) < self.fragment_count - 1:
            remaining_blocks = self.fragment_count - len(blocks)
            remaining_columns = n - start
            if remaining_columns <= min_block * remaining_blocks:
                # Just enough room left: cut evenly and stop searching.
                cut = start + max(min_block, remaining_columns // remaining_blocks) - 1
                cut = min(cut, n - 1)
                blocks.append(list(ordering[start:cut + 1]))
                start = cut + 1
                continue
            size_cap = max(min_block, int(round(1.5 * remaining_columns / remaining_blocks)))
            cut = self._find_cut(
                ordering, start, neighbour_sets, threshold, min_block, size_cap, remaining_blocks
            )
            blocks.append(list(ordering[start:cut + 1]))
            start = cut + 1
        if start < n:
            blocks.append(list(ordering[start:]))
        return [block for block in blocks if block]

    def _find_cut(
        self,
        ordering: Sequence[Node],
        start: int,
        neighbour_sets: Dict[Node, Set[Node]],
        threshold: int,
        min_block: int,
        size_cap: int,
        remaining_blocks: int,
    ) -> int:
        """Return the index (inclusive) at which the block starting at ``start`` ends."""
        n = len(ordering)
        block: Set[Node] = set()
        external = 0
        best_index = min(start + min_block - 1, n - 2)
        best_external: Optional[int] = None
        previous_external = 0
        for index in range(start, n):
            node = ordering[index]
            inside = sum(1 for neighbour in neighbour_sets[node] if neighbour in block)
            outside = sum(
                1 for neighbour in neighbour_sets[node] if neighbour not in block and neighbour != node
            )
            # Adjacencies towards ``node`` were external, now internal; the
            # node's own adjacencies towards non-members become external.
            external += outside - inside
            block.add(node)
            size = index - start + 1
            columns_left = n - index - 1
            if columns_left < (remaining_blocks - 1) * min_block:
                break
            if size < min_block:
                previous_external = external
                continue
            if self.split_policy == SPLIT_THRESHOLD and external <= threshold:
                return index
            if self.split_policy == SPLIT_LOCAL_MINIMUM and external > previous_external and size > min_block:
                return index - 1
            if best_external is None or external < best_external:
                best_external = external
                best_index = index
            previous_external = external
            if size >= size_cap:
                break
        return best_index

    def _derive_threshold(self, graph: DiGraph) -> int:
        """Derive a split threshold from the graph's connectivity.

        The threshold is the external-connection count at which a block is
        considered cleanly separated.  Half the average node degree works well
        for transportation graphs: at a true cluster boundary only the few
        inter-cluster adjacencies remain, far below the degree of a single
        interior node, while inside a cluster the count stays far above it.
        """
        average_degree = (
            2.0 * graph.undirected_edge_count() / graph.node_count() if graph.node_count() else 0.0
        )
        return max(2, int(round(average_degree / 2.0)))

    @staticmethod
    def external_connections(block: Set[Node], graph: DiGraph) -> int:
        """Count adjacencies from ``block`` members to nodes outside the block.

        This is the quantity of the paper's Fig. 5 example: the 1's of the
        block's columns that fall outside the block's rows.  Exposed for tests
        and for callers that want to score a candidate split themselves.
        """
        external = 0
        for node in block:
            external += sum(1 for neighbour in graph.neighbors(node) if neighbour not in block)
        return external


class _InnerProductCache:
    """Lazy cache of column inner products ``sum_k M[k,i] * M[k,j]``.

    For a 0/1 adjacency matrix the inner product of two columns is the number
    of rows where both have a 1, i.e. the size of the intersection of their
    row sets; computing it lazily from sets keeps the cost proportional to the
    sparsity of the graph instead of ``n`` per pair.
    """

    def __init__(self, adjacency_rows: Dict[Node, Set[Node]]) -> None:
        self._rows = adjacency_rows
        self._cache: Dict[Tuple[Node, Node], int] = {}

    def product(self, a: Node, b: Node) -> int:
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        if key not in self._cache:
            rows_a, rows_b = self._rows[a], self._rows[b]
            if len(rows_b) < len(rows_a):
                rows_a, rows_b = rows_b, rows_a
            self._cache[key] = sum(1 for row in rows_a if row in rows_b)
        return self._cache[key]
