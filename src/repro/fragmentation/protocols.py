"""The common interface every fragmentation algorithm implements."""

from __future__ import annotations

import abc

from ..graph import DiGraph
from .base import Fragmentation


class Fragmenter(abc.ABC):
    """Abstract base class for fragmentation algorithms.

    A fragmenter is a configured, reusable object: construct it with its
    parameters, then call :meth:`fragment` on any graph.  Implementations must
    be deterministic for a fixed configuration (randomised choices take an
    explicit seed in the constructor), so experiments are reproducible.
    """

    #: Short machine-readable name, used in result metadata and reports.
    name: str = "fragmenter"

    @abc.abstractmethod
    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Fragment ``graph`` and return the resulting :class:`Fragmentation`.

        Implementations must produce an edge partition covering every edge of
        the graph (``Fragmentation.validate()`` must pass).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
