"""K-connectivity ("relevant nodes") fragmentation — the paper's rejected first idea.

Section 3 describes an initial attempt at a graph-theoretical fragmentation:
compute the k-connectivity of the graph, mark the nodes whose removal would
decrease it as *relevant*, and select disconnection sets among them.  The
paper abandons the idea because it is computation intensive and because cycles
through other fragments confuse the connectivity measure — but it remains the
natural ablation baseline, so we implement a practical variant:

1. Compute the relevant nodes (articulation points first — the cheap, exact
   case for k = 1 — falling back to the general k-connectivity test on small
   graphs).
2. Remove the relevant nodes; the remaining connected components become the
   cores of the fragments (merged greedily down to the requested count).
3. Each removed relevant node is attached to every adjacent core, which puts
   it into the disconnection sets of the fragments it borders.

On transportation graphs whose clusters are joined through cut nodes this
recovers the intended fragmentation; on densely interconnected graphs it
degrades exactly the way the paper predicts (few or no relevant nodes are
found and the result collapses towards a single fragment).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph, articulation_points, relevant_nodes, weakly_connected_components
from .base import Edge, Fragmentation
from .protocols import Fragmenter

Node = Hashable

# Above this node count the exact k-connectivity scan is far too slow (the
# cost that made the paper reject the approach); we then use articulation
# points only.
EXACT_KCONNECTIVITY_NODE_LIMIT = 60


class KConnectivityFragmenter(Fragmenter):
    """Fragmentation by removing "relevant" (connectivity-critical) nodes.

    Args:
        fragment_count: the number of fragments to aim for; components left
            after removing the relevant nodes are merged down to this count.
        exact_node_limit: graphs with more nodes than this use articulation
            points only (k = 1) instead of the full k-connectivity scan.
    """

    name = "k-connectivity"

    def __init__(
        self,
        fragment_count: int,
        *,
        exact_node_limit: int = EXACT_KCONNECTIVITY_NODE_LIMIT,
    ) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        self.fragment_count = fragment_count
        self.exact_node_limit = exact_node_limit

    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Fragment ``graph`` around its connectivity-critical nodes."""
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        critical = self._critical_nodes(graph)
        cores = self._component_cores(graph, critical)
        blocks = self._merge_cores(graph, cores)
        fragment_edges = self._assign_edges(graph, blocks, critical)
        populated = [edges for edges in fragment_edges if edges]
        if not populated:
            populated = [set(graph.edges())]
        return Fragmentation(
            graph,
            populated,
            algorithm=self.name,
            metadata={
                "relevant_nodes": sorted(critical, key=repr),
                "core_count": len(cores),
            },
        )

    # -------------------------------------------------------------- internals

    def _critical_nodes(self, graph: DiGraph) -> Set[Node]:
        critical = set(articulation_points(graph))
        if graph.node_count() <= self.exact_node_limit:
            critical |= relevant_nodes(graph, sample_pairs=64)
        return critical

    @staticmethod
    def _component_cores(graph: DiGraph, critical: Set[Node]) -> List[Set[Node]]:
        """Return the connected components of the graph minus the critical nodes."""
        trimmed = graph.copy()
        for node in critical:
            if trimmed.has_node(node):
                trimmed.remove_node(node)
        if trimmed.node_count() == 0:
            return []
        return weakly_connected_components(trimmed)

    def _merge_cores(self, graph: DiGraph, cores: List[Set[Node]]) -> List[Set[Node]]:
        """Merge the component cores down to at most ``fragment_count`` blocks."""
        if not cores:
            return [set(graph.nodes())]
        blocks = [set(core) for core in sorted(cores, key=len, reverse=True)]
        while len(blocks) > self.fragment_count:
            smallest = min(range(len(blocks)), key=lambda index: (len(blocks[index]), index))
            small_block = blocks.pop(smallest)
            # Merge into the block with the most adjacencies to it (fallback:
            # the smallest remaining block, to keep sizes balanced).
            best_index = None
            best_links = -1
            for index, block in enumerate(blocks):
                links = self._adjacency_count(graph, small_block, block)
                if links > best_links:
                    best_links = links
                    best_index = index
            if best_index is None:
                best_index = min(range(len(blocks)), key=lambda index: (len(blocks[index]), index))
            blocks[best_index] |= small_block
        return blocks

    @staticmethod
    def _adjacency_count(graph: DiGraph, left: Set[Node], right: Set[Node]) -> int:
        count = 0
        for node in left:
            for neighbour in graph.neighbors(node):
                if neighbour in right:
                    count += 1
        return count

    def _assign_edges(
        self,
        graph: DiGraph,
        blocks: List[Set[Node]],
        critical: Set[Node],
    ) -> List[Set[Edge]]:
        """Assign every edge to a block; critical nodes join their adjacent blocks."""
        block_of: Dict[Node, int] = {}
        for index, block in enumerate(blocks):
            for node in block:
                block_of[node] = index

        def nearest_block(node: Node) -> int:
            votes: Dict[int, int] = {}
            for neighbour in graph.neighbors(node):
                if neighbour in block_of:
                    votes[block_of[neighbour]] = votes.get(block_of[neighbour], 0) + 1
            if votes:
                return max(votes, key=lambda index: (votes[index], -index))
            return 0

        # Critical nodes (and any stragglers) adopt the block most of their
        # neighbours live in; edges follow their endpoints.
        resolved: Dict[Node, int] = dict(block_of)
        for node in graph.nodes():
            if node not in resolved:
                resolved[node] = nearest_block(node)

        fragment_edges: List[Set[Edge]] = [set() for _ in range(max(1, len(blocks)))]
        for source, target in graph.edges():
            si, ti = resolved[source], resolved[target]
            owner = si if si == ti else min(si, ti)
            fragment_edges[owner].add((source, target))
        return fragment_edges
