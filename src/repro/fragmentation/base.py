"""Core fragmentation data model.

A *fragmentation* of the base relation (graph) partitions the **edges** into
fragments ``G_1 .. G_n``; each fragment induces a node set ``V_i`` consisting
of the endpoints of its edges.  The *disconnection set* ``DS_ij`` is the node
intersection ``V_i ∩ V_j`` (Sec. 2.1 of the paper): the border nodes every
path from fragment ``i`` to fragment ``j`` must pass through.

This module provides the value objects (:class:`Fragment`,
:class:`Fragmentation`) that every fragmentation algorithm produces and every
downstream consumer (metrics, the disconnection-set engine, the parallel
simulator) reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..exceptions import FragmentationError, InvalidFragmentationError
from ..graph import DiGraph

Node = Hashable
Edge = Tuple[Node, Node]
FragmentId = int


def _canonical_pair(i: FragmentId, j: FragmentId) -> Tuple[FragmentId, FragmentId]:
    """Return the fragment-id pair with the smaller id first."""
    return (i, j) if i <= j else (j, i)


@dataclass(frozen=True)
class Fragment:
    """One fragment: an identifier plus the set of edges assigned to it.

    Attributes:
        fragment_id: dense integer identifier, also the index of the site that
            stores the fragment.
        edges: the directed edges assigned to this fragment.
    """

    fragment_id: FragmentId
    edges: FrozenSet[Edge]

    @property
    def nodes(self) -> FrozenSet[Node]:
        """The nodes incident to at least one edge of the fragment."""
        incident: Set[Node] = set()
        for source, target in self.edges:
            incident.add(source)
            incident.add(target)
        return frozenset(incident)

    def edge_count(self) -> int:
        """Return the number of directed edges in the fragment."""
        return len(self.edges)

    def node_count(self) -> int:
        """Return the number of nodes incident to the fragment."""
        return len(self.nodes)

    def undirected_edge_count(self) -> int:
        """Return the number of edges counting a symmetric pair once.

        The paper reports fragment sizes of undirected transportation graphs;
        this count matches that convention.
        """
        seen: Set[Tuple[Node, Node]] = set()
        for source, target in self.edges:
            key = (source, target) if repr(source) <= repr(target) else (target, source)
            seen.add(key)
        return len(seen)

    def contains_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is incident to an edge of this fragment."""
        return node in self.nodes

    def subgraph(self, graph: DiGraph) -> DiGraph:
        """Materialise this fragment as a graph, taking weights from ``graph``."""
        return graph.edge_subgraph(self.edges)


class Fragmentation:
    """A complete fragmentation of a graph into edge-disjoint fragments.

    The object is immutable after construction.  Disconnection sets are
    derived from the node overlaps of the fragments and cached.
    """

    def __init__(
        self,
        graph: DiGraph,
        fragment_edges: Iterable[Iterable[Edge]],
        *,
        algorithm: str = "unknown",
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        self._graph = graph
        fragments: List[Fragment] = []
        for index, edges in enumerate(fragment_edges):
            fragments.append(Fragment(fragment_id=index, edges=frozenset(edges)))
        if not fragments:
            raise FragmentationError("a fragmentation needs at least one fragment")
        self._fragments: Tuple[Fragment, ...] = tuple(fragments)
        self._algorithm = algorithm
        self._metadata: Dict[str, object] = dict(metadata or {})
        self._disconnection_sets = self._compute_disconnection_sets()

    # ------------------------------------------------------------ properties

    @property
    def graph(self) -> DiGraph:
        """The fragmented graph."""
        return self._graph

    @property
    def fragments(self) -> Tuple[Fragment, ...]:
        """The fragments, indexed by fragment id."""
        return self._fragments

    @property
    def algorithm(self) -> str:
        """Name of the algorithm that produced this fragmentation."""
        return self._algorithm

    @property
    def metadata(self) -> Dict[str, object]:
        """Algorithm-specific extra information (copy)."""
        return dict(self._metadata)

    def fragment_count(self) -> int:
        """Return the number of fragments."""
        return len(self._fragments)

    def fragment(self, fragment_id: FragmentId) -> Fragment:
        """Return the fragment with the given id.

        Raises:
            FragmentationError: if the id is out of range.
        """
        if not 0 <= fragment_id < len(self._fragments):
            raise FragmentationError(f"fragment id {fragment_id} out of range")
        return self._fragments[fragment_id]

    # ---------------------------------------------------- disconnection sets

    def _compute_disconnection_sets(self) -> Dict[Tuple[FragmentId, FragmentId], FrozenSet[Node]]:
        node_sets = [fragment.nodes for fragment in self._fragments]
        sets: Dict[Tuple[FragmentId, FragmentId], FrozenSet[Node]] = {}
        for i in range(len(node_sets)):
            for j in range(i + 1, len(node_sets)):
                overlap = node_sets[i] & node_sets[j]
                if overlap:
                    sets[(i, j)] = frozenset(overlap)
        return sets

    def disconnection_sets(self) -> Dict[Tuple[FragmentId, FragmentId], FrozenSet[Node]]:
        """Return all nonempty disconnection sets, keyed by the fragment-id pair."""
        return dict(self._disconnection_sets)

    def disconnection_set(self, i: FragmentId, j: FragmentId) -> FrozenSet[Node]:
        """Return ``DS_ij`` (possibly empty) for an unordered fragment pair."""
        return self._disconnection_sets.get(_canonical_pair(i, j), frozenset())

    def adjacent_fragments(self, fragment_id: FragmentId) -> List[FragmentId]:
        """Return the fragments sharing a nonempty disconnection set with ``fragment_id``."""
        adjacent: List[FragmentId] = []
        for (i, j) in self._disconnection_sets:
            if i == fragment_id:
                adjacent.append(j)
            elif j == fragment_id:
                adjacent.append(i)
        return sorted(adjacent)

    def border_nodes(self, fragment_id: FragmentId) -> FrozenSet[Node]:
        """Return every node of ``fragment_id`` shared with some other fragment."""
        border: Set[Node] = set()
        for (i, j), nodes in self._disconnection_sets.items():
            if fragment_id in (i, j):
                border |= nodes
        return frozenset(border)

    def interior_nodes(self, fragment_id: FragmentId) -> FrozenSet[Node]:
        """Return the nodes of ``fragment_id`` that belong to no other fragment."""
        return self.fragment(fragment_id).nodes - self.border_nodes(fragment_id)

    # -------------------------------------------------------------- mappings

    def fragments_of_node(self, node: Node) -> List[FragmentId]:
        """Return the ids of every fragment containing ``node``."""
        return [
            fragment.fragment_id
            for fragment in self._fragments
            if node in fragment.nodes
        ]

    def home_fragment(self, node: Node) -> FragmentId:
        """Return one fragment containing ``node`` (the lowest id).

        Raises:
            FragmentationError: if the node belongs to no fragment (isolated
                nodes are not covered by an edge partition).
        """
        owners = self.fragments_of_node(node)
        if not owners:
            raise FragmentationError(f"node {node!r} is not covered by any fragment")
        return owners[0]

    def edge_fragment(self, source: Node, target: Node) -> FragmentId:
        """Return the id of the fragment owning the edge ``source -> target``.

        Raises:
            FragmentationError: if no fragment owns the edge.
        """
        for fragment in self._fragments:
            if (source, target) in fragment.edges:
                return fragment.fragment_id
        raise FragmentationError(f"edge ({source!r}, {target!r}) is not covered by any fragment")

    def fragment_subgraph(self, fragment_id: FragmentId) -> DiGraph:
        """Materialise the subgraph of one fragment (weights from the base graph)."""
        return self.fragment(fragment_id).subgraph(self._graph)

    def fragment_sizes(self) -> List[int]:
        """Return the undirected edge counts of the fragments (the paper's ``F``)."""
        return [fragment.undirected_edge_count() for fragment in self._fragments]

    def disconnection_set_sizes(self) -> List[int]:
        """Return the sizes (node counts) of all nonempty disconnection sets."""
        return [len(nodes) for nodes in self._disconnection_sets.values()]

    # ------------------------------------------------------------ invariants

    def validate(self) -> None:
        """Check the structural invariants of an edge fragmentation.

        * every base-relation edge is assigned to exactly one fragment,
        * no fragment contains an edge that is not in the base relation,
        * no fragment is empty.

        Raises:
            InvalidFragmentationError: if an invariant is violated.
        """
        base_edges = set(self._graph.edges())
        seen: Dict[Edge, FragmentId] = {}
        for fragment in self._fragments:
            if not fragment.edges:
                raise InvalidFragmentationError(
                    f"fragment {fragment.fragment_id} is empty"
                )
            for edge in fragment.edges:
                if edge not in base_edges:
                    raise InvalidFragmentationError(
                        f"fragment {fragment.fragment_id} contains edge {edge!r} "
                        "that is not in the base relation"
                    )
                if edge in seen:
                    raise InvalidFragmentationError(
                        f"edge {edge!r} is assigned to fragments {seen[edge]} "
                        f"and {fragment.fragment_id}"
                    )
                seen[edge] = fragment.fragment_id
        missing = base_edges - set(seen)
        if missing:
            example = next(iter(missing))
            raise InvalidFragmentationError(
                f"{len(missing)} edge(s) are not assigned to any fragment, e.g. {example!r}"
            )

    def __repr__(self) -> str:
        return (
            f"Fragmentation(algorithm={self._algorithm!r}, fragments={self.fragment_count()}, "
            f"disconnection_sets={len(self._disconnection_sets)})"
        )


def fragmentation_from_node_blocks(
    graph: DiGraph,
    blocks: Iterable[Iterable[Node]],
    *,
    algorithm: str = "node-blocks",
    metadata: Optional[Mapping[str, object]] = None,
) -> Fragmentation:
    """Build an edge fragmentation from a partition of the **nodes**.

    Each edge is assigned to the block of its source node when both endpoints
    are in different blocks have the edge assigned to the block containing its
    lexicographically smaller endpoint's block id; edges inside a block stay
    in that block.  Cross-block edges are assigned to the lower-indexed block,
    which makes the two blocks overlap on the edge's other endpoint — exactly
    how disconnection sets arise from a node-clustering view of the graph
    (this is how the bond-energy algorithm's column blocks become fragments).
    """
    block_of: Dict[Node, int] = {}
    block_list: List[List[Node]] = []
    for index, block in enumerate(blocks):
        members = list(block)
        block_list.append(members)
        for node in members:
            if node in block_of:
                raise FragmentationError(f"node {node!r} appears in more than one block")
            block_of[node] = index
    uncovered = [node for node in graph.nodes() if node not in block_of]
    if uncovered:
        raise FragmentationError(
            f"{len(uncovered)} node(s) are not assigned to a block, e.g. {uncovered[0]!r}"
        )
    fragment_edges: List[List[Edge]] = [[] for _ in block_list]
    for source, target in graph.edges():
        source_block = block_of[source]
        target_block = block_of[target]
        owner = source_block if source_block == target_block else min(source_block, target_block)
        fragment_edges[owner].append((source, target))
    populated = [edges for edges in fragment_edges if edges]
    meta = dict(metadata or {})
    meta.setdefault("node_blocks", [sorted(block, key=repr) for block in block_list])
    return Fragmentation(graph, populated, algorithm=algorithm, metadata=meta)
