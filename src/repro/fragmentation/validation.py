"""Fragmentation validation and comparison helpers.

Beyond the structural invariants checked by
:meth:`repro.fragmentation.base.Fragmentation.validate`, the experiments need
to ask quality questions: does the fragmentation preserve all connectivity
information (a correctness requirement of the disconnection set approach), and
how closely does a discovered fragmentation match a known ground truth?
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

from ..exceptions import InvalidFragmentationError
from ..graph import DiGraph
from .base import Fragmentation

Node = Hashable


def assert_valid(fragmentation: Fragmentation) -> None:
    """Raise :class:`InvalidFragmentationError` unless the fragmentation is well formed."""
    fragmentation.validate()


def is_valid(fragmentation: Fragmentation) -> bool:
    """Return ``True`` when the fragmentation passes all structural checks."""
    try:
        fragmentation.validate()
    except InvalidFragmentationError:
        return False
    return True


def covers_all_nodes(fragmentation: Fragmentation) -> bool:
    """Return ``True`` if every non-isolated node of the graph appears in some fragment."""
    covered: Set[Node] = set()
    for fragment in fragmentation.fragments:
        covered |= fragment.nodes
    non_isolated = {
        node
        for node in fragmentation.graph.nodes()
        if fragmentation.graph.degree(node) > 0
    }
    return non_isolated <= covered


def edge_preservation(fragmentation: Fragmentation) -> float:
    """Return the fraction of base edges present in exactly one fragment (1.0 = lossless)."""
    base_edges = set(fragmentation.graph.edges())
    if not base_edges:
        return 1.0
    assigned: Dict[Tuple[Node, Node], int] = {}
    for fragment in fragmentation.fragments:
        for edge in fragment.edges:
            assigned[edge] = assigned.get(edge, 0) + 1
    exactly_once = sum(1 for edge in base_edges if assigned.get(edge, 0) == 1)
    return exactly_once / len(base_edges)


def cluster_agreement(fragmentation: Fragmentation, clusters: Sequence[Set[Node]]) -> float:
    """Return how well fragments align with ground-truth clusters (pair-counting accuracy).

    For every pair of non-border nodes that share a ground-truth cluster we
    check whether they also share a fragment, and vice versa; the score is the
    fraction of agreeing pairs (a symmetric Rand-index style measure).  Border
    nodes legitimately belong to several fragments and are excluded.
    """
    cluster_of: Dict[Node, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            cluster_of[node] = index
    # A node's fragment signature: the sorted tuple of fragments containing it.
    fragment_of: Dict[Node, Tuple[int, ...]] = {}
    for node in fragmentation.graph.nodes():
        owners = tuple(fragmentation.fragments_of_node(node))
        if len(owners) == 1:
            fragment_of[node] = owners
    nodes = [node for node in fragment_of if node in cluster_of]
    if len(nodes) < 2:
        return 1.0
    agree = 0
    total = 0
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            same_cluster = cluster_of[a] == cluster_of[b]
            same_fragment = fragment_of[a] == fragment_of[b]
            agree += 1 if same_cluster == same_fragment else 0
            total += 1
    return agree / total if total else 1.0


def disconnection_set_correctness(fragmentation: Fragmentation) -> bool:
    """Check the keyhole property: removing DS_ij disconnects fragment i from fragment j.

    For every nonempty disconnection set ``DS_ij`` this verifies that, in the
    graph restricted to the union of the two fragments, every path between an
    interior node of ``i`` and an interior node of ``j`` passes through
    ``DS_ij``.  This is what makes the per-fragment searches with
    disconnection-set selections *correct and precise* (Sec. 2.1, footnote 2).
    """
    from ..graph import is_reachable

    for (i, j), border in fragmentation.disconnection_sets().items():
        union_nodes = fragmentation.fragment(i).nodes | fragmentation.fragment(j).nodes
        union_graph = fragmentation.graph.subgraph(union_nodes)
        for node in border:
            if union_graph.has_node(node):
                union_graph.remove_node(node)
        interior_i = fragmentation.fragment(i).nodes - fragmentation.fragment(j).nodes
        interior_j = fragmentation.fragment(j).nodes - fragmentation.fragment(i).nodes
        # Only check edges that exist in the two fragments' own subgraphs; a
        # path through a *third* fragment is legitimately not covered by DS_ij.
        for source in interior_i:
            if not union_graph.has_node(source):
                continue
            for target in interior_j:
                if not union_graph.has_node(target):
                    continue
                if is_reachable(union_graph, source, target, undirected=False):
                    # Reachability that avoids DS_ij must stem from edges of a
                    # third fragment that happen to connect shared nodes; when
                    # the union contains only edges of fragments i and j this
                    # is a genuine violation.
                    if _uses_only_fragments(union_graph, fragmentation, {i, j}, source, target):
                        return False
    return True


def _uses_only_fragments(
    union_graph: DiGraph,
    fragmentation: Fragmentation,
    allowed: Set[int],
    source: Node,
    target: Node,
) -> bool:
    """Return True if some path from source to target uses only edges of ``allowed`` fragments."""
    from collections import deque

    allowed_edges: Set[Tuple[Node, Node]] = set()
    for fragment_id in allowed:
        allowed_edges |= set(fragmentation.fragment(fragment_id).edges)
    visited = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for successor in union_graph.successors(node):
            if (node, successor) not in allowed_edges:
                continue
            if successor == target:
                return True
            if successor not in visited:
                visited.add(successor)
                queue.append(successor)
    return False
