"""Fragmentation advisor: pick an algorithm and fragment count for a graph.

The paper closes with the observation that "it may well be the case that the
actual algorithm to be used for data fragmentation depends on the type of
graph that is considered, and on the specific characteristics of the
underlying database system" (Sec. 5).  The advisor operationalises that: it
inspects structural properties of the graph (cluster separability, coordinate
availability, elongation, connectivity) and the deployment constraints
(processor count, whether acyclicity is required), optionally trial-runs the
candidate algorithms, and recommends a configured fragmenter.

The advisor is a heuristic convenience, not part of the paper's contribution;
it exists so that downstream users get a sensible default without reading
Sec. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph import DiGraph, articulation_points, bounding_box, summarize
from .base import Fragmentation
from .bond_energy import BondEnergyFragmenter
from .center_based import CenterBasedFragmenter
from .linear import LinearFragmenter
from .metrics import FragmentationCharacteristics, characterize
from .protocols import Fragmenter


@dataclass(frozen=True)
class AdvisorConstraints:
    """Deployment constraints influencing the recommendation.

    Attributes:
        processor_count: available processors; used as the fragment count.
        require_acyclic: the fragmentation graph must be loosely connected
            (forces the linear algorithm unless the trial run finds another
            acyclic candidate).
        prioritize: which characteristic matters most for the deployment:
            ``"disconnection_sets"`` (default, the paper's own expectation),
            ``"balance"`` or ``"acyclicity"``.
        allow_trial_runs: when ``True`` the advisor actually runs the
            candidate algorithms on the graph and scores the results instead
            of relying on structural heuristics alone.
    """

    processor_count: int = 4
    require_acyclic: bool = False
    prioritize: str = "disconnection_sets"
    allow_trial_runs: bool = True


@dataclass
class Recommendation:
    """The advisor's output.

    Attributes:
        fragmenter: the configured fragmenter to use.
        fragment_count: the recommended number of fragments.
        rationale: human-readable reasons, one per line.
        trial_characteristics: per-candidate characteristics when trial runs
            were allowed (empty otherwise).
    """

    fragmenter: Fragmenter
    fragment_count: int
    rationale: List[str] = field(default_factory=list)
    trial_characteristics: Dict[str, FragmentationCharacteristics] = field(default_factory=dict)

    def fragment(self, graph: DiGraph) -> Fragmentation:
        """Apply the recommended fragmenter to ``graph``."""
        return self.fragmenter.fragment(graph)


def _elongation(graph: DiGraph) -> float:
    """Return the aspect ratio of the coordinate bounding box (1.0 when unknown)."""
    if not graph.has_coordinates():
        return 1.0
    low, high = bounding_box(graph.coordinates().values())
    width = max(high.x - low.x, 1e-9)
    height = max(high.y - low.y, 1e-9)
    return max(width, height) / max(min(width, height), 1e-9)


def _score(characteristics: FragmentationCharacteristics, prioritize: str) -> float:
    """Return a lower-is-better score for a trial fragmentation."""
    ds = characteristics.average_disconnection_set_size
    balance = characteristics.fragment_size_deviation / max(characteristics.average_fragment_size, 1e-9)
    cycles = float(characteristics.cycle_count)
    if prioritize == "balance":
        return balance * 10.0 + ds * 0.1 + cycles * 0.5
    if prioritize == "acyclicity":
        return cycles * 100.0 + ds * 0.5 + balance
    # Default: small disconnection sets first (the paper's own bet).
    return ds + balance * 2.0 + cycles * 0.5


def recommend(graph: DiGraph, constraints: Optional[AdvisorConstraints] = None) -> Recommendation:
    """Recommend a fragmentation algorithm and fragment count for ``graph``."""
    constraints = constraints or AdvisorConstraints()
    summary = summarize(graph)
    fragment_count = max(1, min(constraints.processor_count, max(1, summary.node_count // 2)))
    rationale: List[str] = [
        f"graph: {summary.node_count} nodes, {summary.undirected_edge_count} undirected edges, "
        f"diameter {summary.diameter}",
        f"fragment count {fragment_count} (from {constraints.processor_count} processors)",
    ]

    candidates: Dict[str, Fragmenter] = {}
    if graph.has_coordinates():
        candidates["linear"] = LinearFragmenter(fragment_count)
        candidates["center-based-distributed"] = CenterBasedFragmenter(
            fragment_count, center_selection="distributed"
        )
    else:
        rationale.append("no coordinates: linear sweep unavailable, distributed centers fall back to hop distances")
        candidates["center-based-distributed"] = CenterBasedFragmenter(
            fragment_count, center_selection="distributed"
        )
    candidates["bond-energy"] = BondEnergyFragmenter(fragment_count)

    if constraints.require_acyclic and "linear" in candidates:
        rationale.append("acyclic fragmentation graph required: linear fragmentation guarantees it")
        return Recommendation(
            fragmenter=candidates["linear"], fragment_count=fragment_count, rationale=rationale
        )

    # Structural shortcuts when trial runs are not allowed.
    if not constraints.allow_trial_runs:
        cut_nodes = articulation_points(graph)
        if len(cut_nodes) >= fragment_count - 1:
            rationale.append(
                f"{len(cut_nodes)} articulation points suggest natural clusters: bond-energy "
                "will find small disconnection sets"
            )
            return Recommendation(
                fragmenter=candidates["bond-energy"], fragment_count=fragment_count, rationale=rationale
            )
        if graph.has_coordinates() and _elongation(graph) >= 3.0:
            rationale.append("strongly elongated layout: a coordinate sweep cuts thin cross-sections")
            return Recommendation(
                fragmenter=candidates["linear"], fragment_count=fragment_count, rationale=rationale
            )
        rationale.append("no strong structural signal: center-based fragmentation balances the workload")
        return Recommendation(
            fragmenter=candidates["center-based-distributed"],
            fragment_count=fragment_count,
            rationale=rationale,
        )

    # Trial runs: fragment with every candidate and score the outcomes.
    trial_characteristics: Dict[str, FragmentationCharacteristics] = {}
    scores: Dict[str, float] = {}
    for name, fragmenter in candidates.items():
        fragmentation = fragmenter.fragment(graph)
        characteristics = characterize(fragmentation, include_diameter=False)
        trial_characteristics[name] = characteristics
        if constraints.require_acyclic and not characteristics.loosely_connected:
            continue
        scores[name] = _score(characteristics, constraints.prioritize)
    if not scores:
        # Nothing satisfied the acyclicity constraint structurally: fall back to linear.
        best_name = "linear" if "linear" in candidates else next(iter(candidates))
    else:
        best_name = min(scores, key=scores.get)  # type: ignore[arg-type]
    best = trial_characteristics.get(best_name)
    if best is not None:
        rationale.append(
            f"trial runs (priority: {constraints.prioritize}): {best_name} wins with "
            f"DS={best.average_disconnection_set_size:.1f}, AF={best.fragment_size_deviation:.1f}, "
            f"cycles={best.cycle_count}"
        )
    return Recommendation(
        fragmenter=candidates[best_name],
        fragment_count=fragment_count,
        rationale=rationale,
        trial_characteristics=trial_characteristics,
    )
