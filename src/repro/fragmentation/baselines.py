"""Baseline fragmenters the paper's algorithms are compared against.

The paper's evaluation compares its three algorithms with each other; for the
benchmarks and the ablation study we additionally provide the trivial
fragmentations a parallel database would fall back on without any
graph-awareness:

* :class:`HashFragmenter` — hash-partition the edges over the sites (the
  standard horizontal fragmentation of a parallel DBMS); disconnection sets
  degenerate to almost every node.
* :class:`RandomNodeFragmenter` — randomly partition the nodes into equal
  groups and derive fragments from the node blocks.
* :class:`GroundTruthFragmenter` — use the generator's known clusters
  (available only for synthetic transportation graphs); this is the oracle the
  heuristics are measured against.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, List, Optional, Sequence, Set

from ..exceptions import FragmenterConfigurationError
from ..graph import DiGraph
from .base import Edge, Fragmentation, fragmentation_from_node_blocks
from .protocols import Fragmenter

Node = Hashable


class HashFragmenter(Fragmenter):
    """Hash-partition the edges over ``fragment_count`` sites.

    Each edge goes to the fragment ``hash((source, target)) mod n``.  This is
    what a relational DBMS does when it knows nothing about the graph
    structure; it produces maximal disconnection sets and serves as the
    worst-case baseline for the disconnection-set metrics.
    """

    name = "hash"

    def __init__(self, fragment_count: int) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        self.fragment_count = fragment_count

    def fragment(self, graph: DiGraph) -> Fragmentation:
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        buckets: List[Set[Edge]] = [set() for _ in range(self.fragment_count)]
        for source, target in graph.edges():
            # repr-based hashing keeps the assignment stable across Python runs
            # (the built-in hash of str is salted per process).
            bucket = hash((repr(source), repr(target))) % self.fragment_count
            buckets[bucket].add((source, target))
        populated = [bucket for bucket in buckets if bucket]
        return Fragmentation(graph, populated, algorithm=self.name)


class RandomNodeFragmenter(Fragmenter):
    """Randomly partition the nodes into equal-sized blocks."""

    name = "random-nodes"

    def __init__(self, fragment_count: int, *, seed: int = 0) -> None:
        if fragment_count <= 0:
            raise FragmenterConfigurationError("fragment_count must be positive")
        self.fragment_count = fragment_count
        self.seed = seed

    def fragment(self, graph: DiGraph) -> Fragmentation:
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        rng = random.Random(self.seed)
        nodes = sorted(graph.nodes(), key=repr)
        rng.shuffle(nodes)
        count = min(self.fragment_count, len(nodes))
        blocks: List[List[Node]] = [[] for _ in range(count)]
        for index, node in enumerate(nodes):
            blocks[index % count].append(node)
        return fragmentation_from_node_blocks(graph, blocks, algorithm=self.name)


class GroundTruthFragmenter(Fragmenter):
    """Fragment along the generator's known clusters (oracle baseline).

    Args:
        clusters: the ground-truth node clusters, e.g.
            :attr:`repro.generators.transportation.TransportationGraph.clusters`.
    """

    name = "ground-truth"

    def __init__(self, clusters: Sequence[Iterable[Node]]) -> None:
        if not clusters:
            raise FragmenterConfigurationError("clusters must not be empty")
        self.clusters = [set(cluster) for cluster in clusters]

    def fragment(self, graph: DiGraph) -> Fragmentation:
        if graph.edge_count() == 0:
            raise FragmenterConfigurationError("cannot fragment a graph with no edges")
        covered = set().union(*self.clusters) if self.clusters else set()
        extra = [node for node in graph.nodes() if node not in covered]
        blocks = [set(cluster) for cluster in self.clusters]
        if extra:
            blocks[0] |= set(extra)
        return fragmentation_from_node_blocks(graph, blocks, algorithm=self.name)
