"""Graph substrate: directed weighted graphs, metrics, traversals, paths.

This package provides everything the fragmentation algorithms and the
disconnection set engine need from graph theory: the mutable
:class:`~repro.graph.digraph.DiGraph` container, its immutable array-backed
counterpart :class:`~repro.graph.compact.CompactGraph` (the substrate of the
closure kernels), traversals and components, shortest paths, diameters, the
Hoede-style status score used for center selection, and k-connectivity
analysis.
"""

from .coordinates import (
    Point,
    bounding_box,
    centroid,
    euclidean_distance,
    nodes_sorted_by_x,
    pairwise_distances,
    spread_out_selection,
)
from .compact import (
    DEFAULT_OVERLAY_THRESHOLD,
    ENV_OVERLAY_THRESHOLD,
    OVERLAY_COMPACTIONS_COUNTER,
    OVERLAY_DEPTH_GAUGE,
    CompactDelta,
    CompactGraph,
    merge_overlay_metrics,
    overlay_compaction_counts,
    overlay_threshold_default,
)
from .connectivity import (
    articulation_points,
    k_connectivity,
    relevant_nodes,
    vertex_disjoint_path_count,
)
from .digraph import DiGraph
from .io import from_dict, from_edge_list, load_json, save_json, to_dict, to_edge_list, to_relation_rows
from .metrics import (
    GraphSummary,
    average_degree,
    clustering_ratio,
    coefficient_of_variation,
    degree_histogram,
    diameter,
    estimated_seminaive_iterations,
    mean,
    mean_absolute_deviation,
    standard_deviation,
    summarize,
)
from .shortest_path import (
    bellman_ford,
    dijkstra,
    eccentricity,
    floyd_warshall,
    hop_diameter,
    multi_source_shortest_paths,
    reconstruct_path,
    shortest_path,
    shortest_path_length,
    single_source_shortest_paths,
)
from .status import rank_by_status, status_score, status_scores, top_candidates
from .traversal import (
    bfs_levels,
    bfs_order,
    dfs_order,
    has_cycle,
    is_reachable,
    is_weakly_connected,
    reachable_set,
    strongly_connected_components,
    topological_sort,
    undirected_cycle_count,
    weakly_connected_components,
)

__all__ = [
    "DEFAULT_OVERLAY_THRESHOLD",
    "ENV_OVERLAY_THRESHOLD",
    "OVERLAY_COMPACTIONS_COUNTER",
    "OVERLAY_DEPTH_GAUGE",
    "CompactDelta",
    "CompactGraph",
    "DiGraph",
    "Point",
    "GraphSummary",
    "articulation_points",
    "average_degree",
    "bellman_ford",
    "bfs_levels",
    "bfs_order",
    "bounding_box",
    "centroid",
    "clustering_ratio",
    "coefficient_of_variation",
    "degree_histogram",
    "dfs_order",
    "diameter",
    "dijkstra",
    "eccentricity",
    "estimated_seminaive_iterations",
    "euclidean_distance",
    "floyd_warshall",
    "from_dict",
    "from_edge_list",
    "has_cycle",
    "hop_diameter",
    "is_reachable",
    "is_weakly_connected",
    "k_connectivity",
    "load_json",
    "mean",
    "mean_absolute_deviation",
    "merge_overlay_metrics",
    "multi_source_shortest_paths",
    "nodes_sorted_by_x",
    "overlay_compaction_counts",
    "overlay_threshold_default",
    "pairwise_distances",
    "rank_by_status",
    "reachable_set",
    "reconstruct_path",
    "relevant_nodes",
    "save_json",
    "shortest_path",
    "shortest_path_length",
    "single_source_shortest_paths",
    "spread_out_selection",
    "standard_deviation",
    "status_score",
    "status_scores",
    "strongly_connected_components",
    "summarize",
    "to_dict",
    "to_edge_list",
    "to_relation_rows",
    "top_candidates",
    "topological_sort",
    "undirected_cycle_count",
    "vertex_disjoint_path_count",
    "weakly_connected_components",
]
