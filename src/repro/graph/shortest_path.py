"""Shortest-path algorithms on :class:`~repro.graph.digraph.DiGraph`.

The disconnection set approach needs shortest paths at three places:

* precomputing the *complementary information* — shortest paths among the
  border nodes of a fragment (all-pairs within a fragment, restricted to the
  disconnection sets),
* evaluating the per-fragment subqueries ("find a path from the Dutch border
  to the southern German border"),
* the centralised baseline the parallel evaluation is compared against.

We provide Dijkstra (single source), bidirectional queries, Bellman-Ford (for
completeness and negative-weight detection), Floyd-Warshall (dense all-pairs),
and path reconstruction helpers.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..exceptions import DisconnectedError, NegativeWeightError, NodeNotFoundError
from .digraph import DiGraph

Node = Hashable

INFINITY = math.inf


def dijkstra(
    graph: DiGraph,
    source: Node,
    *,
    targets: Optional[Iterable[Node]] = None,
) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Run Dijkstra's algorithm from ``source``.

    Args:
        graph: the graph; every edge weight must be non-negative.
        source: the start node.
        targets: optional set of nodes; when given, the search stops as soon
            as all of them have been settled (an optimisation used when only
            the distances to a disconnection set are needed).

    Returns:
        A pair ``(distances, predecessors)``.  ``distances`` maps every
        settled node to its distance from ``source``; ``predecessors`` maps a
        node to the previous node on one shortest path.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
        NegativeWeightError: if a negative edge weight is encountered.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    remaining = set(targets) if targets is not None else None
    distances: Dict[Node, float] = {}
    predecessors: Dict[Node, Node] = {}
    counter = 0
    heap: List[Tuple[float, int, Node]] = [(0.0, counter, source)]
    tentative: Dict[Node, float] = {source: 0.0}
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = distance
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for successor, weight in graph.successor_items(node):
            if weight < 0:
                raise NegativeWeightError(
                    f"edge ({node!r}, {successor!r}) has negative weight {weight}"
                )
            candidate = distance + weight
            if successor not in distances and candidate < tentative.get(successor, INFINITY):
                tentative[successor] = candidate
                predecessors[successor] = node
                counter += 1
                heapq.heappush(heap, (candidate, counter, successor))
    return distances, predecessors


def shortest_path_length(graph: DiGraph, source: Node, target: Node) -> float:
    """Return the length of the shortest path from ``source`` to ``target``.

    Raises:
        DisconnectedError: if ``target`` is unreachable from ``source``.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    distances, _ = dijkstra(graph, source, targets=[target])
    if target not in distances:
        raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
    return distances[target]


def shortest_path(graph: DiGraph, source: Node, target: Node) -> Tuple[float, List[Node]]:
    """Return ``(length, node_sequence)`` for a shortest path from ``source`` to ``target``.

    Raises:
        DisconnectedError: if ``target`` is unreachable from ``source``.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    distances, predecessors = dijkstra(graph, source, targets=[target])
    if target not in distances:
        raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
    return distances[target], reconstruct_path(predecessors, source, target)


def reconstruct_path(predecessors: Dict[Node, Node], source: Node, target: Node) -> List[Node]:
    """Rebuild the node sequence of a path from a predecessor map."""
    path = [target]
    node = target
    while node != source:
        node = predecessors[node]
        path.append(node)
    path.reverse()
    return path


def single_source_shortest_paths(graph: DiGraph, source: Node) -> Dict[Node, float]:
    """Return the distance from ``source`` to every reachable node."""
    distances, _ = dijkstra(graph, source)
    return distances


def multi_source_shortest_paths(graph: DiGraph, sources: Iterable[Node]) -> Dict[Node, float]:
    """Return, for every node, the distance from the *nearest* of ``sources``.

    Implemented as a single Dijkstra run with all sources seeded at distance
    zero.  Used by the disconnection-set local queries, where the search
    starts from every border node of the entry disconnection set at once.
    """
    source_list = [s for s in sources if graph.has_node(s)]
    distances: Dict[Node, float] = {}
    tentative: Dict[Node, float] = {}
    heap: List[Tuple[float, int, Node]] = []
    counter = 0
    for source in source_list:
        tentative[source] = 0.0
        heap.append((0.0, counter, source))
        counter += 1
    heapq.heapify(heap)
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = distance
        for successor, weight in graph.successor_items(node):
            if weight < 0:
                raise NegativeWeightError(
                    f"edge ({node!r}, {successor!r}) has negative weight {weight}"
                )
            candidate = distance + weight
            if successor not in distances and candidate < tentative.get(successor, INFINITY):
                tentative[successor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, successor))
    return distances


def bellman_ford(graph: DiGraph, source: Node) -> Tuple[Dict[Node, float], Dict[Node, Node]]:
    """Run Bellman-Ford from ``source``; supports negative edge weights.

    Returns:
        ``(distances, predecessors)`` over reachable nodes.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
        NegativeWeightError: if a negative cycle is reachable from ``source``.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[Node, float] = {source: 0.0}
    predecessors: Dict[Node, Node] = {}
    edges = graph.weighted_edges()
    for _ in range(max(0, graph.node_count() - 1)):
        changed = False
        for u, v, weight in edges:
            if u in distances and distances[u] + weight < distances.get(v, INFINITY):
                distances[v] = distances[u] + weight
                predecessors[v] = u
                changed = True
        if not changed:
            break
    for u, v, weight in edges:
        if u in distances and distances[u] + weight < distances.get(v, INFINITY) - 1e-12:
            raise NegativeWeightError("graph contains a negative cycle reachable from the source")
    return distances, predecessors


def floyd_warshall(graph: DiGraph) -> Dict[Node, Dict[Node, float]]:
    """Return all-pairs shortest path lengths (dense dynamic programming).

    Suitable for the small graphs used in tests and for complementary
    information over small fragments; the engine itself prefers per-border
    Dijkstra runs which scale better on sparse fragments.
    """
    nodes = graph.nodes()
    dist: Dict[Node, Dict[Node, float]] = {u: {v: INFINITY for v in nodes} for u in nodes}
    for node in nodes:
        dist[node][node] = 0.0
    for u, v, weight in graph.weighted_edges():
        if weight < dist[u][v]:
            dist[u][v] = weight
    for k in nodes:
        dist_k = dist[k]
        for i in nodes:
            dist_i = dist[i]
            via = dist_i[k]
            if via == INFINITY:
                continue
            for j in nodes:
                candidate = via + dist_k[j]
                if candidate < dist_i[j]:
                    dist_i[j] = candidate
    return dist


def eccentricity(graph: DiGraph, node: Node, *, undirected: bool = True) -> int:
    """Return the maximum hop distance from ``node`` to any reachable node.

    The paper's workload model uses the *diameter* of a fragment (the number
    of edges on its longest shortest path) as the driver of the number of
    semi-naive iterations; eccentricities are its per-node ingredient.
    """
    from .traversal import bfs_levels

    levels = bfs_levels(graph, node, undirected=undirected)
    return max(levels.values()) if levels else 0


def hop_diameter(graph: DiGraph, *, undirected: bool = True) -> int:
    """Return the diameter in hops over reachable pairs (0 for empty graphs).

    Unreachable pairs are ignored, matching the intuition that the diameter of
    a fragment is the longest path *within* the fragment.
    """
    best = 0
    for node in graph.nodes():
        best = max(best, eccentricity(graph, node, undirected=undirected))
    return best
