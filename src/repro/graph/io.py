"""Serialisation of graphs to and from edge lists and JSON documents.

The base relation of the disconnection set approach is, at the database level,
just a table of ``(source, target, weight)`` tuples; these helpers move a
:class:`~repro.graph.digraph.DiGraph` between that tabular form, JSON files on
disk, and the in-memory object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Tuple, Union

from .coordinates import Point
from .digraph import DiGraph

Node = Hashable
PathLike = Union[str, Path]


def to_edge_list(graph: DiGraph) -> List[Tuple[Node, Node, float]]:
    """Return the graph as a sorted list of ``(source, target, weight)`` tuples."""
    return sorted(graph.weighted_edges(), key=lambda edge: (repr(edge[0]), repr(edge[1])))


def from_edge_list(
    edges: Iterable[Tuple[Node, Node] | Tuple[Node, Node, float]],
    *,
    symmetric: bool = False,
) -> DiGraph:
    """Build a graph from ``(source, target[, weight])`` tuples.

    Args:
        edges: the edge tuples; a missing weight defaults to 1.0.
        symmetric: when ``True`` every edge is added in both directions,
            which is the natural reading of an undirected transportation
            network.
    """
    graph = DiGraph()
    for edge in edges:
        if len(edge) == 3:
            source, target, weight = edge  # type: ignore[misc]
        else:
            source, target = edge  # type: ignore[misc]
            weight = 1.0
        if symmetric:
            graph.add_symmetric_edge(source, target, weight)
        else:
            graph.add_edge(source, target, weight)
    return graph


def to_dict(graph: DiGraph) -> Dict[str, object]:
    """Return a JSON-serialisable dictionary describing the graph.

    Node identities are preserved as-is when they are strings or integers and
    stringified otherwise.
    """
    def encode(node: Node) -> object:
        return node if isinstance(node, (str, int)) else repr(node)

    return {
        "nodes": [encode(node) for node in graph.nodes()],
        "edges": [
            {"source": encode(s), "target": encode(t), "weight": w}
            for s, t, w in graph.weighted_edges()
        ],
        "coordinates": {
            str(encode(node)): [point.x, point.y] for node, point in graph.coordinates().items()
        },
    }


def from_dict(document: Dict[str, object]) -> DiGraph:
    """Rebuild a graph from the dictionary produced by :func:`to_dict`.

    Integer-looking string node names are restored to integers so that a
    round trip through JSON (whose object keys are always strings) preserves
    integer node identities.
    """
    def decode(value: object) -> Node:
        if isinstance(value, str) and value.lstrip("-").isdigit():
            return int(value)
        return value  # type: ignore[return-value]

    graph = DiGraph()
    for node in document.get("nodes", []):  # type: ignore[union-attr]
        graph.add_node(decode(node))
    for edge in document.get("edges", []):  # type: ignore[union-attr]
        graph.add_edge(decode(edge["source"]), decode(edge["target"]), float(edge.get("weight", 1.0)))
    for name, xy in document.get("coordinates", {}).items():  # type: ignore[union-attr]
        graph.set_coordinate(decode(name), Point(float(xy[0]), float(xy[1])))
    return graph


def save_json(graph: DiGraph, path: PathLike) -> None:
    """Write the graph to ``path`` as a JSON document."""
    Path(path).write_text(json.dumps(to_dict(graph), indent=2, sort_keys=True))


def load_json(path: PathLike) -> DiGraph:
    """Read a graph previously written by :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))


def to_relation_rows(graph: DiGraph) -> List[Tuple[Node, Node, float]]:
    """Return the rows of the base relation R(source, target, weight).

    This is the tabular form consumed by :mod:`repro.relational`; identical to
    :func:`to_edge_list` but named for its database role.
    """
    return to_edge_list(graph)
