"""Node coordinates and geometric helpers.

The paper's linear fragmentation algorithm and the "distributed centers"
refinement of the center-based algorithm both assume that every node carries a
topological coordinate pair ``(x, y)`` (Sec. 3.3).  The random graph generator
of Sec. 4.1 likewise places nodes on a plane and biases edge creation towards
geometrically close pairs.  This module provides the small amount of geometry
the rest of the package needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Sequence, Tuple

Node = Hashable


@dataclass(frozen=True, order=True)
class Point:
    """A point in the plane, used as a node coordinate.

    Ordering is lexicographic on ``(x, y)``; this matches the paper's use of
    the *smallest x-coordinates* to pick the start nodes of the linear
    fragmentation sweep.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point translated by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return the coordinates as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def euclidean_distance(a: Point | Tuple[float, float], b: Point | Tuple[float, float]) -> float:
    """Return the Euclidean distance between two points or ``(x, y)`` tuples."""
    ax, ay = (a.x, a.y) if isinstance(a, Point) else (a[0], a[1])
    bx, by = (b.x, b.y) if isinstance(b, Point) else (b[0], b[1])
    return math.hypot(ax - bx, ay - by)


def centroid(points: Iterable[Point]) -> Point:
    """Return the centroid (arithmetic mean) of ``points``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    xs, ys, count = 0.0, 0.0, 0
    for point in points:
        xs += point.x
        ys += point.y
        count += 1
    if count == 0:
        raise ValueError("cannot compute the centroid of an empty point set")
    return Point(xs / count, ys / count)


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """Return the axis-aligned bounding box of ``points`` as ``(lower_left, upper_right)``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("cannot compute the bounding box of an empty point set") from None
    min_x = max_x = first.x
    min_y = max_y = first.y
    for point in iterator:
        min_x = min(min_x, point.x)
        max_x = max(max_x, point.x)
        min_y = min(min_y, point.y)
        max_y = max(max_y, point.y)
    return Point(min_x, min_y), Point(max_x, max_y)


def pairwise_distances(coordinates: Mapping[Node, Point]) -> Dict[Tuple[Node, Node], float]:
    """Return the Euclidean distance for every unordered pair of nodes.

    The result maps each ordered pair ``(u, v)`` with ``u != v`` to the
    distance between their coordinates; both orders are present so lookups do
    not need to canonicalise the pair.
    """
    nodes = list(coordinates)
    distances: Dict[Tuple[Node, Node], float] = {}
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            d = coordinates[u].distance_to(coordinates[v])
            distances[(u, v)] = d
            distances[(v, u)] = d
    return distances


def nodes_sorted_by_x(coordinates: Mapping[Node, Point]) -> Sequence[Node]:
    """Return the nodes ordered by increasing x-coordinate (ties broken by y).

    This is the ordering the linear fragmentation algorithm uses to select its
    start nodes ("s nodes with smallest x-coordinates", Fig. 7 of the paper).
    """
    return sorted(coordinates, key=lambda node: (coordinates[node].x, coordinates[node].y, repr(node)))


def spread_out_selection(
    coordinates: Mapping[Node, Point],
    candidates: Sequence[Node],
    count: int,
) -> list:
    """Select ``count`` candidates that are mutually far apart.

    This implements the "distributed centers" optimisation of Sec. 4.2.1: the
    centers of the center-based fragmentation are no longer picked at random
    from the candidate pool but chosen so that they are not too close
    together.  We use a greedy farthest-point heuristic: the first pick is the
    candidate farthest from the centroid of all candidates, and each
    subsequent pick maximises the minimum distance to the already selected
    centers.

    Args:
        coordinates: coordinates for (at least) every candidate node.
        candidates: the candidate pool, ordered by preference; ties in the
            geometric criterion are broken by this order so the selection is
            deterministic.
        count: how many nodes to select.

    Returns:
        A list of ``min(count, len(candidates))`` selected nodes.

    Raises:
        MissingCoordinatesError: if a candidate has no coordinate.
    """
    from ..exceptions import MissingCoordinatesError

    if count <= 0 or not candidates:
        return []
    missing = [node for node in candidates if node not in coordinates]
    if missing:
        raise MissingCoordinatesError(
            f"cannot spread out centers: {len(missing)} candidate(s) have no coordinates, e.g. {missing[0]!r}"
        )
    pool = list(candidates)
    center_of_mass = centroid(coordinates[node] for node in pool)
    # Farthest from the centroid first, preferring earlier candidates on ties.
    first = max(
        range(len(pool)),
        key=lambda idx: (coordinates[pool[idx]].distance_to(center_of_mass), -idx),
    )
    selected = [pool.pop(first)]
    while pool and len(selected) < count:
        best_idx = max(
            range(len(pool)),
            key=lambda idx: (
                min(coordinates[pool[idx]].distance_to(coordinates[s]) for s in selected),
                -idx,
            ),
        )
        selected.append(pool.pop(best_idx))
    return selected
