"""A weighted directed graph with optional node coordinates.

The paper models the base relation ``R`` as a directed graph where each tuple
is an edge, possibly with an associated weight (Sec. 2.1, footnote 1).  This
module provides that graph as a first-class object: adjacency is kept in both
directions so that fragmentation algorithms (which grow fragments by following
edges in either direction) and query evaluation (which follows edges forward)
are both efficient.

Transportation networks are usually traversable in both directions, so the
generators in :mod:`repro.generators` produce symmetric edge sets; the data
structure itself is strictly directed and never assumes symmetry.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import EdgeNotFoundError, NodeNotFoundError
from .coordinates import Point

Node = Hashable
Edge = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, float]

DEFAULT_WEIGHT = 1.0


class DiGraph:
    """A directed graph with float edge weights and optional node coordinates.

    The graph is a mutable container.  Nodes may be any hashable value; edges
    are ordered pairs with a weight (defaulting to ``1.0``).  Re-adding an
    existing edge overwrites its weight.
    """

    def __init__(
        self,
        edges: Optional[Iterable[Edge | WeightedEdge]] = None,
        *,
        nodes: Optional[Iterable[Node]] = None,
        coordinates: Optional[Mapping[Node, Point | Tuple[float, float]]] = None,
    ) -> None:
        self._successors: Dict[Node, Dict[Node, float]] = {}
        self._predecessors: Dict[Node, Dict[Node, float]] = {}
        self._coordinates: Dict[Node, Point] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for edge in edges:
                if len(edge) == 3:
                    source, target, weight = edge  # type: ignore[misc]
                    self.add_edge(source, target, weight)
                else:
                    source, target = edge  # type: ignore[misc]
                    self.add_edge(source, target)
        if coordinates is not None:
            for node, point in coordinates.items():
                self.set_coordinate(node, point)

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph; a no-op if it is already present."""
        self._successors.setdefault(node, {})
        self._predecessors.setdefault(node, {})

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge.

        Raises:
            NodeNotFoundError: if the node is not in the graph.
        """
        if node not in self._successors:
            raise NodeNotFoundError(node)
        for target in list(self._successors[node]):
            del self._predecessors[target][node]
        for source in list(self._predecessors[node]):
            del self._successors[source][node]
        del self._successors[node]
        del self._predecessors[node]
        self._coordinates.pop(node, None)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._successors

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def nodes(self) -> List[Node]:
        """Return the nodes in insertion order."""
        return list(self._successors)

    def node_count(self) -> int:
        """Return the number of nodes."""
        return len(self._successors)

    def __len__(self) -> int:
        return self.node_count()

    def __iter__(self) -> Iterator[Node]:
        return iter(self._successors)

    # ------------------------------------------------------------------ edges

    def add_edge(self, source: Node, target: Node, weight: float = DEFAULT_WEIGHT) -> None:
        """Add the directed edge ``source -> target`` with ``weight``.

        Both endpoints are added to the graph if missing.  Adding an edge that
        already exists replaces its weight.
        """
        self.add_node(source)
        self.add_node(target)
        self._successors[source][target] = float(weight)
        self._predecessors[target][source] = float(weight)

    def add_symmetric_edge(self, a: Node, b: Node, weight: float = DEFAULT_WEIGHT) -> None:
        """Add both ``a -> b`` and ``b -> a`` with the same weight.

        Transportation networks (railways, roads) are traversable in both
        directions; the paper's example graphs are of this kind.
        """
        self.add_edge(a, b, weight)
        self.add_edge(b, a, weight)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the edge ``source -> target``.

        Raises:
            EdgeNotFoundError: if the edge is not in the graph.
        """
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        del self._successors[source][target]
        del self._predecessors[target][source]

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return ``True`` if the directed edge ``source -> target`` exists."""
        return source in self._successors and target in self._successors[source]

    def edge_weight(self, source: Node, target: Node) -> float:
        """Return the weight of the edge ``source -> target``.

        Raises:
            EdgeNotFoundError: if the edge is not in the graph.
        """
        try:
            return self._successors[source][target]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def edges(self) -> List[Edge]:
        """Return every directed edge as a ``(source, target)`` pair."""
        return [(source, target) for source, targets in self._successors.items() for target in targets]

    def weighted_edges(self) -> List[WeightedEdge]:
        """Return every directed edge as a ``(source, target, weight)`` triple."""
        return [
            (source, target, weight)
            for source, targets in self._successors.items()
            for target, weight in targets.items()
        ]

    def edge_count(self) -> int:
        """Return the number of directed edges."""
        return sum(len(targets) for targets in self._successors.values())

    def undirected_edge_count(self) -> int:
        """Return the number of edges when each symmetric pair counts once.

        A pair ``{a, b}`` connected in both directions contributes 1; an edge
        present in only one direction also contributes 1.  This matches the
        paper's edge counts for (undirected) transportation graphs.
        """
        seen: Set[Tuple[Node, Node]] = set()
        count = 0
        for source, target in self.edges():
            key = (source, target) if repr(source) <= repr(target) else (target, source)
            if key not in seen:
                seen.add(key)
                count += 1
        return count

    # ------------------------------------------------------------- adjacency

    def successors(self, node: Node) -> List[Node]:
        """Return the direct successors of ``node``.

        Raises:
            NodeNotFoundError: if the node is not in the graph.
        """
        if node not in self._successors:
            raise NodeNotFoundError(node)
        return list(self._successors[node])

    def predecessors(self, node: Node) -> List[Node]:
        """Return the direct predecessors of ``node``.

        Raises:
            NodeNotFoundError: if the node is not in the graph.
        """
        if node not in self._predecessors:
            raise NodeNotFoundError(node)
        return list(self._predecessors[node])

    def neighbors(self, node: Node) -> List[Node]:
        """Return successors and predecessors of ``node`` (each node once)."""
        if node not in self._successors:
            raise NodeNotFoundError(node)
        merged: Dict[Node, None] = {}
        for target in self._successors[node]:
            merged[target] = None
        for source in self._predecessors[node]:
            merged[source] = None
        return list(merged)

    def out_degree(self, node: Node) -> int:
        """Return the number of outgoing edges of ``node``."""
        if node not in self._successors:
            raise NodeNotFoundError(node)
        return len(self._successors[node])

    def in_degree(self, node: Node) -> int:
        """Return the number of incoming edges of ``node``."""
        if node not in self._predecessors:
            raise NodeNotFoundError(node)
        return len(self._predecessors[node])

    def degree(self, node: Node) -> int:
        """Return the total degree (in + out) of ``node``.

        For a symmetric (bidirectional) graph this is twice the number of
        distinct neighbours; the paper's ``grade(i)`` (number of adjacent
        edges of an undirected node) corresponds to
        :meth:`undirected_degree`.
        """
        return self.out_degree(node) + self.in_degree(node)

    def undirected_degree(self, node: Node) -> int:
        """Return the number of distinct neighbours of ``node``."""
        return len(self.neighbors(node))

    def successor_items(self, node: Node) -> List[Tuple[Node, float]]:
        """Return ``(successor, weight)`` pairs for ``node``."""
        if node not in self._successors:
            raise NodeNotFoundError(node)
        return list(self._successors[node].items())

    def predecessor_items(self, node: Node) -> List[Tuple[Node, float]]:
        """Return ``(predecessor, weight)`` pairs for ``node``."""
        if node not in self._predecessors:
            raise NodeNotFoundError(node)
        return list(self._predecessors[node].items())

    # ----------------------------------------------------------- coordinates

    def set_coordinate(self, node: Node, point: Point | Tuple[float, float]) -> None:
        """Attach a planar coordinate to ``node`` (adding the node if needed)."""
        self.add_node(node)
        if not isinstance(point, Point):
            point = Point(float(point[0]), float(point[1]))
        self._coordinates[node] = point

    def coordinate(self, node: Node) -> Optional[Point]:
        """Return the coordinate of ``node`` or ``None`` if it has none."""
        if node not in self._successors:
            raise NodeNotFoundError(node)
        return self._coordinates.get(node)

    def coordinates(self) -> Dict[Node, Point]:
        """Return a copy of the node-to-coordinate mapping."""
        return dict(self._coordinates)

    def has_coordinates(self) -> bool:
        """Return ``True`` if every node has a coordinate."""
        return bool(self._successors) and len(self._coordinates) == len(self._successors)

    # ----------------------------------------------------------- derivations

    def copy(self) -> "DiGraph":
        """Return a deep copy of the graph."""
        clone = DiGraph()
        for node in self._successors:
            clone.add_node(node)
        for source, target, weight in self.weighted_edges():
            clone.add_edge(source, target, weight)
        for node, point in self._coordinates.items():
            clone.set_coordinate(node, point)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (coordinates preserved)."""
        keep = set(nodes)
        sub = DiGraph()
        for node in self._successors:
            if node in keep:
                sub.add_node(node)
                point = self._coordinates.get(node)
                if point is not None:
                    sub.set_coordinate(node, point)
        for source, target, weight in self.weighted_edges():
            if source in keep and target in keep:
                sub.add_edge(source, target, weight)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Return the subgraph containing exactly ``edges`` and their endpoints.

        Weights and coordinates are carried over from this graph.

        Raises:
            EdgeNotFoundError: if one of ``edges`` is not in the graph.
        """
        sub = DiGraph()
        for source, target in edges:
            sub.add_edge(source, target, self.edge_weight(source, target))
        for node in sub.nodes():
            point = self._coordinates.get(node)
            if point is not None:
                sub.set_coordinate(node, point)
        return sub

    def reversed(self) -> "DiGraph":
        """Return a copy of the graph with every edge direction flipped."""
        rev = DiGraph()
        for node in self._successors:
            rev.add_node(node)
        for source, target, weight in self.weighted_edges():
            rev.add_edge(target, source, weight)
        for node, point in self._coordinates.items():
            rev.set_coordinate(node, point)
        return rev

    def to_undirected_pairs(self) -> Set[Tuple[Node, Node]]:
        """Return the set of unordered adjacency pairs, canonicalised by ``repr``."""
        pairs: Set[Tuple[Node, Node]] = set()
        for source, target in self.edges():
            pairs.add((source, target) if repr(source) <= repr(target) else (target, source))
        return pairs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            set(self._successors) == set(other._successors)
            and {
                (s, t): w for s, t, w in self.weighted_edges()
            } == {(s, t): w for s, t, w in other.weighted_edges()}
        )

    def __repr__(self) -> str:
        return f"DiGraph(nodes={self.node_count()}, edges={self.edge_count()})"
