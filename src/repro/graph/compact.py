"""Compact graph representation: interned nodes + CSR adjacency + delta overlay.

The mutable :class:`~repro.graph.digraph.DiGraph` is the right front-end for
building and updating graphs, but its dict-of-dicts adjacency makes every hot
loop pay hashing and pointer chasing per edge.  The paper's strategy evaluates
many restricted closures inside *immutable* fragments, exactly the setting
where an indexed, array-backed representation pays off: a fragment is built
once (or rebuilt once per update) and then traversed thousands of times.

:class:`CompactGraph` interns the fragment's hashable nodes into dense int
ids and stores forward and backward adjacency in CSR (compressed sparse row)
form — one offsets array, one targets array, one weights array per direction.
The closure kernels in :mod:`repro.closure.kernels` are specialised to this
layout (bitset BFS over precomputed successor masks, array-heap Dijkstra,
semi-naive fixpoints over int pairs) and translate their results back through
the interner, so every public API keeps speaking original node keys.

Writes are O(delta) amortised.  :meth:`CompactGraph.apply_delta` does not
rebuild the CSR arrays; it splices the touched rows into a small **overlay**
(per-node replacement rows in ``_fwd_over`` / ``_bwd_over``) that every
adjacency accessor, mask, and kernel consults before the frozen arrays.  Once
the number of absorbed elementary changes crosses
:attr:`CompactGraph.overlay_threshold` (default
:data:`DEFAULT_OVERLAY_THRESHOLD`, overridable through the
:data:`ENV_OVERLAY_THRESHOLD` environment variable), the overlay is lazily
**compacted** back into clean CSR in one O(V+E) pass.  Backends that need raw
CSR arrays (numpy packed matrix, chain index, Tarjan shape probes) force a
compaction and record the reason in ``repro_overlay_compactions_total``.

The representation stays *plain data*: :meth:`CompactGraph.state` returns
lists, ``array`` objects, and (when an overlay is pending) a plain dict of
overlay rows, which pickle compactly (cheap to ship to resident worker
processes) and persist losslessly inside snapshots.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import NodeNotFoundError
from ..observability.metrics import MetricsRegistry

Node = Hashable


@dataclass(frozen=True)
class CompactDelta:
    """A plain-data edge delta applicable to a :class:`CompactGraph`.

    This is the wire format of incremental maintenance: small enough to ship
    to a resident worker instead of the fragment's whole CSR state, and
    deterministic — applying the same delta to two identical graphs yields
    identical interners and logical adjacency, regardless of when either
    copy compacts its overlay.

    Attributes:
        inserts: ``(source, target, weight)`` triples to add (new endpoints
            are interned in order of appearance).
        deletes: ``(source, target)`` pairs to remove (every parallel entry
            for the pair is dropped; missing pairs are ignored so replays are
            idempotent).
        reweights: ``(source, target, weight)`` triples replacing the pair's
            entries with a single entry at the new weight (upserting when the
            pair is absent).
    """

    inserts: Tuple[Tuple[Node, Node, float], ...] = ()
    deletes: Tuple[Tuple[Node, Node], ...] = ()
    reweights: Tuple[Tuple[Node, Node, float], ...] = ()

    def is_empty(self) -> bool:
        """Return ``True`` when the delta changes nothing."""
        return not (self.inserts or self.deletes or self.reweights)

    def op_count(self) -> int:
        """Return the number of elementary changes in this delta."""
        return len(self.inserts) + len(self.deletes) + len(self.reweights)

_OFFSET_TYPECODE = "l"
_TARGET_TYPECODE = "l"
_WEIGHT_TYPECODE = "d"

COMPACT_STATE_FORMAT = "compact-graph-v1"

# How many elementary delta operations an overlay absorbs before it is
# compacted back into clean CSR.  Small enough that reads through the
# overlay stay near CSR speed, large enough that a burst of single-edge
# updates never pays the O(V+E) rebuild per edge.
DEFAULT_OVERLAY_THRESHOLD = 64
ENV_OVERLAY_THRESHOLD = "REPRO_OVERLAY_THRESHOLD"

OVERLAY_DEPTH_GAUGE = "repro_overlay_depth"
OVERLAY_COMPACTIONS_COUNTER = "repro_overlay_compactions_total"

_overlay_registry = MetricsRegistry()
_overlay_depth = _overlay_registry.gauge(
    OVERLAY_DEPTH_GAUGE,
    "High-water count of pending overlay operations on any compact graph.",
)
_overlay_compactions = _overlay_registry.counter(
    OVERLAY_COMPACTIONS_COUNTER,
    "Overlay-to-CSR compactions by trigger reason.",
    labelnames=("reason",),
)


def overlay_threshold_default() -> int:
    """Return the process-wide overlay threshold (env knob or the default)."""
    raw = os.environ.get(ENV_OVERLAY_THRESHOLD, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_OVERLAY_THRESHOLD


def overlay_compaction_counts() -> Dict[str, int]:
    """Return the current ``reason -> count`` compaction series (tests, benchmarks)."""
    return {key[0]: int(value) for key, value in _overlay_compactions.series().items()}


def merge_overlay_metrics(registry: MetricsRegistry) -> None:
    """Drain the module-level overlay metrics into ``registry``.

    Mirrors the kernel-selection pipeline: resident workers fold before
    shipping their drained registries, the coordinator folds before serving
    a scrape, and nothing double-counts.  The depth gauge merges as a
    high-water mark; the compaction counter sums.
    """
    payload = _overlay_registry.drain()
    if payload:
        registry.merge_dict(payload)


# A replacement adjacency row: the full effective row for one node, in the
# same order a from-scratch rebuild would produce (counting sort is stable
# within a row, so splicing a row in place preserves rebuild ordering).
OverlayRow = List[Tuple[int, float]]


class CompactGraph:
    """A directed graph over dense int ids with CSR adjacency + delta overlay.

    Build one with :meth:`from_digraph` or :meth:`from_edges`; the instance
    interns every node to an id in ``[0, node_count)`` and freezes adjacency
    into offset/target/weight arrays in both directions.  Parallel edges are
    preserved as distinct CSR entries (the kernels fold them with the
    semiring, which for min-style semirings matches the ``DiGraph`` behaviour
    of keeping the best weight).

    Small updates (:meth:`apply_delta`) do not rebuild the arrays: the touched
    rows are spliced into the overlay dictionaries, consulted by every
    accessor before the CSR arrays, and lazily compacted once
    :attr:`overlay_threshold` elementary changes accumulate (or immediately
    when a consumer demands raw CSR through :attr:`forward_csr` /
    :attr:`backward_csr`).

    The class is intentionally small: it is a *kernel substrate*, not a
    general graph API — semantic mutation goes through ``DiGraph`` and flows
    in as :class:`CompactDelta` patches.
    """

    __slots__ = (
        "_nodes",
        "_ids",
        "_fwd_offsets",
        "_fwd_targets",
        "_fwd_weights",
        "_bwd_offsets",
        "_bwd_sources",
        "_bwd_weights",
        "_succ_masks",
        "_pred_masks",
        "_derived",
        "_derived_states",
        "_base_nodes",
        "_fwd_over",
        "_bwd_over",
        "_overlay_ops",
        "_edge_count",
        "_overlay_threshold",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        fwd_offsets: array,
        fwd_targets: array,
        fwd_weights: array,
        bwd_offsets: array,
        bwd_sources: array,
        bwd_weights: array,
    ) -> None:
        self._nodes: List[Node] = list(nodes)
        self._ids: Dict[Node, int] = {node: index for index, node in enumerate(self._nodes)}
        self._fwd_offsets = fwd_offsets
        self._fwd_targets = fwd_targets
        self._fwd_weights = fwd_weights
        self._bwd_offsets = bwd_offsets
        self._bwd_sources = bwd_sources
        self._bwd_weights = bwd_weights
        self._succ_masks: Optional[List[int]] = None
        self._pred_masks: Optional[List[int]] = None
        self._derived: Dict[str, object] = {}
        self._derived_states: Dict[str, object] = {}
        # Ids >= _base_nodes were interned after the last CSR build and have
        # no CSR row; their adjacency lives purely in the overlay.
        self._base_nodes: int = max(len(fwd_offsets) - 1, 0)
        self._fwd_over: Dict[int, OverlayRow] = {}
        self._bwd_over: Dict[int, OverlayRow] = {}
        self._overlay_ops: int = 0
        self._edge_count: int = len(fwd_targets)
        self._overlay_threshold: Optional[int] = None

    # ---------------------------------------------------------- construction

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, float]],
        *,
        nodes: Optional[Iterable[Node]] = None,
    ) -> "CompactGraph":
        """Build a compact graph from weighted edge triples.

        Args:
            edges: ``(source, target, weight)`` triples; endpoints are
                interned in first-seen order after the explicit ``nodes``.
            nodes: optional nodes to intern first (isolated nodes and a
                deterministic id order for a known node universe).
        """
        ordered: List[Node] = []
        ids: Dict[Node, int] = {}
        if nodes is not None:
            for node in nodes:
                if node not in ids:
                    ids[node] = len(ordered)
                    ordered.append(node)
        edge_list: List[Tuple[int, int, float]] = []
        for source, target, weight in edges:
            if source not in ids:
                ids[source] = len(ordered)
                ordered.append(source)
            if target not in ids:
                ids[target] = len(ordered)
                ordered.append(target)
            edge_list.append((ids[source], ids[target], float(weight)))
        n = len(ordered)
        fwd_offsets, fwd_targets, fwd_weights = _build_csr(edge_list, n, forward=True)
        bwd_offsets, bwd_sources, bwd_weights = _build_csr(edge_list, n, forward=False)
        return cls(
            ordered, fwd_offsets, fwd_targets, fwd_weights, bwd_offsets, bwd_sources, bwd_weights
        )

    @classmethod
    def from_digraph(cls, graph: "DiGraph") -> "CompactGraph":  # noqa: F821
        """Build a compact graph from a :class:`~repro.graph.digraph.DiGraph`.

        Node ids follow the graph's insertion order, so two compact builds of
        the same graph produce identical arrays.
        """
        return cls.from_edges(graph.weighted_edges(), nodes=graph.nodes())

    # ----------------------------------------------------------- basic shape

    def node_count(self) -> int:
        """Return the number of interned nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of directed edges (parallel entries included)."""
        return self._edge_count

    def __len__(self) -> int:
        return self.node_count()

    def nodes(self) -> List[Node]:
        """Return the original node keys in id order."""
        return list(self._nodes)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` was interned."""
        return node in self._ids

    def node_id(self, node: Node) -> int:
        """Return the dense id of ``node``.

        Raises:
            NodeNotFoundError: if the node was not interned.
        """
        try:
            return self._ids[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def try_node_id(self, node: Node) -> int:
        """Return the dense id of ``node`` or ``-1`` when absent."""
        return self._ids.get(node, -1)

    def node_of(self, node_id: int) -> Node:
        """Return the original node key for a dense id."""
        return self._nodes[node_id]

    # --------------------------------------------------------------- overlay

    @property
    def overlay_threshold(self) -> int:
        """Pending operations tolerated before the overlay is compacted."""
        if self._overlay_threshold is not None:
            return self._overlay_threshold
        return overlay_threshold_default()

    @overlay_threshold.setter
    def overlay_threshold(self, value: int) -> None:
        self._overlay_threshold = max(0, int(value))

    def has_overlay(self) -> bool:
        """Return ``True`` while un-compacted overlay rows are pending."""
        return bool(self._fwd_over or self._bwd_over)

    def overlay_depth(self) -> int:
        """Return the number of elementary changes absorbed since compaction."""
        return self._overlay_ops

    def compact_now(self, reason: str = "explicit") -> None:
        """Fold the overlay back into clean CSR arrays (O(V+E), lazy trigger).

        The effective adjacency is re-enumerated row by row (overlay rows
        shadow CSR rows) and both directions are rebuilt; because overlay
        splices preserve within-row order, the result is identical to the
        arrays a from-scratch rebuild after the same deltas would produce.
        Masks and row-patched derived structures are already current and
        survive.  ``reason`` lands on ``repro_overlay_compactions_total``.
        """
        if not (self._fwd_over or self._bwd_over):
            return
        edges: List[Tuple[int, int, float]] = []
        offsets = self._fwd_offsets
        targets = self._fwd_targets
        weights = self._fwd_weights
        over = self._fwd_over
        for source_id in range(len(self._nodes)):
            row = over.get(source_id)
            if row is not None:
                for target_id, weight in row:
                    edges.append((source_id, target_id, weight))
            elif source_id < self._base_nodes:
                for index in range(offsets[source_id], offsets[source_id + 1]):
                    edges.append((source_id, targets[index], weights[index]))
        n = len(self._nodes)
        self._fwd_offsets, self._fwd_targets, self._fwd_weights = _build_csr(
            edges, n, forward=True
        )
        self._bwd_offsets, self._bwd_sources, self._bwd_weights = _build_csr(
            edges, n, forward=False
        )
        self._base_nodes = n
        self._fwd_over = {}
        self._bwd_over = {}
        self._overlay_ops = 0
        self._edge_count = len(edges)
        _overlay_compactions.inc(reason=reason)

    def adjacency_view(
        self, *, backward: bool = False
    ) -> Tuple[array, array, array, Optional[Dict[int, OverlayRow]], int]:
        """Return one direction's adjacency without forcing a compaction.

        Returns:
            ``(offsets, neighbours, weights, overlay_rows, base_nodes)``.
            ``overlay_rows`` is ``None`` when no overlay is pending (the
            caller's hot loop can skip the per-row lookup entirely); ids at
            or above ``base_nodes`` have no CSR segment and read only from
            the overlay.
        """
        if backward:
            return (
                self._bwd_offsets,
                self._bwd_sources,
                self._bwd_weights,
                self._bwd_over or None,
                self._base_nodes,
            )
        return (
            self._fwd_offsets,
            self._fwd_targets,
            self._fwd_weights,
            self._fwd_over or None,
            self._base_nodes,
        )

    # ------------------------------------------------------------- adjacency

    def successor_ids(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target_id, weight)`` for the outgoing edges of ``node_id``."""
        row = self._fwd_over.get(node_id) if self._fwd_over else None
        if row is not None:
            yield from row
            return
        if node_id >= self._base_nodes:
            return
        start = self._fwd_offsets[node_id]
        stop = self._fwd_offsets[node_id + 1]
        targets = self._fwd_targets
        weights = self._fwd_weights
        for index in range(start, stop):
            yield targets[index], weights[index]

    def predecessor_ids(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(source_id, weight)`` for the incoming edges of ``node_id``."""
        row = self._bwd_over.get(node_id) if self._bwd_over else None
        if row is not None:
            yield from row
            return
        if node_id >= self._base_nodes:
            return
        start = self._bwd_offsets[node_id]
        stop = self._bwd_offsets[node_id + 1]
        sources = self._bwd_sources
        weights = self._bwd_weights
        for index in range(start, stop):
            yield sources[index], weights[index]

    def out_degree_of_id(self, node_id: int) -> int:
        """Return the number of outgoing entries of ``node_id``."""
        row = self._fwd_over.get(node_id) if self._fwd_over else None
        if row is not None:
            return len(row)
        if node_id >= self._base_nodes:
            return 0
        return self._fwd_offsets[node_id + 1] - self._fwd_offsets[node_id]

    @property
    def forward_csr(self) -> Tuple[array, array, array]:
        """The forward adjacency as ``(offsets, targets, weights)`` arrays.

        Demanding raw CSR compacts any pending overlay first (recorded as a
        ``csr_access`` compaction) — direct array consumers never observe a
        stale row.
        """
        if self._fwd_over or self._bwd_over:
            self.compact_now(reason="csr_access")
        return self._fwd_offsets, self._fwd_targets, self._fwd_weights

    @property
    def backward_csr(self) -> Tuple[array, array, array]:
        """The backward adjacency as ``(offsets, sources, weights)`` arrays.

        Compacts any pending overlay first, like :attr:`forward_csr`.
        """
        if self._fwd_over or self._bwd_over:
            self.compact_now(reason="csr_access")
        return self._bwd_offsets, self._bwd_sources, self._bwd_weights

    def successor_masks(self) -> List[int]:
        """Return (and cache) one int-as-bitset of successors per node.

        ``masks[i]`` has bit ``j`` set iff the edge ``i -> j`` exists; the
        bitset BFS kernel ORs these masks word-parallel, which is how a pure
        Python loop gets within sight of the hardware's memory bandwidth.
        Overlay splices maintain the cached masks row by row, so the bitset
        kernels read through a pending overlay at full speed.
        """
        if self._succ_masks is None:
            masks = [0] * len(self._nodes)
            offsets = self._fwd_offsets
            targets = self._fwd_targets
            for node_id in range(self._base_nodes):
                mask = 0
                for index in range(offsets[node_id], offsets[node_id + 1]):
                    mask |= 1 << targets[index]
                masks[node_id] = mask
            for node_id, row in self._fwd_over.items():
                mask = 0
                for target_id, _ in row:
                    mask |= 1 << target_id
                masks[node_id] = mask
            self._succ_masks = masks
        return self._succ_masks

    def predecessor_masks(self) -> List[int]:
        """Return (and cache) one int-as-bitset of predecessors per node.

        The backward counterpart of :meth:`successor_masks`; the repair
        machinery uses it to run the bitset BFS *against* the edges ("which
        nodes reach u?") without materialising a reversed graph.
        """
        if self._pred_masks is None:
            masks = [0] * len(self._nodes)
            offsets = self._bwd_offsets
            sources = self._bwd_sources
            for node_id in range(self._base_nodes):
                mask = 0
                for index in range(offsets[node_id], offsets[node_id + 1]):
                    mask |= 1 << sources[index]
                masks[node_id] = mask
            for node_id, row in self._bwd_over.items():
                mask = 0
                for source_id, _ in row:
                    mask |= 1 << source_id
                masks[node_id] = mask
            self._pred_masks = masks
        return self._pred_masks

    def weighted_edges(self) -> List[Tuple[Node, Node, float]]:
        """Return every edge as original-node triples (for round-trips/tests)."""
        edges: List[Tuple[Node, Node, float]] = []
        for source_id in range(len(self._nodes)):
            source = self._nodes[source_id]
            for target_id, weight in self.successor_ids(source_id):
                edges.append((source, self._nodes[target_id], weight))
        return edges

    def to_digraph(self) -> "DiGraph":  # noqa: F821
        """Materialise back into a mutable :class:`DiGraph` (tests, debugging)."""
        from .digraph import DiGraph

        graph = DiGraph(nodes=self._nodes)
        for source, target, weight in self.weighted_edges():
            graph.add_edge(source, target, weight)
        return graph

    # ------------------------------------------------------- derived caches

    def derived_get(self, key: str) -> Optional[object]:
        """Return a cached derived structure (packed matrix, chain index, …)."""
        return self._derived.get(key)

    def derived_set(self, key: str, value: object) -> None:
        """Cache a derived structure under ``key``.

        The value persists through :meth:`state` — via its ``to_state()``
        when it has one, verbatim when it is already plain data — so warm
        reloads skip the derivation.
        """
        self._derived[key] = value
        self._derived_states.pop(key, None)

    def derived_state(self, key: str) -> Optional[object]:
        """Return the reloaded plain-data state for ``key``, if any.

        States arrive through :meth:`from_state` and stay raw until a
        backend hydrates them (a loader without the backend's optional
        dependency passes them through untouched).
        """
        return self._derived_states.get(key)

    # ---------------------------------------------------------- plain state

    def state(self) -> Dict[str, object]:
        """Return the graph as a plain-data dictionary (snapshot wire format).

        Derived kernel structures ride along under ``"derived"``: hydrated
        objects are serialised through their ``to_state()``, unhydrated
        reloaded states pass through as-is, so the caches survive any number
        of ship/reload hops.  A pending overlay persists under ``"overlay"``
        as copied plain rows — shipping a state never forces a compaction,
        and later mutations of this graph cannot alias into a captured
        state.
        """
        state: Dict[str, object] = {
            "format": COMPACT_STATE_FORMAT,
            "nodes": list(self._nodes),
            "fwd_offsets": self._fwd_offsets,
            "fwd_targets": self._fwd_targets,
            "fwd_weights": self._fwd_weights,
            "bwd_offsets": self._bwd_offsets,
            "bwd_sources": self._bwd_sources,
            "bwd_weights": self._bwd_weights,
        }
        if self._fwd_over or self._bwd_over:
            state["overlay"] = {
                "ops": self._overlay_ops,
                "edge_count": self._edge_count,
                "fwd": {node_id: list(row) for node_id, row in self._fwd_over.items()},
                "bwd": {node_id: list(row) for node_id, row in self._bwd_over.items()},
            }
        derived: Dict[str, object] = dict(self._derived_states)
        for key, value in self._derived.items():
            to_state = getattr(value, "to_state", None)
            derived[key] = to_state() if callable(to_state) else value
        if derived:
            state["derived"] = derived
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CompactGraph":
        """Rebuild a compact graph from :meth:`state` output.

        Raises:
            ValueError: when the state's format tag is not understood.
        """
        if state.get("format") != COMPACT_STATE_FORMAT:
            raise ValueError(
                f"compact graph state format {state.get('format')!r} is not supported"
            )
        graph = cls(
            state["nodes"],  # type: ignore[arg-type]
            state["fwd_offsets"],  # type: ignore[arg-type]
            state["fwd_targets"],  # type: ignore[arg-type]
            state["fwd_weights"],  # type: ignore[arg-type]
            state["bwd_offsets"],  # type: ignore[arg-type]
            state["bwd_sources"],  # type: ignore[arg-type]
            state["bwd_weights"],  # type: ignore[arg-type]
        )
        overlay = state.get("overlay")
        if overlay:
            graph._fwd_over = {
                int(node_id): [(int(t), float(w)) for t, w in row]
                for node_id, row in overlay["fwd"].items()  # type: ignore[index]
            }
            graph._bwd_over = {
                int(node_id): [(int(s), float(w)) for s, w in row]
                for node_id, row in overlay["bwd"].items()  # type: ignore[index]
            }
            graph._overlay_ops = int(overlay.get("ops", 0))  # type: ignore[union-attr]
            graph._edge_count = int(overlay["edge_count"])  # type: ignore[index]
        graph._derived_states = dict(state.get("derived") or {})  # type: ignore[arg-type]
        return graph

    # ------------------------------------------------------- in-place delta

    def apply_delta(self, delta: CompactDelta) -> None:
        """Splice an edge delta into this graph in O(delta) amortised time.

        The interner is reused (new endpoints are appended, so ids of
        existing nodes never move) and only the *touched rows* are
        materialised into the overlay — the CSR arrays, and every other
        row, are untouched until the overlay crosses
        :attr:`overlay_threshold` and is compacted in one pass.  Within a
        row the splice reproduces exactly what a full rebuild would emit
        (deletes drop every parallel entry, reweights collapse parallels at
        the first occurrence and upsert by appending, inserts append), so
        replicas applying the same deltas agree on logical adjacency no
        matter when each compacts.

        Cached successor/predecessor masks are *maintained* per touched row
        rather than invalidated.  Derived kernel structures offering a
        ``patch_rows(row_masks, node_count)`` hook (the packed bit matrix)
        are patched in place; everything else — chain indexes, shape stats,
        reloaded-state blobs — is invalidated and rebuilt on next use: a
        kernel query after a delta can never observe pre-delta caches.
        """
        if delta.is_empty():
            return
        fwd_touched: Set[int] = set()
        bwd_touched: Set[int] = set()
        for source, target in delta.deletes:
            source_id = self._ids.get(source, -1)
            target_id = self._ids.get(target, -1)
            if source_id < 0 or target_id < 0:
                continue
            row = self._materialize(source_id, self._fwd_over, forward=True)
            before = len(row)
            row[:] = [entry for entry in row if entry[0] != target_id]
            removed = before - len(row)
            if removed:
                self._edge_count -= removed
                back = self._materialize(target_id, self._bwd_over, forward=False)
                back[:] = [entry for entry in back if entry[0] != source_id]
                fwd_touched.add(source_id)
                bwd_touched.add(target_id)
        for source, target, weight in delta.reweights:
            source_id = self._intern(source)
            target_id = self._intern(target)
            value = float(weight)
            row = self._materialize(source_id, self._fwd_over, forward=True)
            self._edge_count += _reweight_row(row, target_id, value)
            back = self._materialize(target_id, self._bwd_over, forward=False)
            _reweight_row(back, source_id, value)
            fwd_touched.add(source_id)
            bwd_touched.add(target_id)
        for source, target, weight in delta.inserts:
            source_id = self._intern(source)
            target_id = self._intern(target)
            value = float(weight)
            self._materialize(source_id, self._fwd_over, forward=True).append(
                (target_id, value)
            )
            self._materialize(target_id, self._bwd_over, forward=False).append(
                (source_id, value)
            )
            self._edge_count += 1
            fwd_touched.add(source_id)
            bwd_touched.add(target_id)
        self._overlay_ops += delta.op_count()
        _overlay_depth.max_of(float(self._overlay_ops))
        node_count = len(self._nodes)
        if self._succ_masks is not None:
            masks = self._succ_masks
            while len(masks) < node_count:
                masks.append(0)
            for source_id in fwd_touched:
                mask = 0
                for target_id, _ in self._fwd_over[source_id]:
                    mask |= 1 << target_id
                masks[source_id] = mask
        if self._pred_masks is not None:
            masks = self._pred_masks
            while len(masks) < node_count:
                masks.append(0)
            for target_id in bwd_touched:
                mask = 0
                for source_id, _ in self._bwd_over[target_id]:
                    mask |= 1 << source_id
                masks[target_id] = mask
        self._derived_states = {}
        if self._derived:
            patched: Dict[str, object] = {}
            row_masks: Optional[Dict[int, int]] = None
            for key, value in self._derived.items():
                patch = getattr(value, "patch_rows", None)
                if not callable(patch):
                    continue
                if row_masks is None:
                    row_masks = {}
                    for source_id in fwd_touched:
                        mask = 0
                        for target_id, _ in self._fwd_over[source_id]:
                            mask |= 1 << target_id
                        row_masks[source_id] = mask
                if patch(row_masks, node_count):
                    patched[key] = value
            self._derived = patched
        if self._overlay_ops >= self.overlay_threshold:
            self.compact_now(reason="threshold")

    def _materialize(
        self, node_id: int, over: Dict[int, OverlayRow], *, forward: bool
    ) -> OverlayRow:
        """Return the node's mutable overlay row, copying its CSR row on first edit."""
        row = over.get(node_id)
        if row is None:
            if node_id < self._base_nodes:
                if forward:
                    offsets, neighbours, weights = (
                        self._fwd_offsets,
                        self._fwd_targets,
                        self._fwd_weights,
                    )
                else:
                    offsets, neighbours, weights = (
                        self._bwd_offsets,
                        self._bwd_sources,
                        self._bwd_weights,
                    )
                row = [
                    (neighbours[index], weights[index])
                    for index in range(offsets[node_id], offsets[node_id + 1])
                ]
            else:
                row = []
            over[node_id] = row
        return row

    def _intern(self, node: Node) -> int:
        """Return the dense id of ``node``, interning it when new."""
        node_id = self._ids.get(node)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(node)
            self._ids[node] = node_id
        return node_id

    def __getstate__(self) -> Dict[str, object]:
        return self.state()

    def __setstate__(self, state: Dict[str, object]) -> None:
        rebuilt = CompactGraph.from_state(state)
        for slot in CompactGraph.__slots__:
            setattr(self, slot, getattr(rebuilt, slot))

    def __repr__(self) -> str:
        overlay = f", overlay={self._overlay_ops}" if self.has_overlay() else ""
        return f"CompactGraph(nodes={self.node_count()}, edges={self.edge_count()}{overlay})"


def _reweight_row(row: OverlayRow, neighbour_id: int, weight: float) -> int:
    """Apply reweight semantics to one overlay row; return the edge-count delta.

    Every entry for ``neighbour_id`` collapses to a single entry at the
    position of the first occurrence; when the pair is absent the entry is
    appended (upsert) — byte-for-byte what the legacy full rebuild emitted.
    """
    before = len(row)
    replaced: OverlayRow = []
    seen = False
    for entry in row:
        if entry[0] == neighbour_id:
            if seen:
                continue
            seen = True
            replaced.append((neighbour_id, weight))
        else:
            replaced.append(entry)
    if not seen:
        replaced.append((neighbour_id, weight))
    row[:] = replaced
    return len(replaced) - before


def _build_csr(
    edge_list: List[Tuple[int, int, float]],
    node_count: int,
    *,
    forward: bool,
) -> Tuple[array, array, array]:
    """Build one direction's CSR arrays with a counting sort over the edges."""
    counts = [0] * (node_count + 1)
    key = 0 if forward else 1
    for edge in edge_list:
        counts[edge[key] + 1] += 1
    offsets = array(_OFFSET_TYPECODE, [0] * (node_count + 1))
    running = 0
    for index in range(node_count + 1):
        running += counts[index]
        offsets[index] = running
    cursor = list(offsets[:node_count]) if node_count else []
    neighbours = array(_TARGET_TYPECODE, [0] * len(edge_list))
    weights = array(_WEIGHT_TYPECODE, [0.0] * len(edge_list))
    other = 1 if forward else 0
    for edge in edge_list:
        row = edge[key]
        slot = cursor[row]
        cursor[row] = slot + 1
        neighbours[slot] = edge[other]
        weights[slot] = edge[2]
    return offsets, neighbours, weights
