"""Compact, immutable graph representation: interned nodes + CSR adjacency.

The mutable :class:`~repro.graph.digraph.DiGraph` is the right front-end for
building and updating graphs, but its dict-of-dicts adjacency makes every hot
loop pay hashing and pointer chasing per edge.  The paper's strategy evaluates
many restricted closures inside *immutable* fragments, exactly the setting
where an indexed, array-backed representation pays off: a fragment is built
once (or rebuilt once per update) and then traversed thousands of times.

:class:`CompactGraph` interns the fragment's hashable nodes into dense int
ids and stores forward and backward adjacency in CSR (compressed sparse row)
form — one offsets array, one targets array, one weights array per direction.
The closure kernels in :mod:`repro.closure.kernels` are specialised to this
layout (bitset BFS over precomputed successor masks, array-heap Dijkstra,
semi-naive fixpoints over int pairs) and translate their results back through
the interner, so every public API keeps speaking original node keys.

The representation is deliberately *plain data*: :meth:`CompactGraph.state`
returns only lists and ``array`` objects, which pickle compactly (cheap to
ship to resident worker processes) and persist losslessly inside snapshots.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import NodeNotFoundError

Node = Hashable


@dataclass(frozen=True)
class CompactDelta:
    """A plain-data edge delta applicable to a :class:`CompactGraph`.

    This is the wire format of incremental maintenance: small enough to ship
    to a resident worker instead of the fragment's whole CSR state, and
    deterministic — applying the same delta to two identical graphs yields
    identical interners and arrays.

    Attributes:
        inserts: ``(source, target, weight)`` triples to add (new endpoints
            are interned in order of appearance).
        deletes: ``(source, target)`` pairs to remove (every parallel entry
            for the pair is dropped; missing pairs are ignored so replays are
            idempotent).
        reweights: ``(source, target, weight)`` triples replacing the pair's
            entries with a single entry at the new weight (upserting when the
            pair is absent).
    """

    inserts: Tuple[Tuple[Node, Node, float], ...] = ()
    deletes: Tuple[Tuple[Node, Node], ...] = ()
    reweights: Tuple[Tuple[Node, Node, float], ...] = ()

    def is_empty(self) -> bool:
        """Return ``True`` when the delta changes nothing."""
        return not (self.inserts or self.deletes or self.reweights)

_OFFSET_TYPECODE = "l"
_TARGET_TYPECODE = "l"
_WEIGHT_TYPECODE = "d"

COMPACT_STATE_FORMAT = "compact-graph-v1"


class CompactGraph:
    """An immutable directed graph over dense int ids with CSR adjacency.

    Build one with :meth:`from_digraph` or :meth:`from_edges`; the instance
    interns every node to an id in ``[0, node_count)`` and freezes adjacency
    into offset/target/weight arrays in both directions.  Parallel edges are
    preserved as distinct CSR entries (the kernels fold them with the
    semiring, which for min-style semirings matches the ``DiGraph`` behaviour
    of keeping the best weight).

    The class is intentionally small: it is a *kernel substrate*, not a
    general graph API — mutation goes through ``DiGraph`` and rebuilds the
    affected fragment's compact form.
    """

    __slots__ = (
        "_nodes",
        "_ids",
        "_fwd_offsets",
        "_fwd_targets",
        "_fwd_weights",
        "_bwd_offsets",
        "_bwd_sources",
        "_bwd_weights",
        "_succ_masks",
        "_pred_masks",
        "_derived",
        "_derived_states",
    )

    def __init__(
        self,
        nodes: Sequence[Node],
        fwd_offsets: array,
        fwd_targets: array,
        fwd_weights: array,
        bwd_offsets: array,
        bwd_sources: array,
        bwd_weights: array,
    ) -> None:
        self._nodes: List[Node] = list(nodes)
        self._ids: Dict[Node, int] = {node: index for index, node in enumerate(self._nodes)}
        self._fwd_offsets = fwd_offsets
        self._fwd_targets = fwd_targets
        self._fwd_weights = fwd_weights
        self._bwd_offsets = bwd_offsets
        self._bwd_sources = bwd_sources
        self._bwd_weights = bwd_weights
        self._succ_masks: Optional[List[int]] = None
        self._pred_masks: Optional[List[int]] = None
        self._derived: Dict[str, object] = {}
        self._derived_states: Dict[str, object] = {}

    # ---------------------------------------------------------- construction

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node, float]],
        *,
        nodes: Optional[Iterable[Node]] = None,
    ) -> "CompactGraph":
        """Build a compact graph from weighted edge triples.

        Args:
            edges: ``(source, target, weight)`` triples; endpoints are
                interned in first-seen order after the explicit ``nodes``.
            nodes: optional nodes to intern first (isolated nodes and a
                deterministic id order for a known node universe).
        """
        ordered: List[Node] = []
        ids: Dict[Node, int] = {}
        if nodes is not None:
            for node in nodes:
                if node not in ids:
                    ids[node] = len(ordered)
                    ordered.append(node)
        edge_list: List[Tuple[int, int, float]] = []
        for source, target, weight in edges:
            if source not in ids:
                ids[source] = len(ordered)
                ordered.append(source)
            if target not in ids:
                ids[target] = len(ordered)
                ordered.append(target)
            edge_list.append((ids[source], ids[target], float(weight)))
        n = len(ordered)
        fwd_offsets, fwd_targets, fwd_weights = _build_csr(edge_list, n, forward=True)
        bwd_offsets, bwd_sources, bwd_weights = _build_csr(edge_list, n, forward=False)
        return cls(
            ordered, fwd_offsets, fwd_targets, fwd_weights, bwd_offsets, bwd_sources, bwd_weights
        )

    @classmethod
    def from_digraph(cls, graph: "DiGraph") -> "CompactGraph":  # noqa: F821
        """Build a compact graph from a :class:`~repro.graph.digraph.DiGraph`.

        Node ids follow the graph's insertion order, so two compact builds of
        the same graph produce identical arrays.
        """
        return cls.from_edges(graph.weighted_edges(), nodes=graph.nodes())

    # ----------------------------------------------------------- basic shape

    def node_count(self) -> int:
        """Return the number of interned nodes."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """Return the number of directed edges (parallel entries included)."""
        return len(self._fwd_targets)

    def __len__(self) -> int:
        return self.node_count()

    def nodes(self) -> List[Node]:
        """Return the original node keys in id order."""
        return list(self._nodes)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` when ``node`` was interned."""
        return node in self._ids

    def node_id(self, node: Node) -> int:
        """Return the dense id of ``node``.

        Raises:
            NodeNotFoundError: if the node was not interned.
        """
        try:
            return self._ids[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def try_node_id(self, node: Node) -> int:
        """Return the dense id of ``node`` or ``-1`` when absent."""
        return self._ids.get(node, -1)

    def node_of(self, node_id: int) -> Node:
        """Return the original node key for a dense id."""
        return self._nodes[node_id]

    # ------------------------------------------------------------- adjacency

    def successor_ids(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target_id, weight)`` for the outgoing edges of ``node_id``."""
        start = self._fwd_offsets[node_id]
        stop = self._fwd_offsets[node_id + 1]
        targets = self._fwd_targets
        weights = self._fwd_weights
        for index in range(start, stop):
            yield targets[index], weights[index]

    def predecessor_ids(self, node_id: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(source_id, weight)`` for the incoming edges of ``node_id``."""
        start = self._bwd_offsets[node_id]
        stop = self._bwd_offsets[node_id + 1]
        sources = self._bwd_sources
        weights = self._bwd_weights
        for index in range(start, stop):
            yield sources[index], weights[index]

    def out_degree_of_id(self, node_id: int) -> int:
        """Return the number of outgoing CSR entries of ``node_id``."""
        return self._fwd_offsets[node_id + 1] - self._fwd_offsets[node_id]

    @property
    def forward_csr(self) -> Tuple[array, array, array]:
        """The forward adjacency as ``(offsets, targets, weights)`` arrays."""
        return self._fwd_offsets, self._fwd_targets, self._fwd_weights

    @property
    def backward_csr(self) -> Tuple[array, array, array]:
        """The backward adjacency as ``(offsets, sources, weights)`` arrays."""
        return self._bwd_offsets, self._bwd_sources, self._bwd_weights

    def successor_masks(self) -> List[int]:
        """Return (and cache) one int-as-bitset of successors per node.

        ``masks[i]`` has bit ``j`` set iff the edge ``i -> j`` exists; the
        bitset BFS kernel ORs these masks word-parallel, which is how a pure
        Python loop gets within sight of the hardware's memory bandwidth.
        """
        if self._succ_masks is None:
            masks = [0] * len(self._nodes)
            offsets = self._fwd_offsets
            targets = self._fwd_targets
            for node_id in range(len(self._nodes)):
                mask = 0
                for index in range(offsets[node_id], offsets[node_id + 1]):
                    mask |= 1 << targets[index]
                masks[node_id] = mask
            self._succ_masks = masks
        return self._succ_masks

    def predecessor_masks(self) -> List[int]:
        """Return (and cache) one int-as-bitset of predecessors per node.

        The backward counterpart of :meth:`successor_masks`; the repair
        machinery uses it to run the bitset BFS *against* the edges ("which
        nodes reach u?") without materialising a reversed graph.
        """
        if self._pred_masks is None:
            masks = [0] * len(self._nodes)
            offsets = self._bwd_offsets
            sources = self._bwd_sources
            for node_id in range(len(self._nodes)):
                mask = 0
                for index in range(offsets[node_id], offsets[node_id + 1]):
                    mask |= 1 << sources[index]
                masks[node_id] = mask
            self._pred_masks = masks
        return self._pred_masks

    def weighted_edges(self) -> List[Tuple[Node, Node, float]]:
        """Return every edge as original-node triples (for round-trips/tests)."""
        edges: List[Tuple[Node, Node, float]] = []
        for source_id in range(len(self._nodes)):
            source = self._nodes[source_id]
            for target_id, weight in self.successor_ids(source_id):
                edges.append((source, self._nodes[target_id], weight))
        return edges

    def to_digraph(self) -> "DiGraph":  # noqa: F821
        """Materialise back into a mutable :class:`DiGraph` (tests, debugging)."""
        from .digraph import DiGraph

        graph = DiGraph(nodes=self._nodes)
        for source, target, weight in self.weighted_edges():
            graph.add_edge(source, target, weight)
        return graph

    # ------------------------------------------------------- derived caches

    def derived_get(self, key: str) -> Optional[object]:
        """Return a cached derived structure (packed matrix, chain index, …)."""
        return self._derived.get(key)

    def derived_set(self, key: str, value: object) -> None:
        """Cache a derived structure under ``key``.

        The value persists through :meth:`state` — via its ``to_state()``
        when it has one, verbatim when it is already plain data — so warm
        reloads skip the derivation.
        """
        self._derived[key] = value
        self._derived_states.pop(key, None)

    def derived_state(self, key: str) -> Optional[object]:
        """Return the reloaded plain-data state for ``key``, if any.

        States arrive through :meth:`from_state` and stay raw until a
        backend hydrates them (a loader without the backend's optional
        dependency passes them through untouched).
        """
        return self._derived_states.get(key)

    # ---------------------------------------------------------- plain state

    def state(self) -> Dict[str, object]:
        """Return the graph as a plain-data dictionary (snapshot wire format).

        Derived kernel structures ride along under ``"derived"``: hydrated
        objects are serialised through their ``to_state()``, unhydrated
        reloaded states pass through as-is, so the caches survive any number
        of ship/reload hops.
        """
        state: Dict[str, object] = {
            "format": COMPACT_STATE_FORMAT,
            "nodes": list(self._nodes),
            "fwd_offsets": self._fwd_offsets,
            "fwd_targets": self._fwd_targets,
            "fwd_weights": self._fwd_weights,
            "bwd_offsets": self._bwd_offsets,
            "bwd_sources": self._bwd_sources,
            "bwd_weights": self._bwd_weights,
        }
        derived: Dict[str, object] = dict(self._derived_states)
        for key, value in self._derived.items():
            to_state = getattr(value, "to_state", None)
            derived[key] = to_state() if callable(to_state) else value
        if derived:
            state["derived"] = derived
        return state

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CompactGraph":
        """Rebuild a compact graph from :meth:`state` output.

        Raises:
            ValueError: when the state's format tag is not understood.
        """
        if state.get("format") != COMPACT_STATE_FORMAT:
            raise ValueError(
                f"compact graph state format {state.get('format')!r} is not supported"
            )
        graph = cls(
            state["nodes"],  # type: ignore[arg-type]
            state["fwd_offsets"],  # type: ignore[arg-type]
            state["fwd_targets"],  # type: ignore[arg-type]
            state["fwd_weights"],  # type: ignore[arg-type]
            state["bwd_offsets"],  # type: ignore[arg-type]
            state["bwd_sources"],  # type: ignore[arg-type]
            state["bwd_weights"],  # type: ignore[arg-type]
        )
        graph._derived_states = dict(state.get("derived") or {})  # type: ignore[arg-type]
        return graph

    # ------------------------------------------------------- in-place delta

    def apply_delta(self, delta: CompactDelta) -> None:
        """Rebuild this graph's CSR arrays in place from an edge delta.

        This is the incremental-maintenance hot path: the interner is reused
        (new endpoints are appended, so ids of existing nodes never move) and
        only this graph's offset/target/weight arrays are reconstructed — in a
        fragmented catalog, every other fragment's compact state is untouched.
        Nodes whose last edge was deleted stay interned as isolated ids; the
        kernels never reach them, and node membership questions are answered
        by the mutable front-end, not by this substrate.

        Lazy successor/predecessor masks and every derived kernel structure
        (packed bit matrices, chain indexes, shape stats — hydrated or still
        in reloaded-state form) are invalidated and rebuilt on next use: a
        kernel query after a delta can never observe pre-delta caches.
        """
        if delta.is_empty():
            return
        edges: List[Tuple[int, int, float]] = []
        for source_id in range(len(self._nodes)):
            for index in range(self._fwd_offsets[source_id], self._fwd_offsets[source_id + 1]):
                edges.append((source_id, self._fwd_targets[index], self._fwd_weights[index]))
        removed = set()
        rewritten: Dict[Tuple[int, int], float] = {}
        for source, target in delta.deletes:
            removed.add((self._ids.get(source, -1), self._ids.get(target, -1)))
        for source, target, weight in delta.reweights:
            source_id = self._intern(source)
            target_id = self._intern(target)
            rewritten[(source_id, target_id)] = float(weight)
        if removed or rewritten:
            kept: List[Tuple[int, int, float]] = []
            emitted = set()
            for source_id, target_id, weight in edges:
                pair = (source_id, target_id)
                if pair in removed:
                    continue
                if pair in rewritten:
                    if pair in emitted:
                        continue  # collapse parallel entries to one reweighted edge
                    emitted.add(pair)
                    kept.append((source_id, target_id, rewritten[pair]))
                else:
                    kept.append((source_id, target_id, weight))
            for pair, weight in rewritten.items():
                if pair not in emitted:
                    kept.append((pair[0], pair[1], weight))  # reweight of an absent pair upserts
            edges = kept
        for source, target, weight in delta.inserts:
            edges.append((self._intern(source), self._intern(target), float(weight)))
        n = len(self._nodes)
        self._fwd_offsets, self._fwd_targets, self._fwd_weights = _build_csr(
            edges, n, forward=True
        )
        self._bwd_offsets, self._bwd_sources, self._bwd_weights = _build_csr(
            edges, n, forward=False
        )
        self._succ_masks = None
        self._pred_masks = None
        self._derived = {}
        self._derived_states = {}

    def _intern(self, node: Node) -> int:
        """Return the dense id of ``node``, interning it when new."""
        node_id = self._ids.get(node)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(node)
            self._ids[node] = node_id
        return node_id

    def __getstate__(self) -> Dict[str, object]:
        return self.state()

    def __setstate__(self, state: Dict[str, object]) -> None:
        rebuilt = CompactGraph.from_state(state)
        for slot in CompactGraph.__slots__:
            setattr(self, slot, getattr(rebuilt, slot))

    def __repr__(self) -> str:
        return f"CompactGraph(nodes={self.node_count()}, edges={self.edge_count()})"


def _build_csr(
    edge_list: List[Tuple[int, int, float]],
    node_count: int,
    *,
    forward: bool,
) -> Tuple[array, array, array]:
    """Build one direction's CSR arrays with a counting sort over the edges."""
    counts = [0] * (node_count + 1)
    key = 0 if forward else 1
    for edge in edge_list:
        counts[edge[key] + 1] += 1
    offsets = array(_OFFSET_TYPECODE, [0] * (node_count + 1))
    running = 0
    for index in range(node_count + 1):
        running += counts[index]
        offsets[index] = running
    cursor = list(offsets[:node_count]) if node_count else []
    neighbours = array(_TARGET_TYPECODE, [0] * len(edge_list))
    weights = array(_WEIGHT_TYPECODE, [0.0] * len(edge_list))
    other = 1 if forward else 0
    for edge in edge_list:
        row = edge[key]
        slot = cursor[row]
        cursor[row] = slot + 1
        neighbours[slot] = edge[other]
        weights[slot] = edge[2]
    return offsets, neighbours, weights
