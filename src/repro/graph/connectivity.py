"""Connectivity analysis: k-connectivity and "relevant" cut nodes.

Section 3 of the paper describes a first, ultimately rejected idea for
fragmentation: investigate the *k-connectivity* of the graph (the smallest
number of node-distinct paths between any pair of nodes) and mark the nodes
whose removal would decrease it as "relevant" candidates for disconnection
sets.  The paper rejects the idea because it is computation intensive and
confused by cycles in the fragmentation graph — but it is part of the system
description, so we implement it (it also powers the
:class:`~repro.fragmentation.kconnectivity.KConnectivityFragmenter` ablation).

The implementation uses max-flow with unit node capacities (node splitting)
via BFS augmentation (Edmonds-Karp), which is adequate for the graph sizes in
the paper's evaluation (up to a few hundred nodes).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from .digraph import DiGraph
from .traversal import is_reachable, weakly_connected_components

Node = Hashable


def _unit_capacity_flow_network(graph: DiGraph, source: Node, target: Node) -> Dict[object, Dict[object, int]]:
    """Build a node-split flow network for vertex-disjoint path counting.

    Every node ``v`` other than the terminals becomes ``(v, 'in')`` and
    ``(v, 'out')`` joined by a unit-capacity arc; every undirected adjacency
    becomes two unit-capacity arcs between the corresponding out/in copies.
    """
    capacity: Dict[object, Dict[object, int]] = {}

    def add_arc(u: object, v: object, cap: int) -> None:
        capacity.setdefault(u, {})[v] = capacity.get(u, {}).get(v, 0) + cap
        capacity.setdefault(v, {}).setdefault(u, 0)

    for node in graph.nodes():
        if node in (source, target):
            continue
        add_arc((node, "in"), (node, "out"), 1)

    def out_copy(node: Node) -> object:
        return "SRC" if node == source else "SNK" if node == target else (node, "out")

    def in_copy(node: Node) -> object:
        return "SRC" if node == source else "SNK" if node == target else (node, "in")

    for a, b in graph.to_undirected_pairs():
        # Undirected adjacency: allow flow in both directions.
        big = graph.node_count() + 1
        if a == source or b == target:
            add_arc(out_copy(a), in_copy(b), big if (a == source and b == target) else 1)
        add_arc(out_copy(a), in_copy(b), 0)
        add_arc(out_copy(b), in_copy(a), 0)
        # Unit capacity for traversing the adjacency either way.
        capacity[out_copy(a)][in_copy(b)] = max(capacity[out_copy(a)][in_copy(b)], 1)
        capacity[out_copy(b)][in_copy(a)] = max(capacity[out_copy(b)][in_copy(a)], 1)
    return capacity


def _max_flow(capacity: Dict[object, Dict[object, int]], source: object, sink: object) -> int:
    """Edmonds-Karp max flow on an adjacency-dict capacity network."""
    flow = 0
    while True:
        # BFS for an augmenting path.
        parents: Dict[object, object] = {source: source}
        queue: deque = deque([source])
        while queue and sink not in parents:
            u = queue.popleft()
            for v, cap in capacity.get(u, {}).items():
                if cap > 0 and v not in parents:
                    parents[v] = u
                    queue.append(v)
        if sink not in parents:
            return flow
        # Find bottleneck.
        bottleneck = None
        v = sink
        while v != source:
            u = parents[v]
            cap = capacity[u][v]
            bottleneck = cap if bottleneck is None else min(bottleneck, cap)
            v = u
        # Augment.
        v = sink
        while v != source:
            u = parents[v]
            capacity[u][v] -= bottleneck  # type: ignore[operator]
            capacity.setdefault(v, {}).setdefault(u, 0)
            capacity[v][u] += bottleneck  # type: ignore[operator]
            v = u
        flow += bottleneck  # type: ignore[assignment]


def vertex_disjoint_path_count(graph: DiGraph, source: Node, target: Node) -> int:
    """Return the number of internally node-disjoint paths between two nodes.

    Adjacent nodes are considered to have ``node_count`` disjoint paths (their
    direct edge cannot be cut by removing other nodes); this mirrors Menger's
    theorem convention and keeps :func:`k_connectivity` well defined.
    """
    if source == target:
        raise ValueError("source and target must differ")
    undirected_pairs = graph.to_undirected_pairs()
    key = (source, target) if repr(source) <= repr(target) else (target, source)
    if key in undirected_pairs:
        return graph.node_count()
    capacity = _unit_capacity_flow_network(graph, source, target)
    return _max_flow(capacity, "SRC", "SNK")


def local_vertex_cut(graph: DiGraph, source: Node, target: Node) -> Set[Node]:
    """Return a minimum set of nodes whose removal disconnects ``source`` from ``target``.

    For non-adjacent nodes the size of the returned cut equals
    :func:`vertex_disjoint_path_count`.  For adjacent nodes an empty set is
    returned (no vertex cut exists).
    """
    undirected_pairs = graph.to_undirected_pairs()
    key = (source, target) if repr(source) <= repr(target) else (target, source)
    if key in undirected_pairs:
        return set()
    best_cut: Set[Node] = set()
    target_size = vertex_disjoint_path_count(graph, source, target)
    if target_size == 0:
        return set()
    # Greedy extraction: repeatedly find a node whose removal decreases the
    # disjoint path count, remove it, until the pair is disconnected.
    working = graph.copy()
    while is_reachable(working, source, target, undirected=True):
        candidates = [n for n in working.nodes() if n not in (source, target)]
        removed = None
        current = vertex_disjoint_path_count(working, source, target)
        for node in candidates:
            trial = working.copy()
            trial.remove_node(node)
            if not is_reachable(trial, source, target, undirected=True) or (
                vertex_disjoint_path_count(trial, source, target) < current
            ):
                removed = node
                break
        if removed is None:
            break
        best_cut.add(removed)
        working.remove_node(removed)
    return best_cut


def k_connectivity(graph: DiGraph, *, sample_pairs: Optional[int] = None, seed: int = 0) -> int:
    """Return the vertex connectivity of the (undirected view of the) graph.

    This is the paper's *k-connectivity*: the smallest number of node-distinct
    paths over all node pairs.  For graphs that are not connected the result
    is 0.  ``sample_pairs`` bounds the number of pairs examined (uniformly
    sampled with ``seed``) because exact computation over all pairs is
    quadratic in Dijkstra-sized flow computations — the very cost that made
    the paper abandon this approach.
    """
    import random

    nodes = graph.nodes()
    if len(nodes) <= 1:
        return 0
    if len(weakly_connected_components(graph)) > 1:
        return 0
    pairs: List[Tuple[Node, Node]] = [
        (nodes[i], nodes[j]) for i in range(len(nodes)) for j in range(i + 1, len(nodes))
    ]
    if sample_pairs is not None and sample_pairs < len(pairs):
        rng = random.Random(seed)
        pairs = rng.sample(pairs, sample_pairs)
    best = None
    for source, target in pairs:
        count = vertex_disjoint_path_count(graph, source, target)
        count = min(count, len(nodes) - 2) if count >= len(nodes) else count
        best = count if best is None else min(best, count)
        if best == 1:
            break
    return best if best is not None else 0


def relevant_nodes(graph: DiGraph, *, sample_pairs: Optional[int] = None, seed: int = 0) -> Set[Node]:
    """Return the nodes whose removal decreases the graph's k-connectivity.

    These are the "relevant" nodes of the paper's rejected first idea: good
    candidates for disconnection sets because they sit on every minimal
    node-cut.  Articulation points are always relevant; for higher
    connectivity we test node removals explicitly.
    """
    base = k_connectivity(graph, sample_pairs=sample_pairs, seed=seed)
    relevant: Set[Node] = set()
    for node in graph.nodes():
        trial = graph.copy()
        trial.remove_node(node)
        if trial.node_count() <= 1:
            continue
        if k_connectivity(trial, sample_pairs=sample_pairs, seed=seed) < base:
            relevant.add(node)
    return relevant


def articulation_points(graph: DiGraph) -> Set[Node]:
    """Return the articulation points of the undirected view of the graph.

    A node is an articulation point if its removal increases the number of
    weakly connected components.  Computed with the linear-time Hopcroft-
    Tarjan low-link algorithm (iterative).
    """
    adjacency: Dict[Node, List[Node]] = {node: graph.neighbors(node) for node in graph.nodes()}
    visited: Set[Node] = set()
    depth: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Optional[Node]] = {}
    points: Set[Node] = set()

    for root in adjacency:
        if root in visited:
            continue
        stack: List[Tuple[Node, int]] = [(root, 0)]
        parent[root] = None
        order: List[Node] = []
        while stack:
            node, child_index = stack.pop()
            if child_index == 0:
                visited.add(node)
                depth[node] = low[node] = len(order)
                order.append(node)
            children = adjacency[node]
            if child_index < len(children):
                stack.append((node, child_index + 1))
                child = children[child_index]
                if child not in visited:
                    parent[child] = node
                    stack.append((child, 0))
                elif child != parent.get(node):
                    low[node] = min(low[node], depth[child])
            else:
                p = parent.get(node)
                if p is not None:
                    low[p] = min(low[p], low[node])
                    if low[node] >= depth[p] and parent.get(p) is not None:
                        points.add(p)
        # Root is an articulation point if it has more than one DFS child.
        root_children = sum(1 for node in adjacency if parent.get(node) == root)
        if root_children > 1:
            points.add(root)
    return points
