"""Graph traversals: breadth-first, depth-first, and connected components.

These are the building blocks the fragmentation algorithms and the metrics
module use: fragment growth is a breadth-first expansion from seed nodes, the
fragmentation graph's cycle analysis needs connected components, and fragment
diameters are computed with per-source BFS.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set

from .digraph import DiGraph

Node = Hashable


def bfs_order(graph: DiGraph, source: Node, *, undirected: bool = False) -> List[Node]:
    """Return the nodes reachable from ``source`` in breadth-first order.

    Args:
        graph: the graph to traverse.
        source: the start node.
        undirected: when ``True`` edges are followed in both directions, which
            is how fragments grow in the fragmentation algorithms.
    """
    neighbour_fn: Callable[[Node], List[Node]] = graph.neighbors if undirected else graph.successors
    visited: Set[Node] = {source}
    order: List[Node] = [source]
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in neighbour_fn(node):
            if neighbour not in visited:
                visited.add(neighbour)
                order.append(neighbour)
                queue.append(neighbour)
    return order


def bfs_levels(graph: DiGraph, source: Node, *, undirected: bool = False) -> Dict[Node, int]:
    """Return the hop distance from ``source`` to every reachable node."""
    neighbour_fn: Callable[[Node], List[Node]] = graph.neighbors if undirected else graph.successors
    levels: Dict[Node, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in neighbour_fn(node):
            if neighbour not in levels:
                levels[neighbour] = levels[node] + 1
                queue.append(neighbour)
    return levels


def dfs_order(graph: DiGraph, source: Node, *, undirected: bool = False) -> List[Node]:
    """Return the nodes reachable from ``source`` in depth-first (preorder)."""
    neighbour_fn: Callable[[Node], List[Node]] = graph.neighbors if undirected else graph.successors
    visited: Set[Node] = set()
    order: List[Node] = []
    stack: List[Node] = [source]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        order.append(node)
        # Reverse so that the first neighbour is visited first, mirroring the
        # recursive formulation.
        for neighbour in reversed(neighbour_fn(node)):
            if neighbour not in visited:
                stack.append(neighbour)
    return order


def reachable_set(graph: DiGraph, source: Node, *, undirected: bool = False) -> Set[Node]:
    """Return the set of nodes reachable from ``source`` (including it)."""
    return set(bfs_order(graph, source, undirected=undirected))


def is_reachable(graph: DiGraph, source: Node, target: Node, *, undirected: bool = False) -> bool:
    """Return ``True`` if ``target`` is reachable from ``source``."""
    if source == target:
        return graph.has_node(source)
    neighbour_fn: Callable[[Node], List[Node]] = graph.neighbors if undirected else graph.successors
    visited: Set[Node] = {source}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in neighbour_fn(node):
            if neighbour == target:
                return True
            if neighbour not in visited:
                visited.add(neighbour)
                queue.append(neighbour)
    return False


def weakly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Return the weakly connected components of the graph.

    Two nodes are in the same weak component when they are connected by a path
    that ignores edge direction.  Components are returned in order of their
    smallest-index node (insertion order of the graph).
    """
    remaining: Set[Node] = set(graph.nodes())
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node not in remaining:
            continue
        component = set(bfs_order(graph, node, undirected=True))
        components.append(component)
        remaining -= component
    return components


def is_weakly_connected(graph: DiGraph) -> bool:
    """Return ``True`` if the graph has at most one weak component."""
    return len(weakly_connected_components(graph)) <= 1


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Return the strongly connected components (iterative Tarjan algorithm)."""
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[Set[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        work: List[tuple] = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def topological_sort(graph: DiGraph) -> Optional[List[Node]]:
    """Return a topological order of the nodes, or ``None`` if the graph has a cycle."""
    in_degree: Dict[Node, int] = {node: graph.in_degree(node) for node in graph.nodes()}
    queue: deque = deque(node for node, degree in in_degree.items() if degree == 0)
    order: List[Node] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                queue.append(successor)
    if len(order) != graph.node_count():
        return None
    return order


def has_cycle(graph: DiGraph) -> bool:
    """Return ``True`` if the directed graph contains a cycle."""
    return topological_sort(graph) is None


def undirected_cycle_count(graph: DiGraph) -> int:
    """Return the number of independent cycles of the underlying undirected graph.

    This is the circuit rank ``|E| - |V| + C`` (with ``C`` the number of weak
    components and ``|E|`` counting each symmetric pair once).  The paper uses
    the presence of cycles in the *fragmentation graph* as one of its three
    design criteria; the circuit rank quantifies "how cyclic" a fragmentation
    graph is.
    """
    edge_count = len(graph.to_undirected_pairs())
    node_count = graph.node_count()
    component_count = len(weakly_connected_components(graph))
    return max(0, edge_count - node_count + component_count)


def iter_edges_bidirectional(graph: DiGraph, node: Node) -> Iterator[tuple]:
    """Yield every edge incident to ``node`` as stored (direction preserved)."""
    for target, weight in graph.successor_items(node):
        yield (node, target, weight)
    for source, weight in graph.predecessor_items(node):
        yield (source, node, weight)
