"""Center scores: the weighted neighbourhood formula of Sec. 3.1.

The center-based fragmentation algorithm selects "centers" — gravity points of
the graph, "very much like spiders in a web" — using a variation of Hoede's
status score.  For a node ``i`` the score is::

    score(i) = grade(i) + a * sum_j nb(j, 1) + a^2 * sum_j nb(j, 2) + a^3 * sum_j nb(j, 3)

where ``grade(i)`` is the number of edges adjacent to ``i``, ``nb(j, d)`` is
the grade of node ``j`` at exactly ``d`` edges from ``i``, and ``a < 1`` is an
attenuation factor.  The paper truncates the sum at distance 3; we keep that
as the default but allow a configurable radius.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from .digraph import DiGraph
from .traversal import bfs_levels

Node = Hashable

DEFAULT_ATTENUATION = 0.5
DEFAULT_RADIUS = 3


def grade(graph: DiGraph, node: Node) -> int:
    """Return the paper's ``grade(i)``: the number of distinct neighbours of ``node``.

    The paper treats the transportation network as an undirected graph when
    scoring centers, so both incoming and outgoing edges count, but a
    symmetric pair counts once.
    """
    return graph.undirected_degree(node)


def status_score(
    graph: DiGraph,
    node: Node,
    *,
    attenuation: float = DEFAULT_ATTENUATION,
    radius: int = DEFAULT_RADIUS,
) -> float:
    """Return the center score of ``node``.

    Args:
        graph: the graph being fragmented.
        node: the node to score.
        attenuation: the factor ``a`` (< 1) weighting more distant neighbours
            less.  Values >= 1 are accepted but defeat the purpose.
        radius: how many rings of neighbours to include (the paper uses 3).

    Returns:
        The weighted sum of neighbourhood grades.
    """
    levels = bfs_levels(graph, node, undirected=True)
    score = float(grade(graph, node))
    for other, distance in levels.items():
        if other == node or distance > radius:
            continue
        score += (attenuation ** distance) * grade(graph, other)
    return score


def status_scores(
    graph: DiGraph,
    *,
    attenuation: float = DEFAULT_ATTENUATION,
    radius: int = DEFAULT_RADIUS,
) -> Dict[Node, float]:
    """Return the center score of every node in the graph."""
    return {
        node: status_score(graph, node, attenuation=attenuation, radius=radius)
        for node in graph.nodes()
    }


def rank_by_status(
    graph: DiGraph,
    *,
    attenuation: float = DEFAULT_ATTENUATION,
    radius: int = DEFAULT_RADIUS,
) -> List[Node]:
    """Return all nodes ordered by decreasing center score.

    Ties are broken deterministically by node ``repr`` so that repeated runs
    on the same graph return the same ranking.
    """
    scores = status_scores(graph, attenuation=attenuation, radius=radius)
    return sorted(scores, key=lambda node: (-scores[node], repr(node)))


def top_candidates(
    graph: DiGraph,
    count: int,
    *,
    pool_factor: float = 3.0,
    attenuation: float = DEFAULT_ATTENUATION,
    radius: int = DEFAULT_RADIUS,
) -> Sequence[Node]:
    """Return a candidate pool of high-score nodes for center selection.

    The paper first computes a *group of possible centers* with the weight
    function and then selects the actual centers from that group (randomly in
    the first variant, coordinate-spread in the "distributed centers"
    variant).  ``pool_factor`` controls how much larger than ``count`` the
    candidate pool is.
    """
    if count <= 0:
        return []
    pool_size = max(count, int(round(count * pool_factor)))
    ranking = rank_by_status(graph, attenuation=attenuation, radius=radius)
    return ranking[:pool_size]
