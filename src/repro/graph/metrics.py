"""Structural graph metrics used throughout the fragmentation study.

The paper's workload model (Sec. 2.2) boils the cost of a per-fragment
transitive closure down to two ingredients: the *diameter* of the fragment
(number of semi-naive iterations) and the *number of tuples* (size of the
intermediate results, driven by connectivity).  This module computes those
quantities plus the auxiliary statistics the evaluation tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

from .digraph import DiGraph
from .shortest_path import hop_diameter
from .traversal import weakly_connected_components

Node = Hashable


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural summary of a graph."""

    node_count: int
    edge_count: int
    undirected_edge_count: int
    weak_component_count: int
    diameter: int
    average_degree: float
    density: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary (for reporting)."""
        return {
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "undirected_edge_count": self.undirected_edge_count,
            "weak_component_count": self.weak_component_count,
            "diameter": self.diameter,
            "average_degree": self.average_degree,
            "density": self.density,
        }


def summarize(graph: DiGraph) -> GraphSummary:
    """Return a :class:`GraphSummary` for ``graph``."""
    n = graph.node_count()
    directed_edges = graph.edge_count()
    undirected_edges = graph.undirected_edge_count()
    components = len(weakly_connected_components(graph))
    diameter = hop_diameter(graph) if n else 0
    average_degree = (2.0 * undirected_edges / n) if n else 0.0
    possible = n * (n - 1)
    density = (directed_edges / possible) if possible else 0.0
    return GraphSummary(
        node_count=n,
        edge_count=directed_edges,
        undirected_edge_count=undirected_edges,
        weak_component_count=components,
        diameter=diameter,
        average_degree=average_degree,
        density=density,
    )


def degree_histogram(graph: DiGraph) -> Dict[int, int]:
    """Return a histogram mapping undirected degree to node count."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.undirected_degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: DiGraph) -> float:
    """Return the mean undirected degree (0.0 for an empty graph)."""
    nodes = graph.nodes()
    if not nodes:
        return 0.0
    return sum(graph.undirected_degree(node) for node in nodes) / len(nodes)


def mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean of ``values`` (0.0 when empty)."""
    return sum(values) / len(values) if values else 0.0


def mean_absolute_deviation(values: Sequence[float]) -> float:
    """Return the mean absolute deviation from the mean.

    This is the deviation measure the paper's Tables 1-3 report as ``AF``
    (deviation of fragment sizes) and ``ADS`` (deviation of disconnection set
    sizes): the average distance of each observation from the average.
    """
    if not values:
        return 0.0
    centre = mean(values)
    return sum(abs(value - centre) for value in values) / len(values)


def standard_deviation(values: Sequence[float]) -> float:
    """Return the population standard deviation of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / len(values))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Return the standard deviation divided by the mean (0.0 for mean 0)."""
    centre = mean(values)
    if centre == 0:
        return 0.0
    return standard_deviation(values) / centre


def diameter(graph: DiGraph) -> int:
    """Return the hop diameter of ``graph`` (longest shortest path, in edges)."""
    return hop_diameter(graph)


def estimated_seminaive_iterations(graph: DiGraph) -> int:
    """Estimate the number of semi-naive iterations a TC of ``graph`` needs.

    Semi-naive evaluation reaches its fixpoint after ``diameter`` iterations
    (plus the final empty delta); the paper uses exactly this quantity to
    argue that fragmenting a graph reduces per-processor iteration counts.
    """
    return hop_diameter(graph) + 1 if graph.node_count() else 0


def clustering_ratio(graph: DiGraph, clusters: List[set]) -> float:
    """Return the fraction of undirected edges that stay inside a cluster.

    Transportation graphs are characterised by a high intra-cluster ratio;
    the generator tests use this to verify the produced structure.
    """
    pairs = graph.to_undirected_pairs()
    if not pairs:
        return 0.0
    membership: Dict[Node, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            membership[node] = index
    internal = sum(
        1
        for a, b in pairs
        if a in membership and b in membership and membership[a] == membership[b]
    )
    return internal / len(pairs)
