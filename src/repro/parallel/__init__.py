"""Parallel execution substrate: cost model, simulator, scheduler, real executor.

The paper's PRISMA/DB multiprocessor is substituted by a simulator whose cost
model is expressed in the paper's own workload quantities (iterations,
intermediate tuples, assembly joins); a multiprocessing-based executor runs
the independent local subqueries as real OS processes for end-to-end
validation.
"""

from .cost_model import CostModel
from .executor import MultiprocessQueryExecutor, ParallelAnswer
from .scheduler import (
    POLICY_LPT,
    POLICY_ROUND_ROBIN,
    Assignment,
    assign_fragments,
    one_processor_per_fragment,
)
from .simulator import ParallelSimulator, QuerySimulation, WorkloadSimulation
from .speedup import SpeedupPoint, compare_fragmenters, speedup_curve

__all__ = [
    "Assignment",
    "CostModel",
    "MultiprocessQueryExecutor",
    "POLICY_LPT",
    "POLICY_ROUND_ROBIN",
    "ParallelAnswer",
    "ParallelSimulator",
    "QuerySimulation",
    "SpeedupPoint",
    "WorkloadSimulation",
    "assign_fragments",
    "compare_fragmenters",
    "one_processor_per_fragment",
    "speedup_curve",
]
