"""Mapping fragments to processors.

The paper assumes one processor per fragment ("each stored at a different
computer or processor"), but the number of fragments a fragmentation algorithm
produces and the number of processors available need not match.  The scheduler
assigns fragments to a fixed pool of processors; the simulator then charges a
processor with the sum of the work of the fragments placed on it.

Two policies are provided: round-robin (placement oblivious to size) and LPT
(longest processing time first — the classical greedy makespan heuristic,
which places the largest fragment on the least loaded processor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from ..exceptions import SchedulingError

POLICY_ROUND_ROBIN = "round_robin"
POLICY_LPT = "lpt"


@dataclass
class Assignment:
    """A fragment-to-processor assignment.

    Attributes:
        processor_of: fragment id -> processor index.
        processor_count: number of processors used.
    """

    processor_of: Dict[int, int] = field(default_factory=dict)
    processor_count: int = 0

    def fragments_on(self, processor: int) -> List[int]:
        """Return the fragments placed on ``processor``."""
        return sorted(f for f, p in self.processor_of.items() if p == processor)

    def processor_loads(self, fragment_costs: Mapping[int, float]) -> List[float]:
        """Return the summed cost per processor under ``fragment_costs``."""
        loads = [0.0] * self.processor_count
        for fragment_id, processor in self.processor_of.items():
            loads[processor] += fragment_costs.get(fragment_id, 0.0)
        return loads

    def makespan(self, fragment_costs: Mapping[int, float]) -> float:
        """Return the largest processor load (parallel completion time)."""
        loads = self.processor_loads(fragment_costs)
        return max(loads) if loads else 0.0


def assign_fragments(
    fragment_costs: Mapping[int, float],
    processor_count: int,
    *,
    policy: str = POLICY_LPT,
) -> Assignment:
    """Assign fragments to ``processor_count`` processors.

    Args:
        fragment_costs: estimated cost (e.g. edge count or simulated work) per
            fragment id.
        processor_count: number of available processors (>= 1).
        policy: ``"lpt"`` or ``"round_robin"``.

    Raises:
        SchedulingError: on an invalid processor count or unknown policy.
    """
    if processor_count <= 0:
        raise SchedulingError("processor_count must be positive")
    if policy not in (POLICY_ROUND_ROBIN, POLICY_LPT):
        raise SchedulingError(f"unknown scheduling policy {policy!r}")
    assignment = Assignment(processor_count=processor_count)
    fragments = sorted(fragment_costs)
    if policy == POLICY_ROUND_ROBIN:
        for index, fragment_id in enumerate(fragments):
            assignment.processor_of[fragment_id] = index % processor_count
        return assignment
    # LPT: biggest fragment first onto the least-loaded processor.
    loads = [0.0] * processor_count
    for fragment_id in sorted(fragments, key=lambda f: (-fragment_costs[f], f)):
        target = min(range(processor_count), key=lambda p: (loads[p], p))
        assignment.processor_of[fragment_id] = target
        loads[target] += fragment_costs[fragment_id]
    return assignment


def one_processor_per_fragment(fragment_ids: Sequence[int]) -> Assignment:
    """Return the paper's default placement: fragment ``i`` on processor ``i``."""
    assignment = Assignment(processor_count=len(fragment_ids))
    for index, fragment_id in enumerate(sorted(fragment_ids)):
        assignment.processor_of[fragment_id] = index
    return assignment
