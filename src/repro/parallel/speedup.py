"""Speed-up and iteration-reduction analysis.

Section 2.1 of the paper makes two figure-level performance claims that the
benchmarks regenerate:

* "For good fragmentations, it gives a linear speed-up" — measured here as
  simulated sequential cost over simulated parallel makespan as the number of
  fragments grows.
* "An important speed-up factor is due to the reduced number of iterations
  required to compute each recursive query independently ... the diameter of
  each subgraph is highly reduced" — measured as the ratio between the
  diameter of the whole graph and the largest fragment diameter.

This module computes both curves for any fragmenter/graph combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from ..closure import Semiring, shortest_path_semiring
from ..fragmentation import Fragmentation, Fragmenter, fragment_diameters
from ..generators import PathQuery
from ..graph import DiGraph, hop_diameter
from .cost_model import CostModel
from .simulator import ParallelSimulator, WorkloadSimulation

Node = Hashable


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a speed-up curve.

    Attributes:
        fragment_count: number of fragments / processors at this point.
        parallel_time: total simulated parallel time over the workload.
        sequential_time: total simulated single-processor time.
        speedup: sequential / parallel.
        max_fragment_diameter: the largest fragment diameter (iteration proxy).
        graph_diameter: the diameter of the unfragmented graph.
    """

    fragment_count: int
    parallel_time: float
    sequential_time: float
    speedup: float
    max_fragment_diameter: int
    graph_diameter: int

    def iteration_reduction(self) -> float:
        """Return graph diameter / max fragment diameter (>= 1 for good fragmentations)."""
        if self.max_fragment_diameter <= 0:
            return float(self.graph_diameter) if self.graph_diameter else 1.0
        return self.graph_diameter / self.max_fragment_diameter


def speedup_curve(
    graph: DiGraph,
    fragmenter_factory: Callable[[int], Fragmenter],
    fragment_counts: Sequence[int],
    queries: Sequence[PathQuery],
    *,
    semiring: Optional[Semiring] = None,
    cost_model: Optional[CostModel] = None,
) -> List[SpeedupPoint]:
    """Compute the speed-up curve over a range of fragment counts.

    Args:
        graph: the graph to fragment and query.
        fragmenter_factory: maps a fragment count to a configured fragmenter
            (e.g. ``lambda n: CenterBasedFragmenter(n, center_selection="distributed")``).
        fragment_counts: the x-axis of the curve.
        queries: the query workload evaluated at every point.
        semiring: the path problem (defaults to shortest paths).
        cost_model: the simulator cost model.
    """
    semiring = semiring or shortest_path_semiring()
    cost_model = cost_model or CostModel()
    graph_diameter = hop_diameter(graph)
    points: List[SpeedupPoint] = []
    for count in fragment_counts:
        fragmenter = fragmenter_factory(count)
        fragmentation = fragmenter.fragment(graph)
        simulator = ParallelSimulator(
            fragmentation, semiring=semiring, cost_model=cost_model
        )
        workload = simulator.simulate_workload(queries)
        diameters = fragment_diameters(fragmentation)
        points.append(
            SpeedupPoint(
                fragment_count=fragmentation.fragment_count(),
                parallel_time=workload.total_parallel_time,
                sequential_time=workload.total_sequential_time,
                speedup=workload.overall_speedup(),
                max_fragment_diameter=max(diameters) if diameters else 0,
                graph_diameter=graph_diameter,
            )
        )
    return points


def compare_fragmenters(
    graph: DiGraph,
    fragmenters: Dict[str, Fragmenter],
    queries: Sequence[PathQuery],
    *,
    semiring: Optional[Semiring] = None,
    cost_model: Optional[CostModel] = None,
) -> Dict[str, WorkloadSimulation]:
    """Simulate the same workload under several fragmentations and return per-name results.

    This is the experiment the paper defers to its PRISMA follow-up work
    ("experiments will show which of the characteristics ... is of main
    importance"): the query-cost consequences of the fragmentation choice.
    """
    semiring = semiring or shortest_path_semiring()
    cost_model = cost_model or CostModel()
    results: Dict[str, WorkloadSimulation] = {}
    for name, fragmenter in fragmenters.items():
        fragmentation = fragmenter.fragment(graph)
        simulator = ParallelSimulator(fragmentation, semiring=semiring, cost_model=cost_model)
        results[name] = simulator.simulate_workload(queries, include_centralized_baseline=True)
    return results
