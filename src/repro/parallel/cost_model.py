"""Cost model for the simulated multiprocessor database machine.

The paper's experiments ran on PRISMA/DB, a shared-nothing multiprocessor
database machine we do not have; we substitute a cost model expressed in the
quantities the paper itself uses to reason about workload (Sec. 2.2):

* the number of fixpoint **iterations** a site executes, driven by the
  diameter of its fragment ("the number of iterations depends on the diameter
  of a fragment"),
* the number of **tuples** its intermediate results contain ("the size of
  intermediate results depends on the connectivity of the graph"),
* the number of **join/communication** operations of the final assembly.

A :class:`CostModel` turns those counters into abstract time units; the
defaults weight a produced tuple as the unit of work, charge a per-iteration
synchronisation overhead, and make assembly joins cheap (they operate on very
small relations and can be pipelined, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from ..disconnection import ExecutionReport, SiteWork


@dataclass(frozen=True)
class CostModel:
    """Abstract-time cost model.

    Attributes:
        tuple_cost: cost of producing one tuple in a local fixpoint.
        iteration_cost: fixed overhead per fixpoint iteration (loop/sync).
        subquery_cost: fixed overhead per local subquery started at a site.
        join_cost: cost per binary assembly join at the coordinator.
        assembly_tuple_cost: cost per tuple flowing through assembly joins.
        message_cost: cost of shipping one local result to the coordinator.
    """

    tuple_cost: float = 1.0
    iteration_cost: float = 5.0
    subquery_cost: float = 10.0
    join_cost: float = 5.0
    assembly_tuple_cost: float = 0.5
    message_cost: float = 2.0

    def site_cost(self, work: SiteWork) -> float:
        """Return the abstract time a single site spends on its local work."""
        return (
            self.tuple_cost * work.tuples_produced
            + self.iteration_cost * work.iterations
            + self.subquery_cost * work.subqueries
        )

    def assembly_cost(self, report: ExecutionReport) -> float:
        """Return the coordinator's cost: final joins plus result shipping."""
        messages = sum(work.subqueries for work in report.site_work.values())
        return (
            self.join_cost * report.join_operations
            + self.assembly_tuple_cost * report.assembly_tuples
            + self.message_cost * messages
        )

    def site_costs(self, report: ExecutionReport) -> Dict[int, float]:
        """Return the per-site local costs of one execution report."""
        return {fragment_id: self.site_cost(work) for fragment_id, work in report.site_work.items()}

    def parallel_makespan(self, report: ExecutionReport) -> float:
        """Return the parallel elapsed time: slowest site plus the final assembly.

        The first phase needs "neither communication nor synchronisation"
        (Sec. 2.1), so its elapsed time is the maximum site cost; the assembly
        runs after all involved sites have finished.
        """
        site_costs = self.site_costs(report)
        slowest = max(site_costs.values(), default=0.0)
        return slowest + self.assembly_cost(report)

    def sequential_cost(self, report: ExecutionReport) -> float:
        """Return the cost of executing the same work on a single processor."""
        return sum(self.site_costs(report).values()) + self.assembly_cost(report)

    def closure_cost(self, iterations: int, tuples_produced: int) -> float:
        """Return the cost of a (centralised) closure run with the given counters."""
        return self.tuple_cost * tuples_produced + self.iteration_cost * iterations + self.subquery_cost
