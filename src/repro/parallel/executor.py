"""Real parallel execution of local subqueries with ``multiprocessing``.

The simulator (:mod:`repro.parallel.simulator`) charges abstract costs; this
module actually runs the independent per-fragment subqueries of a query plan
in separate worker processes, demonstrating the "no communication during the
first phase" property with real OS-level parallelism.  Processes are used
instead of threads because CPython's GIL would serialise pure-Python closure
computations in a thread pool.

The workers come from the :class:`~repro.service.pool.ResidentWorkerPool`:
they are started once, receive the fragment sites once — as compact
(CSR-array) fragments whose plain-data buffers pickle far cheaper than
dict-of-dicts subgraphs — and stay resident across queries, so repeated
queries pay only for the query specs going out and the per-fragment path
relations coming back, which is what the paper's final joins consume.  Local
evaluation inside a worker runs the bitset/array kernels of
:mod:`repro.closure.kernels` over those compact fragments.  Call
:meth:`close` (or use a ``with`` block) to release the workers.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Hashable, Optional

from ..closure import Semiring, shortest_path_semiring
from ..disconnection import (
    QueryPlanner,
    assemble_best_chain,
    collect_task_keys,
)
from ..disconnection.catalog import DistributedCatalog
from ..fragmentation import Fragmentation
from ..service.pool import PICKLABLE_SEMIRINGS, ResidentWorkerPool

Node = Hashable


@dataclass
class ParallelAnswer:
    """Answer produced by the multiprocessing executor."""

    source: Node
    target: Node
    value: Optional[object]
    worker_count: int
    subqueries_executed: int


class MultiprocessQueryExecutor:
    """Execute disconnection-set query plans with a pool of worker processes.

    Args:
        fragmentation: the deployed fragmentation.
        semiring: the path problem (defaults to shortest paths); only the two
            standard semirings are supported because semiring callables do not
            pickle.
        processes: number of worker processes (defaults to the fragment count,
            capped at the CPU count).

    The pool is created on the first query and reused afterwards; the
    executor can be used as a context manager to release it deterministically.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        processes: Optional[int] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        if self._semiring.name not in PICKLABLE_SEMIRINGS:
            raise ValueError(
                "the multiprocessing executor supports "
                f"{' and '.join(PICKLABLE_SEMIRINGS)} only"
            )
        self._catalog = DistributedCatalog(fragmentation, semiring=self._semiring)
        self._planner = QueryPlanner(self._catalog)
        default_processes = min(fragmentation.fragment_count(), multiprocessing.cpu_count())
        self._processes = max(1, processes if processes is not None else default_processes)
        self._pool: Optional[ResidentWorkerPool] = None

    def query(self, source: Node, target: Node) -> ParallelAnswer:
        """Answer a query by fanning the local subqueries out to the resident workers."""
        plan = self._planner.plan(source, target)
        tasks, _ = collect_task_keys([plan])
        results = self._ensure_pool().evaluate(tasks)
        value, _ = assemble_best_chain(plan, results, semiring=self._semiring)
        return ParallelAnswer(
            source=source,
            target=target,
            value=value,
            worker_count=self._processes,
            subqueries_executed=len(tasks),
        )

    def close(self) -> None:
        """Terminate the resident workers (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "MultiprocessQueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- internals

    def _ensure_pool(self) -> ResidentWorkerPool:
        if self._pool is None:
            self._pool = ResidentWorkerPool(self._catalog, processes=self._processes)
        return self._pool
