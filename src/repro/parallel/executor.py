"""Real parallel execution of local subqueries with ``multiprocessing``.

The simulator (:mod:`repro.parallel.simulator`) charges abstract costs; this
module actually runs the independent per-fragment subqueries of a query plan
in separate worker processes, demonstrating the "no communication during the
first phase" property with real OS-level parallelism.  Processes are used
instead of threads because CPython's GIL would serialise pure-Python closure
computations in a thread pool.

Notes on fidelity: each worker receives its fragment site (subgraph +
shortcuts) once, mirroring the shared-nothing placement of fragments on
PRISMA/DB nodes; per-query messages contain only the query specs and the
per-fragment path relations, which is what the paper's final joins consume.
For the small fragments of the paper's workloads the process start-up cost
dominates, so the simulator remains the vehicle for the speed-up experiments;
the executor exists to validate the parallel decomposition end to end.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..disconnection import (
    DisconnectionSetEngine,
    LocalQueryEvaluator,
    LocalQueryResult,
    QueryPlan,
    QueryPlanner,
    assemble_chain,
    best_over_chains,
)
from ..disconnection.catalog import DistributedCatalog, FragmentSite
from ..fragmentation import Fragmentation

Node = Hashable

# Module-level worker state, initialised once per worker process.
_WORKER_SITES: Dict[int, FragmentSite] = {}
_WORKER_EVALUATOR: Optional[LocalQueryEvaluator] = None


def _worker_init(sites: List[FragmentSite], semiring_name: str) -> None:
    """Initialise a worker process with its sites and evaluator."""
    global _WORKER_SITES, _WORKER_EVALUATOR
    from ..closure import reachability_semiring, shortest_path_semiring

    _WORKER_SITES = {site.fragment_id: site for site in sites}
    semiring = reachability_semiring() if semiring_name == "reachability" else shortest_path_semiring()
    _WORKER_EVALUATOR = LocalQueryEvaluator(semiring=semiring)


def _worker_evaluate(task: Tuple[int, FrozenSet[Node], FrozenSet[Node]]) -> Tuple[Tuple[int, FrozenSet[Node], FrozenSet[Node]], Dict]:
    """Evaluate one local query spec inside a worker process."""
    from ..disconnection.planner import LocalQuerySpec

    fragment_id, entry_nodes, exit_nodes = task
    spec = LocalQuerySpec(fragment_id=fragment_id, entry_nodes=entry_nodes, exit_nodes=exit_nodes)
    assert _WORKER_EVALUATOR is not None
    result = _WORKER_EVALUATOR.evaluate(_WORKER_SITES[fragment_id], spec)
    # Ship back a plain dict; LocalQueryResult contains only picklable data but
    # keeping the wire format explicit makes the message size obvious.
    return task, {
        "values": dict(result.values),
        "iterations": result.estimated_iterations,
        "tuples": result.statistics.tuples_produced,
    }


@dataclass
class ParallelAnswer:
    """Answer produced by the multiprocessing executor."""

    source: Node
    target: Node
    value: Optional[object]
    worker_count: int
    subqueries_executed: int


class MultiprocessQueryExecutor:
    """Execute disconnection-set query plans with a pool of worker processes.

    Args:
        fragmentation: the deployed fragmentation.
        semiring: the path problem (defaults to shortest paths); only the two
            standard semirings are supported because semiring callables do not
            pickle.
        processes: number of worker processes (defaults to the fragment count,
            capped at the CPU count).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        processes: Optional[int] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        if self._semiring.name not in ("shortest_path", "reachability"):
            raise ValueError("the multiprocessing executor supports shortest_path and reachability only")
        self._catalog = DistributedCatalog(fragmentation, semiring=self._semiring)
        self._planner = QueryPlanner(self._catalog)
        default_processes = min(fragmentation.fragment_count(), multiprocessing.cpu_count())
        self._processes = max(1, processes if processes is not None else default_processes)

    def query(self, source: Node, target: Node) -> ParallelAnswer:
        """Answer a query by fanning the local subqueries out to worker processes."""
        plan = self._planner.plan(source, target)
        tasks = self._collect_tasks(plan)
        results = self._run_tasks(tasks)
        value = self._assemble(plan, results)
        return ParallelAnswer(
            source=source,
            target=target,
            value=value,
            worker_count=self._processes,
            subqueries_executed=len(tasks),
        )

    # ------------------------------------------------------------- internals

    def _collect_tasks(self, plan: QueryPlan) -> List[Tuple[int, FrozenSet[Node], FrozenSet[Node]]]:
        tasks = []
        seen = set()
        for chain_plan in plan.chains:
            for spec in chain_plan.local_queries:
                key = (spec.fragment_id, spec.entry_nodes, spec.exit_nodes)
                if key not in seen:
                    seen.add(key)
                    tasks.append(key)
        return tasks

    def _run_tasks(self, tasks: List[Tuple[int, FrozenSet[Node], FrozenSet[Node]]]) -> Dict:
        sites = self._catalog.sites()
        results: Dict = {}
        if not tasks:
            return results
        with multiprocessing.Pool(
            processes=self._processes,
            initializer=_worker_init,
            initargs=(sites, self._semiring.name),
        ) as pool:
            for key, payload in pool.map(_worker_evaluate, tasks):
                results[key] = payload
        return results

    def _assemble(self, plan: QueryPlan, results: Dict) -> Optional[object]:
        from ..closure import ClosureStatistics

        assemblies = []
        for chain_plan in plan.chains:
            local_results: List[LocalQueryResult] = []
            for spec in chain_plan.local_queries:
                key = (spec.fragment_id, spec.entry_nodes, spec.exit_nodes)
                payload = results[key]
                stats = ClosureStatistics()
                stats.tuples_produced = payload["tuples"]
                local_results.append(
                    LocalQueryResult(
                        fragment_id=spec.fragment_id,
                        values=dict(payload["values"]),
                        statistics=stats,
                        estimated_iterations=payload["iterations"],
                    )
                )
            assemblies.append(assemble_chain(chain_plan, local_results, semiring=self._semiring))
        return best_over_chains(assemblies, semiring=self._semiring)
