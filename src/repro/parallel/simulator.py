"""Simulated shared-nothing multiprocessor evaluation.

The paper evaluates the disconnection set approach on the PRISMA/DB machine;
this simulator substitutes it (see DESIGN.md).  It executes query workloads
through the :class:`~repro.disconnection.engine.DisconnectionSetEngine`, maps
fragments to simulated processors, and charges each processor with the work
its fragments performed under a configurable :class:`CostModel`.  The outputs
are the quantities the paper's performance argument is about: per-processor
load, parallel makespan, the equivalent single-processor cost, and the
resulting speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

from ..closure import Semiring, seminaive_transitive_closure, shortest_path_semiring
from ..disconnection import DisconnectionSetEngine, ExecutionReport, QueryAnswer
from ..fragmentation import Fragmentation
from ..generators import PathQuery
from ..graph import DiGraph
from .cost_model import CostModel
from .scheduler import Assignment, assign_fragments, one_processor_per_fragment

Node = Hashable


@dataclass
class QuerySimulation:
    """The simulated execution of one query.

    Attributes:
        query: the query that was executed.
        answer: the engine's answer (value, chain, report).
        parallel_time: simulated elapsed time with one processor per fragment.
        sequential_time: simulated time executing the same plan on one processor.
        processor_loads: per-processor local work under the active assignment.
    """

    query: PathQuery
    answer: QueryAnswer
    parallel_time: float
    sequential_time: float
    processor_loads: Dict[int, float] = field(default_factory=dict)

    def speedup(self) -> float:
        """Return sequential time divided by parallel time (1.0 when both are 0)."""
        if self.parallel_time <= 0.0:
            return 1.0
        return self.sequential_time / self.parallel_time


@dataclass
class WorkloadSimulation:
    """Aggregate results of simulating a whole query workload."""

    query_simulations: List[QuerySimulation] = field(default_factory=list)
    total_parallel_time: float = 0.0
    total_sequential_time: float = 0.0
    centralized_time: Optional[float] = None

    def average_speedup(self) -> float:
        """Return the mean per-query speed-up."""
        if not self.query_simulations:
            return 1.0
        return sum(sim.speedup() for sim in self.query_simulations) / len(self.query_simulations)

    def overall_speedup(self) -> float:
        """Return total sequential work divided by total parallel time."""
        if self.total_parallel_time <= 0.0:
            return 1.0
        return self.total_sequential_time / self.total_parallel_time

    def speedup_vs_centralized(self) -> Optional[float]:
        """Return centralized baseline time / parallel time (None if not measured)."""
        if self.centralized_time is None or self.total_parallel_time <= 0.0:
            return None
        return self.centralized_time / self.total_parallel_time


class ParallelSimulator:
    """Simulate the parallel evaluation of disconnection-set queries.

    Args:
        fragmentation: the deployed fragmentation.
        semiring: the path problem (defaults to shortest paths).
        cost_model: the abstract cost model (defaults to :class:`CostModel`).
        processor_count: number of simulated processors; ``None`` uses one
            processor per fragment (the paper's setting).
        engine: optionally reuse an existing engine (and its precomputed
            complementary information).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        cost_model: Optional[CostModel] = None,
        processor_count: Optional[int] = None,
        engine: Optional[DisconnectionSetEngine] = None,
    ) -> None:
        self._fragmentation = fragmentation
        self._semiring = semiring or shortest_path_semiring()
        self._cost_model = cost_model or CostModel()
        self._engine = engine or DisconnectionSetEngine(fragmentation, semiring=self._semiring)
        fragment_ids = [fragment.fragment_id for fragment in fragmentation.fragments]
        if processor_count is None:
            self._assignment = one_processor_per_fragment(fragment_ids)
        else:
            sizes = {fragment.fragment_id: float(fragment.edge_count()) for fragment in fragmentation.fragments}
            self._assignment = assign_fragments(sizes, processor_count)

    # ------------------------------------------------------------ accessors

    @property
    def engine(self) -> DisconnectionSetEngine:
        """The engine used for the logical evaluation."""
        return self._engine

    @property
    def assignment(self) -> Assignment:
        """The fragment-to-processor assignment in force."""
        return self._assignment

    @property
    def cost_model(self) -> CostModel:
        """The active cost model."""
        return self._cost_model

    # ------------------------------------------------------------ simulation

    def simulate_query(self, query: PathQuery) -> QuerySimulation:
        """Execute one query and derive its simulated parallel/sequential times."""
        answer = self._engine.query(query.source, query.target)
        report = answer.report
        processor_loads = self._processor_loads(report)
        slowest = max(processor_loads.values(), default=0.0)
        assembly = self._cost_model.assembly_cost(report)
        parallel_time = slowest + assembly
        sequential_time = self._cost_model.sequential_cost(report)
        return QuerySimulation(
            query=query,
            answer=answer,
            parallel_time=parallel_time,
            sequential_time=sequential_time,
            processor_loads=processor_loads,
        )

    def simulate_workload(
        self,
        queries: Sequence[PathQuery],
        *,
        include_centralized_baseline: bool = False,
    ) -> WorkloadSimulation:
        """Simulate a workload of queries, optionally measuring the centralized baseline.

        The centralized baseline evaluates one full semi-naive closure of the
        unfragmented graph (whose cost is then reused for every query) — the
        evaluation strategy a single-site system without the disconnection set
        machinery would use.
        """
        simulation = WorkloadSimulation()
        for query in queries:
            query_simulation = self.simulate_query(query)
            simulation.query_simulations.append(query_simulation)
            simulation.total_parallel_time += query_simulation.parallel_time
            simulation.total_sequential_time += query_simulation.sequential_time
        if include_centralized_baseline:
            simulation.centralized_time = self.centralized_baseline_cost() * len(queries)
        return simulation

    def centralized_baseline_cost(self) -> float:
        """Return the simulated cost of one full closure of the unfragmented graph.

        The cost model prices *iterative rounds*, so the dict-based
        evaluation is forced: the compact dispatch would report one round per
        source instead of the diameter-bounded fixpoint rounds being
        modelled.
        """
        closure = seminaive_transitive_closure(
            self._fragmentation.graph, semiring=self._semiring, use_compact=False
        )
        return self._cost_model.closure_cost(
            closure.statistics.iterations, closure.statistics.tuples_produced
        )

    def _processor_loads(self, report: ExecutionReport) -> Dict[int, float]:
        """Map the per-site work of a report onto the simulated processors."""
        site_costs = self._cost_model.site_costs(report)
        loads: Dict[int, float] = {}
        for fragment_id, cost in site_costs.items():
            processor = self._assignment.processor_of.get(fragment_id, 0)
            loads[processor] = loads.get(processor, 0.0) + cost
        return loads
