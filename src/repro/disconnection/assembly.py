"""Final assembly: combining the per-fragment results of a chain.

The final processing of the disconnection set approach "is effectively a
sequence of binary joins between a number of very small relations"
(Sec. 2.1): the path relation produced by fragment ``i`` of the chain is
joined with the path relation of fragment ``i+1`` on the shared disconnection
set nodes, costs are added, and at the end the best value for the
(source, destination) pair is selected.

Two equivalent implementations are provided:

* :func:`assemble_chain` — a small dynamic program over the chain, valid for
  any semiring; this is what the engine uses.
* :func:`assemble_chain_with_joins` — the literal relational formulation
  (equi-joins + min aggregation) for the shortest-path problem, used in tests
  to confirm both agree and in the benchmarks to count join work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..relational import Relation, aggregate_min, equi_join, project, select_eq
from .local_query import LocalQueryResult
from .planner import ChainPlan, QueryPlan

Node = Hashable
TaskKey = Tuple[int, "frozenset", "frozenset"]


@dataclass
class AssemblyResult:
    """The combined answer for one chain.

    Attributes:
        chain: the fragment chain this result belongs to.
        value: the best path value from the chain's source to its target, or
            ``None`` when the chain yields no path.
        join_operations: number of binary joins performed (cost accounting).
        intermediate_tuples: total number of tuples flowing through the joins.
    """

    chain: Tuple[int, ...]
    value: Optional[object] = None
    join_operations: int = 0
    intermediate_tuples: int = 0


def assemble_chain(
    plan: ChainPlan,
    results: Sequence[LocalQueryResult],
    *,
    semiring: Optional[Semiring] = None,
) -> AssemblyResult:
    """Combine the local results of one chain into the final path value.

    Args:
        plan: the chain plan the results belong to (in the same order).
        results: one :class:`LocalQueryResult` per chain fragment.
        semiring: the path problem (defaults to shortest paths).
    """
    semiring = semiring or shortest_path_semiring()
    assembly = AssemblyResult(chain=plan.chain)
    if len(results) != len(plan.chain):
        raise ValueError(
            f"expected {len(plan.chain)} local results for chain {plan.chain}, got {len(results)}"
        )
    # frontier maps a border node reached so far to the best accumulated value.
    frontier: Dict[Node, object] = {plan.source: semiring.one}
    for result in results:
        next_frontier: Dict[Node, object] = {}
        for (entry, exit_node), local_value in result.values.items():
            if entry not in frontier:
                continue
            candidate = semiring.times(frontier[entry], local_value)
            incumbent = next_frontier.get(exit_node)
            next_frontier[exit_node] = (
                candidate if incumbent is None else semiring.plus(incumbent, candidate)
            )
        assembly.join_operations += 1
        assembly.intermediate_tuples += len(next_frontier)
        frontier = next_frontier
        if not frontier:
            break
    if plan.target in frontier:
        assembly.value = frontier[plan.target]
    elif plan.source == plan.target:
        assembly.value = semiring.one
    return assembly


def assemble_chain_with_joins(
    plan: ChainPlan,
    results: Sequence[LocalQueryResult],
) -> AssemblyResult:
    """Shortest-path assembly expressed as relational equi-joins (paper-literal form).

    Each local result becomes a small relation ``paths_i(entry, exit, cost)``;
    consecutive relations are joined on ``exit = entry`` with costs added, and
    the final value is the minimum cost of the rows connecting the chain's
    source to its target.
    """
    assembly = AssemblyResult(chain=plan.chain)
    relations: List[Relation] = []
    for index, result in enumerate(results):
        rows = [
            (entry, exit_node, float(value))  # type: ignore[arg-type]
            for (entry, exit_node), value in result.values.items()
        ]
        relations.append(Relation(("entry", "exit", "cost"), rows, name=f"paths_{index}"))
    if not relations:
        return assembly
    current = relations[0]
    for relation in relations[1:]:
        joined = equi_join(current, relation, on=[("exit", "entry")], suffix="_next")
        assembly.join_operations += 1
        assembly.intermediate_tuples += joined.cardinality()
        if joined.is_empty():
            return assembly
        combined_rows = []
        for row in joined.as_dicts():
            combined_rows.append((row["entry"], row["exit_next"], row["cost"] + row["cost_next"]))
        current = Relation(("entry", "exit", "cost"), combined_rows, name="assembled")
        current = aggregate_min(current, ("entry", "exit"), "cost")
    final = select_eq(select_eq(current, "entry", plan.source), "exit", plan.target)
    if not final.is_empty():
        assembly.value = min(row[final.attribute_index("cost")] for row in final.rows)
    return assembly


def best_over_chains(
    assemblies: Sequence[AssemblyResult],
    *,
    semiring: Optional[Semiring] = None,
) -> Optional[object]:
    """Return the best value over all chain assemblies (``None`` if none found a path)."""
    semiring = semiring or shortest_path_semiring()
    best: Optional[object] = None
    for assembly in assemblies:
        if assembly.value is None:
            continue
        best = assembly.value if best is None else semiring.plus(best, assembly.value)
    return best


def collect_task_keys(plans: Sequence[QueryPlan]) -> Tuple[List[TaskKey], int]:
    """Pool the local query specs of ``plans`` into a duplicate-free task list.

    Returns the deduplicated ``(fragment, entry, exit)`` keys in
    first-appearance order plus the total number of spec references; the
    difference is the local work sharing saved (chains of one query — and
    queries of one batch — often need the identical border-to-border
    subquery).
    """
    keys: Dict[TaskKey, None] = {}
    references = 0
    for plan in plans:
        for chain_plan in plan.chains:
            for spec in chain_plan.local_queries:
                references += 1
                keys.setdefault(spec.key(), None)
    return list(keys), references


def assemble_best_chain(
    plan: QueryPlan,
    results_by_key: Dict[TaskKey, LocalQueryResult],
    *,
    semiring: Optional[Semiring] = None,
) -> Tuple[Optional[object], Optional[Tuple[int, ...]]]:
    """Assemble every chain of ``plan`` from shared local results.

    Returns the best path value over all chains and the chain that realised
    it (``(None, None)`` when no chain yields a path).  ``results_by_key``
    maps :meth:`LocalQuerySpec.key` to the evaluated local result, as
    produced by the executor pool or the query service.
    """
    semiring = semiring or shortest_path_semiring()
    assemblies: List[Tuple[ChainPlan, AssemblyResult]] = []
    for chain_plan in plan.chains:
        local_results = [results_by_key[spec.key()] for spec in chain_plan.local_queries]
        assemblies.append(
            (chain_plan, assemble_chain(chain_plan, local_results, semiring=semiring))
        )
    best_value = best_over_chains([assembly for _, assembly in assemblies], semiring=semiring)
    for chain_plan, assembly in assemblies:
        if assembly.value is not None and assembly.value == best_value:
            return best_value, chain_plan.chain
    return best_value, None
