"""Distributed catalog: what every site stores under the disconnection set approach.

The base relation is fragmented over ``n`` sites; each site stores its
fragment ``R_i``, the identity of its border nodes, and the complementary
information of every disconnection set it participates in (Sec. 2.1:
"Complementary information about the disconnection set DS_ij is stored at
both sites storing the fragments R_i and R_j").

The :class:`FragmentSite` value object materialises exactly that per-site
state; the :class:`DistributedCatalog` owns all sites plus the global metadata
a coordinator needs for planning (the fragmentation graph).  The parallel
executor hands each :class:`FragmentSite` to a separate worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..fragmentation import Fragmentation, FragmentationGraph
from ..graph import CompactDelta, CompactGraph, DiGraph, hop_diameter
from ..relational import Relation, edge_relation
from .complementary import ComplementaryInformation, precompute_complementary_information

Node = Hashable


class CompactFragmentSite:
    """The plain-data, kernel-ready form of one fragment site.

    This is what crosses process and snapshot boundaries: the fragment's
    *augmented* graph (subgraph + complementary shortcuts) as a
    :class:`~repro.graph.compact.CompactGraph` state dictionary of lists and
    arrays, plus the cached iteration estimate.  Resident workers and snapshot
    reloads rebuild kernels directly from it — no dict-of-dicts adjacency is
    ever reconstructed on the hot path.

    :attr:`state` is *lazily refreshed*: an :meth:`apply_delta` only marks
    the captured state dirty, and the next reader (a snapshot writer, a
    worker shipment) re-captures it from the pinned graph — so an O(delta)
    splice is never followed by an eager O(V+E) state rebuild.

    Attributes:
        fragment_id: the fragment / site identifier.
        estimated_iterations: the site's cached ``hop_diameter + 1`` figure.
    """

    __slots__ = ("fragment_id", "estimated_iterations", "_state", "_graph")

    def __init__(
        self,
        fragment_id: int,
        state: Dict[str, object],
        estimated_iterations: int,
    ) -> None:
        self.fragment_id = fragment_id
        self.estimated_iterations = estimated_iterations
        self._state: Optional[Dict[str, object]] = state
        self._graph: Optional[CompactGraph] = None

    @property
    def state(self) -> Dict[str, object]:
        """The augmented compact graph's plain-data state (lazily refreshed)."""
        if self._state is None:
            self._state = self.compact().state()
        return self._state

    def compact(self, *, use_shortcuts: bool = True) -> CompactGraph:
        """Return (and cache) the compact graph.

        Shortcuts are baked into the shipped state, so the no-shortcut
        (ablation) form does not exist here.

        Raises:
            ValueError: when ``use_shortcuts=False`` is requested — silently
                returning the augmented graph would fake the ablation.
        """
        if not use_shortcuts:
            raise ValueError(
                "a CompactFragmentSite only carries the shortcut-augmented graph; "
                "run ablations against the full FragmentSite"
            )
        if self._graph is None:
            self._graph = CompactGraph.from_state(self._state)
        return self._graph

    def local_iterations(self) -> int:
        """Return the precomputed semi-naive iteration estimate."""
        return self.estimated_iterations

    def apply_delta(self, delta: CompactDelta, estimated_iterations: int) -> None:
        """Apply an edge delta to the pinned compact graph in place.

        This is how a resident worker (or a snapshot-seeded site) absorbs an
        incremental update: the delta splices only the touched overlay rows
        of this fragment's compact graph (O(delta), no CSR rebuild), the
        captured plain-data ``state`` is marked stale and re-captured on the
        next read, and the iteration estimate is replaced by the
        coordinator's new figure.  Shipping a delta is the scoped
        alternative to re-shipping the whole fragment payload.
        """
        graph = self.compact()
        graph.apply_delta(delta)
        self._state = None
        self.estimated_iterations = estimated_iterations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompactFragmentSite):
            return NotImplemented
        return (
            self.fragment_id == other.fragment_id
            and self.estimated_iterations == other.estimated_iterations
            and self.state == other.state
        )

    def __repr__(self) -> str:
        return (
            f"CompactFragmentSite(fragment_id={self.fragment_id}, "
            f"estimated_iterations={self.estimated_iterations})"
        )

    def __getstate__(self) -> Dict[str, object]:
        # Ship only the plain state; the worker rebuilds the graph lazily.
        return {
            "fragment_id": self.fragment_id,
            "state": self.state,
            "estimated_iterations": self.estimated_iterations,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.fragment_id = state["fragment_id"]  # type: ignore[assignment]
        self.estimated_iterations = state["estimated_iterations"]  # type: ignore[assignment]
        self._state = state["state"]
        self._graph = None


@dataclass
class FragmentSite:
    """Everything one site (processor) stores.

    The mutable ``DiGraph`` subgraph stays the front-end representation; the
    first kernel evaluation builds (and caches) the fragment's immutable
    :class:`~repro.graph.compact.CompactGraph` form via :meth:`compact`.  A
    site is rebuilt from scratch whenever the catalog is (the lazy
    ``FragmentedDatabase`` rebuild after an update), so the caches can never
    serve a stale fragment.

    Attributes:
        fragment_id: the fragment / site identifier.
        subgraph: the fragment's edges as a graph (local base relation).
        border_nodes: nodes shared with at least one other fragment.
        shortcuts: complementary-information shortcut edges
            ``(border, border, value)`` stored at this site.
        neighbours: adjacent fragment ids (nonempty disconnection sets).
        disconnection_sets: for each neighbour, the shared node set.
    """

    fragment_id: int
    subgraph: DiGraph
    border_nodes: FrozenSet[Node]
    shortcuts: List[Tuple[Node, Node, object]] = field(default_factory=list)
    neighbours: List[int] = field(default_factory=list)
    disconnection_sets: Dict[int, FrozenSet[Node]] = field(default_factory=dict)
    _compact_augmented: Optional[CompactGraph] = field(
        default=None, init=False, repr=False, compare=False
    )
    _compact_plain: Optional[CompactGraph] = field(
        default=None, init=False, repr=False, compare=False
    )
    _local_iterations: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def local_relation(self) -> Relation:
        """Return the site's fragment as the relation ``R_i(source, target, cost)``."""
        return edge_relation(self.subgraph.weighted_edges(), name=f"R_{self.fragment_id}")

    def augmented_subgraph(self) -> DiGraph:
        """Return the fragment subgraph with the complementary shortcuts added.

        Shortcut values that are not numeric (e.g. reachability booleans) are
        added as zero-weight edges; the local evaluator for those semirings
        only uses the adjacency anyway.
        """
        augmented = self.subgraph.copy()
        for source, target, value in self.shortcuts:
            weight = float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else 0.0
            if augmented.has_edge(source, target):
                if weight < augmented.edge_weight(source, target):
                    augmented.add_edge(source, target, weight)
            else:
                augmented.add_edge(source, target, weight)
        return augmented

    def compact(self, *, use_shortcuts: bool = True) -> CompactGraph:
        """Return (and cache) the fragment's immutable compact form.

        With ``use_shortcuts`` the compact graph is built from
        :meth:`augmented_subgraph`, so the kernels see exactly the adjacency
        the dict-based evaluator would.  Both forms are built at most once
        per site lifetime.
        """
        if use_shortcuts:
            if self._compact_augmented is None:
                self._compact_augmented = CompactGraph.from_digraph(self.augmented_subgraph())
            return self._compact_augmented
        if self._compact_plain is None:
            self._compact_plain = CompactGraph.from_digraph(self.subgraph)
        return self._compact_plain

    def local_iterations(self) -> int:
        """Return (and cache) the semi-naive iteration estimate (diameter + 1)."""
        if self._local_iterations is None:
            self._local_iterations = hop_diameter(self.subgraph) + 1
        return self._local_iterations

    def to_compact_site(self) -> CompactFragmentSite:
        """Return the plain-data form shipped to workers and snapshots."""
        return CompactFragmentSite(
            fragment_id=self.fragment_id,
            state=self.compact().state(),
            estimated_iterations=self.local_iterations(),
        )

    def seed_compact(self, compact_site: CompactFragmentSite) -> None:
        """Adopt a previously built compact form (snapshot reload fast path)."""
        self._compact_augmented = compact_site.compact()
        self._local_iterations = compact_site.estimated_iterations

    def apply_update(
        self,
        *,
        subgraph: DiGraph,
        border_nodes: FrozenSet[Node],
        shortcuts: List[Tuple[Node, Node, object]],
        neighbours: List[int],
        disconnection_sets: Dict[int, FrozenSet[Node]],
    ) -> Optional[CompactDelta]:
        """Absorb an incremental update in place; returns the compact delta.

        Replaces the site's mutable state (fragment subgraph, borders,
        shortcuts, neighbourhood) and patches the cached augmented compact
        graph with exactly the edge delta between the old and new augmented
        adjacency — only this fragment's CSR arrays are rebuilt.  The
        returned delta is what the resident worker pool ships to its workers
        so they can patch their pinned replica the same way; ``None`` means
        no compact form existed yet (nothing to patch, the next evaluation
        builds it lazily).

        The iteration estimate and the plain compact form are invalidated
        and recomputed on demand.
        """
        old_augmented: Optional[Dict[Tuple[Node, Node], float]] = None
        if self._compact_augmented is not None:
            old_augmented = {
                (source, target): weight
                for source, target, weight in self._compact_augmented.weighted_edges()
            }
        self.subgraph = subgraph
        self.border_nodes = border_nodes
        self.shortcuts = list(shortcuts)
        self.neighbours = list(neighbours)
        self.disconnection_sets = dict(disconnection_sets)
        self._compact_plain = None
        self._local_iterations = None
        if old_augmented is None:
            return None
        new_augmented = {
            (source, target): weight
            for source, target, weight in self.augmented_subgraph().weighted_edges()
        }
        inserts: List[Tuple[Node, Node, float]] = []
        reweights: List[Tuple[Node, Node, float]] = []
        deletes: List[Tuple[Node, Node]] = []
        for (source, target), weight in new_augmented.items():
            old_weight = old_augmented.get((source, target))
            if old_weight is None:
                inserts.append((source, target, weight))
            elif old_weight != weight:
                reweights.append((source, target, weight))
        for source, target in old_augmented:
            if (source, target) not in new_augmented:
                deletes.append((source, target))
        delta = CompactDelta(
            inserts=tuple(inserts), deletes=tuple(deletes), reweights=tuple(reweights)
        )
        self._compact_augmented.apply_delta(delta)
        return delta

    def stores_node(self, node: Node) -> bool:
        """Return ``True`` if the node appears in this site's fragment."""
        return self.subgraph.has_node(node)

    def edge_count(self) -> int:
        """Return the number of directed edges stored at this site."""
        return self.subgraph.edge_count()


class DistributedCatalog:
    """The full distributed database: one :class:`FragmentSite` per fragment.

    Args:
        fragmentation: the data fragmentation to deploy.
        semiring: the path problem the complementary information must support
            (defaults to shortest paths).
        complementary: reuse previously computed complementary information
            instead of recomputing it (e.g. when benchmarking the
            precomputation separately).
        compact_sites: previously built compact fragment forms (e.g. from a
            snapshot) to seed the sites' kernel caches, so a warm service
            never rebuilds adjacency.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
        compact_sites: Optional[Dict[int, CompactFragmentSite]] = None,
    ) -> None:
        self._fragmentation = fragmentation
        self._semiring = semiring or shortest_path_semiring()
        self._fragmentation_graph = FragmentationGraph(fragmentation)
        self._complementary = complementary or precompute_complementary_information(
            fragmentation, semiring=self._semiring
        )
        self._sites = self._build_sites(compact_sites or {})

    def _build_site(self, fragment_id: int, fragmentation: Fragmentation) -> FragmentSite:
        """Construct one site's full per-fragment state from a fragmentation.

        The single place site field wiring lives: initial catalog
        construction and the scoped refragmentation rebuild both go through
        it, so a freshly-redrawn site can never diverge from a freshly-built
        one.
        """
        neighbours = fragmentation.adjacent_fragments(fragment_id)
        return FragmentSite(
            fragment_id=fragment_id,
            subgraph=fragmentation.fragment_subgraph(fragment_id),
            border_nodes=fragmentation.border_nodes(fragment_id),
            shortcuts=self._complementary.shortcut_edges(fragment_id, fragmentation),
            neighbours=neighbours,
            disconnection_sets={
                neighbour: fragmentation.disconnection_set(fragment_id, neighbour)
                for neighbour in neighbours
            },
        )

    def _build_sites(
        self, compact_sites: Dict[int, CompactFragmentSite]
    ) -> Dict[int, FragmentSite]:
        sites: Dict[int, FragmentSite] = {}
        for fragment in self._fragmentation.fragments:
            fragment_id = fragment.fragment_id
            site = self._build_site(fragment_id, self._fragmentation)
            if fragment_id in compact_sites:
                site.seed_compact(compact_sites[fragment_id])
            sites[fragment_id] = site
        return sites

    def compact_sites(self) -> Dict[int, CompactFragmentSite]:
        """Return every site's plain-data compact form (building as needed)."""
        return {
            fragment_id: site.to_compact_site()
            for fragment_id, site in sorted(self._sites.items())
        }

    def apply_refragmentation(
        self,
        fragmentation: Fragmentation,
        *,
        rebuilt: List[int],
        dropped: List[int],
    ) -> None:
        """Adopt a redrawn fragment layout, rebuilding only the named sites.

        The live refragmenter has already aligned the new layout's fragment
        ids to the deployed ones and repaired the complementary information
        in place; this swaps in the new fragmentation metadata, builds fresh
        :class:`FragmentSite` objects for exactly the ``rebuilt`` fragments
        (including ids that are new in this layout), removes the ``dropped``
        ids, and leaves every other site — with its cached compact kernels —
        object-identical.  This is the scoped replacement for the old
        "any refragmentation rebuilds the world" path: the catalog object,
        and with it the engine, survives the redraw.
        """
        self._fragmentation = fragmentation
        self._fragmentation_graph = FragmentationGraph(fragmentation)
        for fragment_id in dropped:
            self._sites.pop(fragment_id, None)
        for fragment_id in rebuilt:
            self._sites[fragment_id] = self._build_site(fragment_id, fragmentation)

    def apply_incremental_update(
        self, fragmentation: Fragmentation, *, dirty_fragments: List[int]
    ) -> Dict[int, Optional[CompactDelta]]:
        """Refresh the dirty sites in place after an incremental update.

        The caller (the incremental maintainer) has already repaired the
        complementary information and knows exactly which fragments' state
        moved; this method swaps in the new fragmentation metadata, rebuilds
        only the dirty sites' subgraph/shortcut/compact state, and leaves
        every other :class:`FragmentSite` object — including its cached
        compact form — untouched and object-identical.

        Returns each dirty fragment's compact delta (``None`` when the site
        had no compact form yet), which the worker pool re-pins with.
        """
        self._fragmentation = fragmentation
        self._fragmentation_graph = FragmentationGraph(fragmentation)
        site_deltas: Dict[int, Optional[CompactDelta]] = {}
        for fragment_id in dirty_fragments:
            site = self._sites[fragment_id]
            neighbours = fragmentation.adjacent_fragments(fragment_id)
            site_deltas[fragment_id] = site.apply_update(
                subgraph=fragmentation.fragment_subgraph(fragment_id),
                border_nodes=fragmentation.border_nodes(fragment_id),
                shortcuts=self._complementary.shortcut_edges(fragment_id, fragmentation),
                neighbours=neighbours,
                disconnection_sets={
                    neighbour: fragmentation.disconnection_set(fragment_id, neighbour)
                    for neighbour in neighbours
                },
            )
        return site_deltas

    # ------------------------------------------------------------ accessors

    @property
    def fragmentation(self) -> Fragmentation:
        """The deployed fragmentation."""
        return self._fragmentation

    @property
    def fragmentation_graph(self) -> FragmentationGraph:
        """The fragment-level graph used for planning."""
        return self._fragmentation_graph

    @property
    def semiring(self) -> Semiring:
        """The path problem the catalog was built for."""
        return self._semiring

    @property
    def complementary(self) -> ComplementaryInformation:
        """The precomputed complementary information."""
        return self._complementary

    def sites(self) -> List[FragmentSite]:
        """Return every site, ordered by fragment id."""
        return [self._sites[fragment_id] for fragment_id in sorted(self._sites)]

    def site(self, fragment_id: int) -> FragmentSite:
        """Return the site storing ``fragment_id``."""
        return self._sites[fragment_id]

    def site_count(self) -> int:
        """Return the number of sites (= fragments)."""
        return len(self._sites)

    def sites_storing_node(self, node: Node) -> List[int]:
        """Return the ids of the sites whose fragment contains ``node``."""
        return [fragment_id for fragment_id, site in sorted(self._sites.items()) if site.stores_node(node)]

    def total_storage_facts(self) -> int:
        """Return the total number of stored facts (edges + complementary facts).

        This is the storage-overhead figure: the paper's main cost of the
        approach is "the pre-processing required for building the
        complementary information".
        """
        edges = sum(site.edge_count() for site in self._sites.values())
        return edges + self._complementary.size_in_facts()
