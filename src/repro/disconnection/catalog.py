"""Distributed catalog: what every site stores under the disconnection set approach.

The base relation is fragmented over ``n`` sites; each site stores its
fragment ``R_i``, the identity of its border nodes, and the complementary
information of every disconnection set it participates in (Sec. 2.1:
"Complementary information about the disconnection set DS_ij is stored at
both sites storing the fragments R_i and R_j").

The :class:`FragmentSite` value object materialises exactly that per-site
state; the :class:`DistributedCatalog` owns all sites plus the global metadata
a coordinator needs for planning (the fragmentation graph).  The parallel
executor hands each :class:`FragmentSite` to a separate worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..fragmentation import Fragmentation, FragmentationGraph
from ..graph import DiGraph
from ..relational import Relation, edge_relation
from .complementary import ComplementaryInformation, precompute_complementary_information

Node = Hashable


@dataclass
class FragmentSite:
    """Everything one site (processor) stores.

    Attributes:
        fragment_id: the fragment / site identifier.
        subgraph: the fragment's edges as a graph (local base relation).
        border_nodes: nodes shared with at least one other fragment.
        shortcuts: complementary-information shortcut edges
            ``(border, border, value)`` stored at this site.
        neighbours: adjacent fragment ids (nonempty disconnection sets).
        disconnection_sets: for each neighbour, the shared node set.
    """

    fragment_id: int
    subgraph: DiGraph
    border_nodes: FrozenSet[Node]
    shortcuts: List[Tuple[Node, Node, object]] = field(default_factory=list)
    neighbours: List[int] = field(default_factory=list)
    disconnection_sets: Dict[int, FrozenSet[Node]] = field(default_factory=dict)

    def local_relation(self) -> Relation:
        """Return the site's fragment as the relation ``R_i(source, target, cost)``."""
        return edge_relation(self.subgraph.weighted_edges(), name=f"R_{self.fragment_id}")

    def augmented_subgraph(self) -> DiGraph:
        """Return the fragment subgraph with the complementary shortcuts added.

        Shortcut values that are not numeric (e.g. reachability booleans) are
        added as zero-weight edges; the local evaluator for those semirings
        only uses the adjacency anyway.
        """
        augmented = self.subgraph.copy()
        for source, target, value in self.shortcuts:
            weight = float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else 0.0
            if augmented.has_edge(source, target):
                if weight < augmented.edge_weight(source, target):
                    augmented.add_edge(source, target, weight)
            else:
                augmented.add_edge(source, target, weight)
        return augmented

    def stores_node(self, node: Node) -> bool:
        """Return ``True`` if the node appears in this site's fragment."""
        return self.subgraph.has_node(node)

    def edge_count(self) -> int:
        """Return the number of directed edges stored at this site."""
        return self.subgraph.edge_count()


class DistributedCatalog:
    """The full distributed database: one :class:`FragmentSite` per fragment.

    Args:
        fragmentation: the data fragmentation to deploy.
        semiring: the path problem the complementary information must support
            (defaults to shortest paths).
        complementary: reuse previously computed complementary information
            instead of recomputing it (e.g. when benchmarking the
            precomputation separately).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
    ) -> None:
        self._fragmentation = fragmentation
        self._semiring = semiring or shortest_path_semiring()
        self._fragmentation_graph = FragmentationGraph(fragmentation)
        self._complementary = complementary or precompute_complementary_information(
            fragmentation, semiring=self._semiring
        )
        self._sites = self._build_sites()

    def _build_sites(self) -> Dict[int, FragmentSite]:
        sites: Dict[int, FragmentSite] = {}
        for fragment in self._fragmentation.fragments:
            fragment_id = fragment.fragment_id
            neighbours = self._fragmentation.adjacent_fragments(fragment_id)
            sites[fragment_id] = FragmentSite(
                fragment_id=fragment_id,
                subgraph=self._fragmentation.fragment_subgraph(fragment_id),
                border_nodes=self._fragmentation.border_nodes(fragment_id),
                shortcuts=self._complementary.shortcut_edges(fragment_id, self._fragmentation),
                neighbours=neighbours,
                disconnection_sets={
                    neighbour: self._fragmentation.disconnection_set(fragment_id, neighbour)
                    for neighbour in neighbours
                },
            )
        return sites

    # ------------------------------------------------------------ accessors

    @property
    def fragmentation(self) -> Fragmentation:
        """The deployed fragmentation."""
        return self._fragmentation

    @property
    def fragmentation_graph(self) -> FragmentationGraph:
        """The fragment-level graph used for planning."""
        return self._fragmentation_graph

    @property
    def semiring(self) -> Semiring:
        """The path problem the catalog was built for."""
        return self._semiring

    @property
    def complementary(self) -> ComplementaryInformation:
        """The precomputed complementary information."""
        return self._complementary

    def sites(self) -> List[FragmentSite]:
        """Return every site, ordered by fragment id."""
        return [self._sites[fragment_id] for fragment_id in sorted(self._sites)]

    def site(self, fragment_id: int) -> FragmentSite:
        """Return the site storing ``fragment_id``."""
        return self._sites[fragment_id]

    def site_count(self) -> int:
        """Return the number of sites (= fragments)."""
        return len(self._sites)

    def sites_storing_node(self, node: Node) -> List[int]:
        """Return the ids of the sites whose fragment contains ``node``."""
        return [fragment_id for fragment_id, site in sorted(self._sites.items()) if site.stores_node(node)]

    def total_storage_facts(self) -> int:
        """Return the total number of stored facts (edges + complementary facts).

        This is the storage-overhead figure: the paper's main cost of the
        approach is "the pre-processing required for building the
        complementary information".
        """
        edges = sum(site.edge_count() for site in self._sites.values())
        return edges + self._complementary.size_in_facts()
