"""Query planning: from a source/destination pair to per-fragment subqueries.

Given a query "find the best path from ``x`` to ``y``", the planner:

1. locates the fragments storing ``x`` and ``y`` (border nodes may live in
   several fragments — every combination is considered),
2. enumerates the chains of fragments connecting them in the fragmentation
   graph (exactly one chain when the fragmentation is loosely connected; all
   simple chains otherwise, as Sec. 2.1 prescribes),
3. expands every chain into a list of per-fragment :class:`LocalQuerySpec`
   objects: the first fragment searches from the source to the first
   disconnection set, intermediate fragments search border-to-border, and the
   last fragment searches from the last disconnection set to the destination.

The single-fragment case (both endpoints in the same fragment) produces a
one-element plan that can be answered by that site alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, List, Optional, Tuple

from ..exceptions import NoChainError
from .catalog import DistributedCatalog

Node = Hashable


@dataclass(frozen=True)
class LocalQuerySpec:
    """One per-fragment subquery of a chain plan.

    Attributes:
        fragment_id: the site that evaluates this subquery.
        entry_nodes: the nodes the search starts from (the source node for the
            first fragment of a chain, otherwise the incoming disconnection
            set).
        exit_nodes: the nodes the search must reach (the destination for the
            last fragment, otherwise the outgoing disconnection set).
    """

    fragment_id: int
    entry_nodes: FrozenSet[Node]
    exit_nodes: FrozenSet[Node]

    def key(self) -> Tuple[int, FrozenSet[Node], FrozenSet[Node]]:
        """The hashable identity used to deduplicate and route this subquery."""
        return (self.fragment_id, self.entry_nodes, self.exit_nodes)


@dataclass(frozen=True)
class ChainPlan:
    """A fully expanded plan for one chain of fragments.

    Attributes:
        chain: the fragment ids, in order from the source fragment to the
            destination fragment.
        local_queries: one :class:`LocalQuerySpec` per chain element.
        source: the query's source node.
        target: the query's destination node.
    """

    chain: Tuple[int, ...]
    local_queries: Tuple[LocalQuerySpec, ...]
    source: Node
    target: Node

    def length(self) -> int:
        """Return the number of fragments involved."""
        return len(self.chain)


@dataclass
class QueryPlan:
    """The complete plan for a query: one :class:`ChainPlan` per fragment chain.

    Attributes:
        source: the query source node.
        target: the query destination node.
        chains: the chain plans, shortest chain first.
        loosely_connected: whether the underlying fragmentation graph is
            acyclic (single chain guaranteed).
    """

    source: Node
    target: Node
    chains: List[ChainPlan] = field(default_factory=list)
    loosely_connected: bool = True

    def is_single_fragment(self) -> bool:
        """Return ``True`` when some chain involves only one fragment."""
        return any(plan.length() == 1 for plan in self.chains)

    def fragments_involved(self) -> List[int]:
        """Return the sorted set of fragments touched by any chain."""
        involved = {fragment_id for plan in self.chains for fragment_id in plan.chain}
        return sorted(involved)


class QueryPlanner:
    """Plans disconnection-set queries over a :class:`DistributedCatalog`."""

    def __init__(self, catalog: DistributedCatalog, *, max_chains: Optional[int] = 32) -> None:
        self._catalog = catalog
        self._max_chains = max_chains

    def plan(self, source: Node, target: Node) -> QueryPlan:
        """Return the :class:`QueryPlan` for a path query from ``source`` to ``target``.

        Raises:
            NoChainError: if no chain of fragments connects a fragment storing
                ``source`` with a fragment storing ``target`` (or one of the
                endpoints is stored nowhere).
        """
        source_fragments = self._catalog.sites_storing_node(source)
        target_fragments = self._catalog.sites_storing_node(target)
        if not source_fragments:
            raise NoChainError(f"node {source!r} is not stored in any fragment")
        if not target_fragments:
            raise NoChainError(f"node {target!r} is not stored in any fragment")

        fragmentation_graph = self._catalog.fragmentation_graph
        plan = QueryPlan(
            source=source,
            target=target,
            loosely_connected=fragmentation_graph.is_loosely_connected(),
        )
        seen_chains = set()
        for start in source_fragments:
            for end in target_fragments:
                for chain in fragmentation_graph.chains(start, end, max_chains=self._max_chains):
                    key = tuple(chain)
                    if key in seen_chains:
                        continue
                    seen_chains.add(key)
                    plan.chains.append(self._expand_chain(chain, source, target))
        if not plan.chains:
            raise NoChainError(
                f"no chain of fragments connects {source!r} (fragments {source_fragments}) "
                f"with {target!r} (fragments {target_fragments})"
            )
        plan.chains.sort(key=lambda chain_plan: (chain_plan.length(), chain_plan.chain))
        return plan

    def _expand_chain(self, chain: List[int], source: Node, target: Node) -> ChainPlan:
        """Expand a fragment chain into per-fragment local query specs."""
        fragmentation = self._catalog.fragmentation
        specs: List[LocalQuerySpec] = []
        for position, fragment_id in enumerate(chain):
            if position == 0:
                entry: FrozenSet[Node] = frozenset([source])
            else:
                entry = fragmentation.disconnection_set(chain[position - 1], fragment_id)
            if position == len(chain) - 1:
                exit_nodes: FrozenSet[Node] = frozenset([target])
            else:
                exit_nodes = fragmentation.disconnection_set(fragment_id, chain[position + 1])
            specs.append(
                LocalQuerySpec(
                    fragment_id=fragment_id,
                    entry_nodes=entry,
                    exit_nodes=exit_nodes,
                )
            )
        return ChainPlan(chain=tuple(chain), local_queries=tuple(specs), source=source, target=target)
