"""Parallel Hierarchical Evaluation (the extension sketched in Sec. 5).

When the fragmentation graph is very complex — many fragments, many cycles —
enumerating all fragment chains for a query becomes expensive.  The paper's
remedy (introduced in reference [12] and summarised in its conclusions) is a
*high-speed network*: a separate fragment that must be traversed whenever a
query travels between non-adjacent fragments.  Think of the European intercity
rail backbone: a query from a Dutch regional station to an Italian one goes
regional network → backbone → regional network, so only three fragments are
ever involved regardless of how many regional fragments exist.

:class:`HierarchicalEngine` implements that scheme on top of the regular
machinery:

* a *backbone* fragment is built from the complementary-information shortcuts
  of every disconnection set (border-to-border global best values), plus any
  explicitly supplied high-speed edges;
* a query between non-adjacent fragments is evaluated over the fixed
  three-element chain (source fragment, backbone, target fragment);
* queries within a fragment or between adjacent fragments fall back to the
  ordinary disconnection-set engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..exceptions import DisconnectedError, NoChainError
from ..fragmentation import Fragmentation
from ..graph import DiGraph
from .catalog import DistributedCatalog, FragmentSite
from .complementary import ComplementaryInformation, precompute_complementary_information
from .engine import DisconnectionSetEngine, ExecutionReport, QueryAnswer
from .local_query import LocalQueryEvaluator
from .planner import ChainPlan, LocalQuerySpec
from .assembly import assemble_chain

Node = Hashable


@dataclass
class BackboneStatistics:
    """Size of the high-speed network fragment."""

    node_count: int
    edge_count: int


class HierarchicalEngine:
    """Parallel hierarchical evaluation over a fragmentation.

    Args:
        fragmentation: the base fragmentation.
        semiring: the path problem (defaults to shortest paths).
        extra_backbone_edges: optional additional high-speed edges
            ``(source, target, value)`` — e.g. explicit intercity lines — that
            are added to the backbone fragment.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        extra_backbone_edges: Optional[Iterable[Tuple[Node, Node, float]]] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._fragmentation = fragmentation
        self._complementary = precompute_complementary_information(
            fragmentation, semiring=self._semiring
        )
        self._catalog = DistributedCatalog(
            fragmentation, semiring=self._semiring, complementary=self._complementary
        )
        self._fallback = DisconnectionSetEngine(
            fragmentation, semiring=self._semiring, complementary=self._complementary
        )
        self._evaluator = LocalQueryEvaluator(semiring=self._semiring)
        self._backbone_site = self._build_backbone(extra_backbone_edges or [])

    # -------------------------------------------------------------- backbone

    def _build_backbone(self, extra_edges: Iterable[Tuple[Node, Node, float]]) -> FragmentSite:
        """Assemble the high-speed network fragment.

        The backbone connects **all** border nodes of the fragmentation with
        the best path value between them in the full graph, so a query that
        has reached any border node can jump to any other border node in a
        single backbone hop — this is the "mandatorily traversed" separate
        fragment of parallel hierarchical evaluation.  Computing it is a
        heavier precomputation than the per-disconnection-set complementary
        information, which is exactly the trade-off the extension makes:
        more precomputed data for a fragmentation-graph-independent plan.
        """
        from ..graph import bfs_levels, dijkstra

        backbone = DiGraph()
        all_border: set = set()
        for (i, j), pairs in self._complementary.values.items():
            for (a, b) in pairs:
                all_border.add(a)
                all_border.add(b)
        for border in self._fragmentation.disconnection_sets().values():
            all_border |= set(border)
        graph = self._fragmentation.graph
        for source in sorted(all_border, key=repr):
            if not graph.has_node(source):
                continue
            if self._semiring.name == "shortest_path":
                distances, _ = dijkstra(graph, source, targets=set(all_border))
                reachable = {t: d for t, d in distances.items() if t in all_border}
            else:
                levels = bfs_levels(graph, source)
                reachable = {t: 0.0 for t in levels if t in all_border}
            for target, weight in reachable.items():
                if target == source:
                    continue
                if backbone.has_edge(source, target):
                    if weight < backbone.edge_weight(source, target):
                        backbone.add_edge(source, target, weight)
                else:
                    backbone.add_edge(source, target, weight)
        for source, target, weight in extra_edges:
            backbone.add_edge(source, target, float(weight))
        border_nodes = frozenset(backbone.nodes())
        return FragmentSite(
            fragment_id=-1,
            subgraph=backbone,
            border_nodes=border_nodes,
            shortcuts=[],
            neighbours=[],
            disconnection_sets={},
        )

    def backbone_statistics(self) -> BackboneStatistics:
        """Return the size of the high-speed network fragment."""
        return BackboneStatistics(
            node_count=self._backbone_site.subgraph.node_count(),
            edge_count=self._backbone_site.subgraph.edge_count(),
        )

    # --------------------------------------------------------------- queries

    def query(self, source: Node, target: Node) -> QueryAnswer:
        """Answer a best-path query using the hierarchical three-fragment plan.

        Falls back to the plain engine when the endpoints share a fragment or
        live in adjacent fragments (no backbone traversal needed).
        """
        source_fragments = self._catalog.sites_storing_node(source)
        target_fragments = self._catalog.sites_storing_node(target)
        if not source_fragments:
            raise NoChainError(f"node {source!r} is not stored in any fragment")
        if not target_fragments:
            raise NoChainError(f"node {target!r} is not stored in any fragment")
        if self._share_or_adjacent(source_fragments, target_fragments):
            return self._fallback.query(source, target)
        return self._query_via_backbone(source, target, source_fragments[0], target_fragments[0])

    def shortest_path_cost(self, source: Node, target: Node) -> float:
        """Return the cheapest path cost between two nodes (hierarchical plan).

        Raises:
            DisconnectedError: when no path exists.
        """
        answer = self.query(source, target)
        if not answer.exists():
            raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
        return float(answer.value)  # type: ignore[arg-type]

    def _share_or_adjacent(self, source_fragments: List[int], target_fragments: List[int]) -> bool:
        if set(source_fragments) & set(target_fragments):
            return True
        for i in source_fragments:
            for j in target_fragments:
                if j in self._fragmentation.adjacent_fragments(i):
                    return True
        return False

    def _query_via_backbone(
        self,
        source: Node,
        target: Node,
        source_fragment: int,
        target_fragment: int,
    ) -> QueryAnswer:
        """Evaluate the fixed chain: source fragment -> backbone -> target fragment."""
        source_border = self._fragmentation.border_nodes(source_fragment)
        target_border = self._fragmentation.border_nodes(target_fragment)
        specs = (
            LocalQuerySpec(
                fragment_id=source_fragment,
                entry_nodes=frozenset([source]),
                exit_nodes=frozenset(source_border),
            ),
            LocalQuerySpec(
                fragment_id=-1,
                entry_nodes=frozenset(source_border),
                exit_nodes=frozenset(target_border),
            ),
            LocalQuerySpec(
                fragment_id=target_fragment,
                entry_nodes=frozenset(target_border),
                exit_nodes=frozenset([target]),
            ),
        )
        plan = ChainPlan(
            chain=(source_fragment, -1, target_fragment),
            local_queries=specs,
            source=source,
            target=target,
        )
        report = ExecutionReport()
        report.planned_fragments = 3
        results = []
        for spec in specs:
            site = self._backbone_site if spec.fragment_id == -1 else self._catalog.site(spec.fragment_id)
            local = self._evaluator.evaluate(site, spec)
            report.record_local(local)
            results.append(local)
        assembly = assemble_chain(plan, results, semiring=self._semiring)
        report.record_assembly(assembly)
        return QueryAnswer(
            source=source,
            target=target,
            value=assembly.value,
            chain=plan.chain if assembly.value is not None else None,
            report=report,
        )
