"""The disconnection set approach: the parallel transitive-closure strategy
the fragmentations of this package are designed for.

Complementary-information precomputation, the distributed catalog, query
planning over the fragmentation graph, independent per-fragment local queries,
final assembly joins, the end-to-end :class:`DisconnectionSetEngine`, and the
Parallel Hierarchical Evaluation extension.
"""

from .assembly import (
    AssemblyResult,
    assemble_best_chain,
    assemble_chain,
    assemble_chain_with_joins,
    best_over_chains,
    collect_task_keys,
)
from .catalog import CompactFragmentSite, DistributedCatalog, FragmentSite
from .complementary import ComplementaryInformation, precompute_complementary_information
from .engine import (
    DisconnectionSetEngine,
    ExecutionReport,
    QueryAnswer,
    SiteWork,
    reachability_engine,
    shortest_path_engine,
)
from .hierarchical import BackboneStatistics, HierarchicalEngine
from .local_query import LocalQueryEvaluator, LocalQueryResult
from .maintenance import FragmentedDatabase, UpdateEvent, UpdateStatistics
from .planner import ChainPlan, LocalQuerySpec, QueryPlan, QueryPlanner
from .routes import RoutedAnswer, RouteReconstructingEngine

__all__ = [
    "AssemblyResult",
    "BackboneStatistics",
    "ChainPlan",
    "CompactFragmentSite",
    "ComplementaryInformation",
    "DisconnectionSetEngine",
    "DistributedCatalog",
    "ExecutionReport",
    "FragmentSite",
    "FragmentedDatabase",
    "HierarchicalEngine",
    "LocalQueryEvaluator",
    "LocalQueryResult",
    "LocalQuerySpec",
    "QueryAnswer",
    "QueryPlan",
    "QueryPlanner",
    "RoutedAnswer",
    "RouteReconstructingEngine",
    "SiteWork",
    "UpdateEvent",
    "UpdateStatistics",
    "assemble_best_chain",
    "assemble_chain",
    "assemble_chain_with_joins",
    "best_over_chains",
    "collect_task_keys",
    "precompute_complementary_information",
    "reachability_engine",
    "shortest_path_engine",
]
