"""The disconnection set query engine.

This ties the pieces together: the :class:`DisconnectionSetEngine` owns a
:class:`~repro.disconnection.catalog.DistributedCatalog` (fragments +
complementary information), plans each query with the
:class:`~repro.disconnection.planner.QueryPlanner`, evaluates the per-fragment
subqueries with the :class:`~repro.disconnection.local_query.LocalQueryEvaluator`
(no communication between them), and assembles the final answer with the small
joins of :mod:`repro.disconnection.assembly`.

The engine records an :class:`ExecutionReport` for every query: which sites
did how much work, how many iterations their local fixpoints needed, and how
much assembly work the coordinator did.  The parallel simulator turns such a
report into makespan and speed-up figures; the engine itself executes the
subqueries sequentially (it is the *logical* strategy, independent of the
physical execution vehicle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..closure import Semiring, reachability_semiring, shortest_path_semiring
from ..exceptions import DisconnectedError, NoChainError
from ..fragmentation import Fragmentation
from .assembly import AssemblyResult, assemble_chain, best_over_chains
from .catalog import CompactFragmentSite, DistributedCatalog
from .complementary import ComplementaryInformation
from .local_query import LocalQueryEvaluator, LocalQueryResult
from .planner import ChainPlan, LocalQuerySpec, QueryPlan, QueryPlanner

Node = Hashable


@dataclass
class SiteWork:
    """Work done by one site while answering a query.

    Attributes:
        fragment_id: the site.
        subqueries: number of local subqueries evaluated at this site.
        iterations: estimated fixpoint iterations (≈ fragment diameter) —
            the per-site latency driver in the paper's cost argument.
        tuples_produced: tuples produced by the site's local evaluations.
    """

    fragment_id: int
    subqueries: int = 0
    iterations: int = 0
    tuples_produced: int = 0


@dataclass
class ExecutionReport:
    """Cost accounting for one disconnection-set query execution."""

    site_work: Dict[int, SiteWork] = field(default_factory=dict)
    chains_evaluated: int = 0
    join_operations: int = 0
    assembly_tuples: int = 0
    planned_fragments: int = 0

    def record_local(self, result: LocalQueryResult) -> None:
        """Fold one local result into the per-site accounting."""
        work = self.site_work.setdefault(result.fragment_id, SiteWork(fragment_id=result.fragment_id))
        work.subqueries += 1
        work.iterations += result.estimated_iterations
        work.tuples_produced += result.statistics.tuples_produced

    def record_assembly(self, assembly: AssemblyResult) -> None:
        """Fold one chain assembly into the coordinator accounting."""
        self.chains_evaluated += 1
        self.join_operations += assembly.join_operations
        self.assembly_tuples += assembly.intermediate_tuples

    def total_site_tuples(self) -> int:
        """Return the total tuples produced across all sites (sequential work proxy)."""
        return sum(work.tuples_produced for work in self.site_work.values())

    def critical_path_iterations(self) -> int:
        """Return the largest per-site iteration count (parallel latency proxy)."""
        return max((work.iterations for work in self.site_work.values()), default=0)


@dataclass
class QueryAnswer:
    """The answer to one disconnection-set query.

    Attributes:
        source, target: the queried endpoints.
        value: the best path value (``None`` when no path exists).
        chain: the fragment chain that produced the best value.
        report: the execution cost report.
    """

    source: Node
    target: Node
    value: Optional[object]
    chain: Optional[Tuple[int, ...]]
    report: ExecutionReport

    def exists(self) -> bool:
        """Return ``True`` when a path was found."""
        return self.value is not None


class DisconnectionSetEngine:
    """Answer reachability and best-path queries via the disconnection set approach.

    Args:
        fragmentation: the data fragmentation to deploy.
        semiring: the path problem (defaults to shortest paths).
        complementary: optionally reuse precomputed complementary information.
        compact_sites: optionally seed the per-fragment compact kernel graphs
            (e.g. from a snapshot), so the engine never rebuilds adjacency.
        use_shortcuts: disable to measure the effect of dropping the
            complementary information (the ablation benchmarks use this; the
            engine then only sees paths that stay inside the fragment chain).
        use_compact: evaluate local subqueries with the compact kernels
            (default); disable to run the original dict-based searches.
        max_chains: cap on the number of fragment chains examined per query.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
        compact_sites: Optional[Dict[int, "CompactFragmentSite"]] = None,
        use_shortcuts: bool = True,
        use_compact: bool = True,
        max_chains: Optional[int] = 32,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._catalog = DistributedCatalog(
            fragmentation,
            semiring=self._semiring,
            complementary=complementary,
            compact_sites=compact_sites,
        )
        self._planner = QueryPlanner(self._catalog, max_chains=max_chains)
        self._evaluator = LocalQueryEvaluator(
            semiring=self._semiring, use_shortcuts=use_shortcuts, use_compact=use_compact
        )

    # ------------------------------------------------------------ accessors

    @property
    def catalog(self) -> DistributedCatalog:
        """The distributed catalog the engine queries."""
        return self._catalog

    @property
    def semiring(self) -> Semiring:
        """The path problem being answered."""
        return self._semiring

    # ------------------------------------------------------------- updates

    def apply_incremental_update(
        self, fragmentation: "Fragmentation", *, dirty_fragments: List[int]
    ) -> Dict[int, object]:
        """Absorb an already-repaired update without rebuilding the engine.

        The incremental maintainer calls this after patching the catalog's
        complementary information in place: the engine keeps its identity (so
        a serving layer neither re-plans from scratch nor restarts its worker
        pool), the catalog refreshes only the dirty fragments' sites, and the
        planner picks up the new fragmentation on its next ``plan`` call
        because it reads the catalog live.

        Returns the per-fragment compact deltas the catalog produced.
        """
        return self._catalog.apply_incremental_update(
            fragmentation, dirty_fragments=dirty_fragments
        )

    def apply_refragmentation(
        self,
        fragmentation: "Fragmentation",
        *,
        rebuilt: List[int],
        dropped: List[int],
    ) -> None:
        """Adopt a redrawn fragment layout without rebuilding the engine.

        The live refragmenter calls this after repairing the complementary
        information in place: the engine keeps its identity (so the serving
        layer's planner and worker pool survive the redraw), the catalog
        rebuilds only the named sites, and every untouched site — compact
        kernels included — stays object-identical.
        """
        self._catalog.apply_refragmentation(
            fragmentation, rebuilt=rebuilt, dropped=dropped
        )

    # ------------------------------------------------------------- queries

    def query(self, source: Node, target: Node) -> QueryAnswer:
        """Answer a best-path query from ``source`` to ``target``.

        Raises:
            NoChainError: if one of the endpoints is stored nowhere or no
                fragment chain connects them.
        """
        if source == target and self._catalog.sites_storing_node(source):
            report = ExecutionReport()
            return QueryAnswer(
                source=source, target=target, value=self._semiring.one, chain=None, report=report
            )
        plan = self._planner.plan(source, target)
        return self.execute_plan(plan)

    def execute_plan(self, plan: QueryPlan) -> QueryAnswer:
        """Execute a previously computed :class:`QueryPlan`."""
        report = ExecutionReport()
        report.planned_fragments = len(plan.fragments_involved())
        local_cache: Dict[Tuple[int, frozenset, frozenset], LocalQueryResult] = {}
        assemblies: List[Tuple[ChainPlan, AssemblyResult]] = []
        for chain_plan in plan.chains:
            results: List[LocalQueryResult] = []
            for spec in chain_plan.local_queries:
                key = spec.key()
                if key not in local_cache:
                    site = self._catalog.site(spec.fragment_id)
                    local_result = self._evaluator.evaluate(site, spec)
                    local_cache[key] = local_result
                    report.record_local(local_result)
                results.append(local_cache[key])
            assembly = assemble_chain(chain_plan, results, semiring=self._semiring)
            report.record_assembly(assembly)
            assemblies.append((chain_plan, assembly))
        best_value = best_over_chains([assembly for _, assembly in assemblies], semiring=self._semiring)
        best_chain: Optional[Tuple[int, ...]] = None
        for chain_plan, assembly in assemblies:
            if assembly.value is not None and assembly.value == best_value:
                best_chain = chain_plan.chain
                break
        return QueryAnswer(
            source=plan.source,
            target=plan.target,
            value=best_value,
            chain=best_chain,
            report=report,
        )

    def is_connected(self, source: Node, target: Node) -> bool:
        """Answer "is ``source`` connected to ``target``?" (never raises for unknown nodes)."""
        try:
            answer = self.query(source, target)
        except NoChainError:
            return False
        if self._semiring.name == "reachability":
            return bool(answer.value)
        return answer.exists()

    def shortest_path_cost(self, source: Node, target: Node) -> float:
        """Return the cheapest path cost between two nodes.

        Raises:
            DisconnectedError: when no path exists.
            NoChainError: when an endpoint is not stored anywhere.
        """
        if self._semiring.name != "shortest_path":
            raise DisconnectedError(
                "shortest_path_cost requires an engine built with the shortest-path semiring"
            )
        answer = self.query(source, target)
        if not answer.exists():
            raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
        return float(answer.value)  # type: ignore[arg-type]


def reachability_engine(fragmentation: Fragmentation, **kwargs) -> DisconnectionSetEngine:
    """Convenience constructor for a reachability ("is A connected to B?") engine."""
    return DisconnectionSetEngine(fragmentation, semiring=reachability_semiring(), **kwargs)


def shortest_path_engine(fragmentation: Fragmentation, **kwargs) -> DisconnectionSetEngine:
    """Convenience constructor for a shortest-path engine."""
    return DisconnectionSetEngine(fragmentation, semiring=shortest_path_semiring(), **kwargs)
