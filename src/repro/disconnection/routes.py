"""Route reconstruction: turning disconnection-set answers into node sequences.

The paper's motivating question is not only "what is the *cost* of the
shortest path between Amsterdam and Milan?" but also which route realises it.
Reconstructing the route distributedly needs two extra ingredients on top of
the cost machinery:

* each per-fragment subquery must remember, per (entry, exit) pair, the node
  sequence inside its (augmented) fragment subgraph, and
* shortcut edges taken from the complementary information must be expanded
  back into the real nodes they summarise — which requires the complementary
  information to have been precomputed with ``store_paths=True``.

:class:`RouteReconstructingEngine` wraps the same catalog/planner machinery as
:class:`~repro.disconnection.engine.DisconnectionSetEngine` and adds the
book-keeping; it only supports the shortest-path semiring (routes are not
meaningful for plain reachability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Dict, Hashable, List, Optional, Tuple

from ..closure import array_dijkstra, reconstruct_id_path
from ..exceptions import DisconnectedError, NoChainError
from ..fragmentation import Fragmentation
from ..graph import DiGraph, dijkstra, reconstruct_path
from .catalog import DistributedCatalog, FragmentSite
from .complementary import ComplementaryInformation, precompute_complementary_information
from .planner import ChainPlan, LocalQuerySpec, QueryPlanner

Node = Hashable


@dataclass
class RoutedAnswer:
    """A best path together with the route that realises it.

    Attributes:
        source, target: the queried endpoints.
        cost: the total path cost.
        route: the node sequence from ``source`` to ``target`` in the base
            graph (shortcut edges fully expanded).
        chain: the fragment chain the route was assembled from.
    """

    source: Node
    target: Node
    cost: float
    route: List[Node] = field(default_factory=list)
    chain: Tuple[int, ...] = ()

    def hops(self) -> int:
        """Return the number of edges on the route."""
        return max(0, len(self.route) - 1)


@dataclass
class _LocalRoutes:
    """Per-fragment entry-to-exit costs and node sequences."""

    values: Dict[Tuple[Node, Node], float] = field(default_factory=dict)
    paths: Dict[Tuple[Node, Node], List[Node]] = field(default_factory=dict)


class RouteReconstructingEngine:
    """Answer shortest-path queries with full route reconstruction.

    Args:
        fragmentation: the deployed fragmentation.
        complementary: optionally reuse complementary information; it must
            have been precomputed with ``store_paths=True`` (the constructor
            recomputes it with paths otherwise).
        max_chains: cap on the number of fragment chains examined per query.
        use_compact: run the per-fragment predecessor-tracking Dijkstra on
            the site's cached compact (CSR) graph via the array kernel (the
            default); ``False`` restores the dict-based walk over the
            augmented subgraph — kept as the equivalence baseline.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        complementary: Optional[ComplementaryInformation] = None,
        max_chains: Optional[int] = 32,
        use_compact: bool = True,
    ) -> None:
        if complementary is None or not complementary.paths:
            complementary = precompute_complementary_information(fragmentation, store_paths=True)
        self._complementary = complementary
        self._catalog = DistributedCatalog(fragmentation, complementary=complementary)
        self._planner = QueryPlanner(self._catalog, max_chains=max_chains)
        self._use_compact = use_compact

    @property
    def catalog(self) -> DistributedCatalog:
        """The distributed catalog the engine queries."""
        return self._catalog

    # ---------------------------------------------------------------- public

    def shortest_path(self, source: Node, target: Node) -> RoutedAnswer:
        """Return the cheapest route from ``source`` to ``target``.

        Raises:
            NoChainError: when an endpoint is stored nowhere or no fragment
                chain connects the endpoints.
            DisconnectedError: when the chain exists but no path does.
        """
        if source == target and self._catalog.sites_storing_node(source):
            return RoutedAnswer(source=source, target=target, cost=0.0, route=[source])
        plan = self._planner.plan(source, target)
        best: Optional[RoutedAnswer] = None
        for chain_plan in plan.chains:
            candidate = self._evaluate_chain(chain_plan)
            if candidate is None:
                continue
            if best is None or candidate.cost < best.cost:
                best = candidate
        if best is None:
            raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
        return best

    # -------------------------------------------------------------- internals

    def _evaluate_chain(self, plan: ChainPlan) -> Optional[RoutedAnswer]:
        """Evaluate one chain with route book-keeping; return None when no path exists."""
        local_results = [
            self._evaluate_local(self._site_for(spec), spec) for spec in plan.local_queries
        ]
        # Dynamic program over the chain with back-pointers.
        frontier: Dict[Node, Tuple[float, List[Node]]] = {plan.source: (0.0, [plan.source])}
        for local in local_results:
            next_frontier: Dict[Node, Tuple[float, List[Node]]] = {}
            for (entry, exit_node), value in local.values.items():
                if entry not in frontier:
                    continue
                accumulated_cost, accumulated_route = frontier[entry]
                candidate_cost = accumulated_cost + value
                incumbent = next_frontier.get(exit_node)
                if incumbent is None or candidate_cost < incumbent[0]:
                    segment = local.paths[(entry, exit_node)]
                    next_frontier[exit_node] = (
                        candidate_cost,
                        _join_routes(accumulated_route, segment),
                    )
            frontier = next_frontier
            if not frontier:
                return None
        if plan.target not in frontier:
            return None
        cost, route = frontier[plan.target]
        return RoutedAnswer(
            source=plan.source,
            target=plan.target,
            cost=cost,
            route=self._expand_shortcuts(route),
            chain=plan.chain,
        )

    def _site_for(self, spec: LocalQuerySpec) -> FragmentSite:
        return self._catalog.site(spec.fragment_id)

    def _evaluate_local(self, site: FragmentSite, spec: LocalQuerySpec) -> _LocalRoutes:
        """Per-fragment Dijkstra with predecessor tracking (compact kernel by default)."""
        if self._use_compact:
            return self._evaluate_local_compact(site, spec)
        graph = site.augmented_subgraph()
        result = _LocalRoutes()
        exit_nodes = {node for node in spec.exit_nodes if graph.has_node(node)}
        for entry in spec.entry_nodes:
            if not graph.has_node(entry) or not exit_nodes:
                continue
            distances, predecessors = dijkstra(graph, entry, targets=set(exit_nodes))
            for exit_node in exit_nodes:
                if exit_node not in distances:
                    continue
                result.values[(entry, exit_node)] = distances[exit_node]
                result.paths[(entry, exit_node)] = reconstruct_path(predecessors, entry, exit_node)
        return result

    def _evaluate_local_compact(self, site: FragmentSite, spec: LocalQuerySpec) -> _LocalRoutes:
        """The same search on the site's cached CSR graph via ``array_dijkstra``.

        The kernel's flat predecessor array replaces the dict predecessor
        map; ids are translated back through the interner when a path is
        materialised, so downstream shortcut expansion sees original nodes.
        """
        graph = site.compact()
        result = _LocalRoutes()
        exits = [
            (node, node_id)
            for node in spec.exit_nodes
            for node_id in (graph.try_node_id(node),)
            if node_id >= 0
        ]
        if not exits:
            return result
        target_ids = [exit_id for _, exit_id in exits]
        for entry in spec.entry_nodes:
            entry_id = graph.try_node_id(entry)
            if entry_id < 0:
                continue
            distances, predecessors, _ = array_dijkstra(graph, entry_id, target_ids=target_ids)
            for exit_node, exit_id in exits:
                if distances[exit_id] == inf:
                    continue
                result.values[(entry, exit_node)] = distances[exit_id]
                path_ids = reconstruct_id_path(predecessors, entry_id, exit_id)
                result.paths[(entry, exit_node)] = [graph.node_of(p) for p in path_ids]
        return result

    def _expand_shortcuts(self, route: List[Node]) -> List[Node]:
        """Replace shortcut hops in ``route`` by the real nodes they summarise.

        A hop (a, b) of the stitched route is a shortcut when it is not an
        edge of the base graph; the complementary information stores the node
        sequence realising it.
        """
        base_graph: DiGraph = self._catalog.fragmentation.graph
        expanded: List[Node] = []
        for index, node in enumerate(route):
            if index == 0:
                expanded.append(node)
                continue
            previous = route[index - 1]
            stored = self._complementary.path_between(previous, node)
            if base_graph.has_edge(previous, node):
                # A border pair may have both a direct edge and a cheaper
                # precomputed detour; the local search used whichever was
                # cheaper, so pick the expansion matching that choice.
                direct_weight = base_graph.edge_weight(previous, node)
                if stored is not None and _route_cost(base_graph, stored) < direct_weight:
                    expanded.extend(stored[1:])
                else:
                    expanded.append(node)
                continue
            if stored is None:
                # The hop must be a zero-length repetition (entry == exit on a
                # border node); keep the node without duplicating it.
                if previous != node:
                    expanded.append(node)
                continue
            expanded.extend(stored[1:])
        return _dedupe_consecutive(expanded)


def _route_cost(graph: DiGraph, route: List[Node]) -> float:
    """Return the total edge weight of ``route`` in ``graph``."""
    return sum(graph.edge_weight(a, b) for a, b in zip(route, route[1:]))


def _join_routes(prefix: List[Node], segment: List[Node]) -> List[Node]:
    """Concatenate two node sequences that share their junction node."""
    if not prefix:
        return list(segment)
    if not segment:
        return list(prefix)
    if prefix[-1] == segment[0]:
        return prefix + segment[1:]
    return prefix + segment


def _dedupe_consecutive(route: List[Node]) -> List[Node]:
    """Remove consecutive duplicates introduced by zero-length junction hops."""
    cleaned: List[Node] = []
    for node in route:
        if not cleaned or cleaned[-1] != node:
            cleaned.append(node)
    return cleaned
