"""Complementary information for disconnection sets.

To make the disconnection set approach produce *correct and precise* answers,
each pair of adjacent fragments stores complementary information about its
disconnection set (Sec. 2.1): for the shortest path problem, the shortest path
in the **whole graph** between any two border nodes of the disconnection set.
A path between two nodes of a chain of fragments may briefly leave the chain;
its contribution is exactly what the precomputed border-to-border values
capture (footnote 3 of the paper).

The complementary information depends on the path problem (semiring); the
precomputation therefore takes the semiring as a parameter, defaulting to
shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..closure import (
    Semiring,
    array_dijkstra,
    bitset_reachable,
    reachability_rows,
    reconstruct_id_path,
    seminaive_closure_ids,
    shortest_path_semiring,
)
from ..fragmentation import Fragmentation
from ..graph import CompactGraph

Node = Hashable
FragmentPair = Tuple[int, int]
BorderPair = Tuple[Node, Node]


@dataclass
class ComplementaryInformation:
    """Precomputed border-to-border path values for every disconnection set.

    Attributes:
        semiring_name: which path problem the values solve.
        values: per fragment pair ``(i, j)`` (with ``i < j``), a mapping from
            ordered border-node pairs to the best path value between them in
            the full graph.  Pairs with no connecting path are absent.
        paths: optionally (``store_paths=True`` at precompute time), the node
            sequence realising each stored value; used to expand shortcut
            edges when an actual route (not only its cost) is requested.
        precompute_work: number of elementary search steps (settled nodes)
            spent building the information; reported by the benchmarks as the
            preprocessing cost the paper warns about.
    """

    semiring_name: str
    values: Dict[FragmentPair, Dict[BorderPair, object]] = field(default_factory=dict)
    paths: Dict[FragmentPair, Dict[BorderPair, List[Node]]] = field(default_factory=dict)
    precompute_work: int = 0

    def for_pair(self, i: int, j: int) -> Dict[BorderPair, object]:
        """Return the border-to-border values for the unordered fragment pair."""
        key = (i, j) if i <= j else (j, i)
        return self.values.get(key, {})

    def path_between(self, a: Node, b: Node) -> Optional[List[Node]]:
        """Return a stored node sequence realising the (a, b) shortcut, if any.

        Only available when the information was precomputed with
        ``store_paths=True``; the first match over all disconnection sets is
        returned (the stored paths are all globally optimal, so ties are
        equivalent).
        """
        for pairs in self.paths.values():
            if (a, b) in pairs:
                return list(pairs[(a, b)])
        return None

    def shortcut_edges(self, fragment_id: int, fragmentation: Fragmentation) -> List[Tuple[Node, Node, object]]:
        """Return the shortcut edges stored at ``fragment_id``.

        These are the (border, border, value) triples of every disconnection
        set the fragment participates in; the local query evaluator adds them
        to the fragment subgraph so that paths detouring outside the fragment
        are accounted for without any communication.
        """
        shortcuts: List[Tuple[Node, Node, object]] = []
        for neighbour in fragmentation.adjacent_fragments(fragment_id):
            for (a, b), value in self.for_pair(fragment_id, neighbour).items():
                shortcuts.append((a, b, value))
        return shortcuts

    def size_in_facts(self) -> int:
        """Return the total number of precomputed facts (storage cost)."""
        return sum(len(pairs) for pairs in self.values.values())


def precompute_complementary_information(
    fragmentation: Fragmentation,
    *,
    semiring: Optional[Semiring] = None,
    store_paths: bool = False,
    compact: Optional[CompactGraph] = None,
) -> ComplementaryInformation:
    """Precompute the complementary information for every disconnection set.

    The whole graph is compiled once into a
    :class:`~repro.graph.compact.CompactGraph` and every border-node search
    runs as a compact kernel: array-heap Dijkstra for the shortest-path
    semiring (stopped once all border targets are settled), bitset BFS for
    reachability, and the id-level semi-naive fixpoint for custom semirings.

    Args:
        fragmentation: the fragmentation whose disconnection sets are annotated.
        semiring: the path problem; defaults to shortest paths.
        store_paths: additionally store the node sequences realising the
            values (shortest-path semiring only); needed when actual routes
            will be reconstructed, at the cost of larger complementary data.
        compact: a prebuilt compact form of ``fragmentation.graph`` (the
            maintainer's resident mirror); when provided the whole-graph
            compile is skipped entirely.
    """
    semiring = semiring or shortest_path_semiring()
    graph = compact if compact is not None else CompactGraph.from_digraph(fragmentation.graph)
    info = ComplementaryInformation(semiring_name=semiring.name)
    for (i, j), border in fragmentation.disconnection_sets().items():
        pair_values: Dict[BorderPair, object] = {}
        pair_paths: Dict[BorderPair, List[Node]] = {}
        border_set: Set[Node] = set(border)
        if semiring.name == "reachability":
            values_by_source, work = border_values_multi(graph, border_set)
            info.precompute_work += work
            for source, values in values_by_source.items():
                for target, value in values.items():
                    if target != source:
                        pair_values[(source, target)] = value
        else:
            for source in sorted(border_set, key=repr):
                values, work, predecessors = border_values_from(
                    graph, source, border_set, semiring
                )
                info.precompute_work += work
                for target, value in values.items():
                    if target == source:
                        continue
                    pair_values[(source, target)] = value
                    if store_paths and predecessors is not None:
                        path_ids = reconstruct_id_path(
                            predecessors, graph.node_id(source), graph.node_id(target)
                        )
                        pair_paths[(source, target)] = [graph.node_of(p) for p in path_ids]
        info.values[(i, j)] = pair_values
        if store_paths:
            info.paths[(i, j)] = pair_paths
    return info


def border_values_multi(
    graph: CompactGraph,
    border_set: Set[Node],
) -> Tuple[Dict[Node, Dict[Node, object]], int]:
    """Return reachability border-to-border values for *all* sources in one sweep.

    The vectorised counterpart of calling :func:`border_values_from` once per
    border node: the dispatched kernel expands every border source together
    (the packed bit-matrix backend advances all frontiers per round; the
    chain index answers each row from its labels), producing value-identical
    rows at a fraction of the traversal cost.  Work is counted exactly like
    the per-source path — one visited popcount per source — so the
    ``precompute_work`` figure stays comparable across backends.
    """
    sources = sorted((node for node in border_set if graph.has_node(node)), key=repr)
    source_ids = [graph.node_id(node) for node in sources]
    target_ids = {graph.try_node_id(t): t for t in border_set if graph.has_node(t)}
    rows, _ = reachability_rows(graph, source_ids, context="complementary")
    values_by_source: Dict[Node, Dict[Node, object]] = {}
    work = 0
    for source, source_id in zip(sources, source_ids):
        visited = rows[source_id]
        work += visited.bit_count()
        values_by_source[source] = {
            node: True for node_id, node in target_ids.items() if (visited >> node_id) & 1
        }
    return values_by_source, work


def border_values_from(
    graph: CompactGraph,
    source: Node,
    targets: Set[Node],
    semiring: Semiring,
) -> Tuple[Dict[Node, object], int, Optional[List[int]]]:
    """Return best path values from ``source`` to each target, the work done, and predecessors.

    One "row" of the complementary information: the best whole-graph path
    value from one border node to every node of a target set.  The full
    precomputation calls this per border source, and the incremental repair
    of :mod:`repro.incremental` calls it for exactly the sources an edge
    change may have affected — both paths therefore produce identical values
    for identical graphs.

    The predecessor component (shortest-path semiring only) is the kernel's
    dense id array, translated back by the caller when paths are stored.
    """
    source_id = graph.node_id(source)
    target_ids = {graph.try_node_id(t): t for t in targets if graph.has_node(t)}
    if semiring.name == "shortest_path":
        distances, predecessors, settled = array_dijkstra(
            graph, source_id, target_ids=set(target_ids)
        )
        values = {
            node: distances[node_id]
            for node_id, node in target_ids.items()
            if distances[node_id] != inf
        }
        return values, settled, predecessors
    if semiring.name == "reachability":
        visited = bitset_reachable(graph, source_id)
        values = {node: True for node_id, node in target_ids.items() if (visited >> node_id) & 1}
        return values, visited.bit_count(), None
    # Generic fallback: restricted semi-naive closure from the single source.
    id_values, statistics = seminaive_closure_ids(graph, semiring, source_ids=[source_id])
    values = {
        node: id_values[(source_id, node_id)]
        for node_id, node in target_ids.items()
        if (source_id, node_id) in id_values
    }
    return values, statistics.tuples_produced, None
