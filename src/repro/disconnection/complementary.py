"""Complementary information for disconnection sets.

To make the disconnection set approach produce *correct and precise* answers,
each pair of adjacent fragments stores complementary information about its
disconnection set (Sec. 2.1): for the shortest path problem, the shortest path
in the **whole graph** between any two border nodes of the disconnection set.
A path between two nodes of a chain of fragments may briefly leave the chain;
its contribution is exactly what the precomputed border-to-border values
capture (footnote 3 of the paper).

The complementary information depends on the path problem (semiring); the
precomputation therefore takes the semiring as a parameter, defaulting to
shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..fragmentation import Fragmentation
from ..graph import DiGraph, bfs_levels, dijkstra

Node = Hashable
FragmentPair = Tuple[int, int]
BorderPair = Tuple[Node, Node]


@dataclass
class ComplementaryInformation:
    """Precomputed border-to-border path values for every disconnection set.

    Attributes:
        semiring_name: which path problem the values solve.
        values: per fragment pair ``(i, j)`` (with ``i < j``), a mapping from
            ordered border-node pairs to the best path value between them in
            the full graph.  Pairs with no connecting path are absent.
        paths: optionally (``store_paths=True`` at precompute time), the node
            sequence realising each stored value; used to expand shortcut
            edges when an actual route (not only its cost) is requested.
        precompute_work: number of elementary search steps (settled nodes)
            spent building the information; reported by the benchmarks as the
            preprocessing cost the paper warns about.
    """

    semiring_name: str
    values: Dict[FragmentPair, Dict[BorderPair, object]] = field(default_factory=dict)
    paths: Dict[FragmentPair, Dict[BorderPair, List[Node]]] = field(default_factory=dict)
    precompute_work: int = 0

    def for_pair(self, i: int, j: int) -> Dict[BorderPair, object]:
        """Return the border-to-border values for the unordered fragment pair."""
        key = (i, j) if i <= j else (j, i)
        return self.values.get(key, {})

    def path_between(self, a: Node, b: Node) -> Optional[List[Node]]:
        """Return a stored node sequence realising the (a, b) shortcut, if any.

        Only available when the information was precomputed with
        ``store_paths=True``; the first match over all disconnection sets is
        returned (the stored paths are all globally optimal, so ties are
        equivalent).
        """
        for pairs in self.paths.values():
            if (a, b) in pairs:
                return list(pairs[(a, b)])
        return None

    def shortcut_edges(self, fragment_id: int, fragmentation: Fragmentation) -> List[Tuple[Node, Node, object]]:
        """Return the shortcut edges stored at ``fragment_id``.

        These are the (border, border, value) triples of every disconnection
        set the fragment participates in; the local query evaluator adds them
        to the fragment subgraph so that paths detouring outside the fragment
        are accounted for without any communication.
        """
        shortcuts: List[Tuple[Node, Node, object]] = []
        for neighbour in fragmentation.adjacent_fragments(fragment_id):
            for (a, b), value in self.for_pair(fragment_id, neighbour).items():
                shortcuts.append((a, b, value))
        return shortcuts

    def size_in_facts(self) -> int:
        """Return the total number of precomputed facts (storage cost)."""
        return sum(len(pairs) for pairs in self.values.values())


def precompute_complementary_information(
    fragmentation: Fragmentation,
    *,
    semiring: Optional[Semiring] = None,
    store_paths: bool = False,
) -> ComplementaryInformation:
    """Precompute the complementary information for every disconnection set.

    For the shortest-path semiring the values are global shortest distances
    between border nodes (one Dijkstra per border node, stopped once all
    border targets are settled); for the reachability semiring they are global
    reachability facts computed with BFS.

    Args:
        fragmentation: the fragmentation whose disconnection sets are annotated.
        semiring: the path problem; defaults to shortest paths.
        store_paths: additionally store the node sequences realising the
            values (shortest-path semiring only); needed when actual routes
            will be reconstructed, at the cost of larger complementary data.
    """
    semiring = semiring or shortest_path_semiring()
    graph = fragmentation.graph
    info = ComplementaryInformation(semiring_name=semiring.name)
    for (i, j), border in fragmentation.disconnection_sets().items():
        pair_values: Dict[BorderPair, object] = {}
        pair_paths: Dict[BorderPair, List[Node]] = {}
        border_set: Set[Node] = set(border)
        for source in sorted(border_set, key=repr):
            values, work, predecessors = _best_values_from(graph, source, border_set, semiring)
            info.precompute_work += work
            for target, value in values.items():
                if target == source:
                    continue
                pair_values[(source, target)] = value
                if store_paths and predecessors is not None:
                    from ..graph import reconstruct_path

                    pair_paths[(source, target)] = reconstruct_path(predecessors, source, target)
        info.values[(i, j)] = pair_values
        if store_paths:
            info.paths[(i, j)] = pair_paths
    return info


def _best_values_from(
    graph: DiGraph,
    source: Node,
    targets: Set[Node],
    semiring: Semiring,
) -> Tuple[Dict[Node, object], int, Optional[Dict[Node, Node]]]:
    """Return best path values from ``source`` to each target, the work done, and predecessors."""
    if semiring.name == "shortest_path":
        distances, predecessors = dijkstra(graph, source, targets=set(targets))
        work = len(distances)
        return {t: d for t, d in distances.items() if t in targets}, work, predecessors
    if semiring.name == "reachability":
        levels = bfs_levels(graph, source)
        work = len(levels)
        return {t: True for t in levels if t in targets}, work, None
    # Generic fallback: restricted semi-naive closure from the single source.
    from ..closure import seminaive_transitive_closure

    result = seminaive_transitive_closure(graph, semiring=semiring, sources=[source])
    values = {
        target: result.values[(source, target)]
        for target in targets
        if (source, target) in result.values
    }
    return values, result.statistics.tuples_produced, None
