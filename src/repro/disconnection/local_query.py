"""Per-fragment local query evaluation.

Each site evaluates a restricted transitive closure over its own fragment:
"the best path value from every entry node to every exit node".  The entry
nodes act as the selection the paper calls a *keyhole* — only paths travelling
through the disconnection set have to be examined — and the fragment subgraph
is augmented with the complementary-information shortcuts so paths that leave
the fragment (or the chain) are still accounted for, without communication.

Any single-processor algorithm may be used for this step (Sec. 2.1).  For the
two standard semirings the evaluator runs the compact kernels of
:mod:`repro.closure.kernels` over the site's cached
:class:`~repro.graph.compact.CompactGraph` — bitset BFS for reachability,
array-heap Dijkstra for shortest paths — and falls back to the original
dict-based searches (``use_compact=False``, the benchmark baseline) or to a
restricted semi-naive fixpoint for custom semirings.  The work counters it
returns (iterations ≈ fragment diameter, tuples produced) feed the parallel
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import Dict, Hashable, List, Optional, Tuple

from ..closure import (
    ClosureStatistics,
    Semiring,
    array_dijkstra,
    reachability_rows,
    shortest_path_semiring,
)
from ..graph import DiGraph, bfs_levels, dijkstra, hop_diameter
from .catalog import CompactFragmentSite, FragmentSite
from .planner import LocalQuerySpec

Node = Hashable
PathValue = object

COMPACT_SEMIRINGS = ("shortest_path", "reachability")


@dataclass
class LocalQueryResult:
    """The result of one per-fragment subquery.

    Attributes:
        fragment_id: the site that produced the result.
        values: mapping ``(entry_node, exit_node) -> best path value``.
        statistics: work counters for the local evaluation.
        estimated_iterations: the number of fixpoint iterations a semi-naive
            evaluation of this subquery needs (≈ the fragment diameter); used
            by the simulator's cost model.
        semiring: the path problem the values belong to; threads the correct
            ``plus`` into :meth:`exit_values` (set by the evaluator, absent
            on hand-built results).
        backend: which kernel backend served the evaluation (``bigint``,
            ``numpy``, ``chain``, or ``dijkstra``/``dict`` for the non-bitset
            paths); surfaces in worker payloads and trace spans.
        overlay: whether the site's compact graph carried an uncompacted
            delta overlay at evaluation time — the kernels read straight
            through it; surfaces in worker payloads and trace spans.
    """

    fragment_id: int
    values: Dict[Tuple[Node, Node], PathValue] = field(default_factory=dict)
    statistics: ClosureStatistics = field(default_factory=ClosureStatistics)
    estimated_iterations: int = 0
    semiring: Optional[Semiring] = field(default=None, repr=False, compare=False)
    backend: Optional[str] = field(default=None, compare=False)
    overlay: bool = field(default=False, compare=False)

    def exit_values(self, semiring: Optional[Semiring] = None) -> Dict[Node, PathValue]:
        """Return the best value per exit node over all entry nodes (for reporting).

        "Best" is decided by the semiring's ``plus`` (``min`` for shortest
        paths, ``or`` for reachability, ``max`` for widest paths, …), taken
        from the ``semiring`` argument or the result's own semiring.  Only
        when neither is available does the legacy raw ``<`` comparison apply,
        which is correct solely for min-style numeric path problems.
        """
        semiring = semiring or self.semiring
        best: Dict[Node, PathValue] = {}
        for (_, exit_node), value in self.values.items():
            if exit_node not in best:
                best[exit_node] = value
            elif semiring is not None:
                best[exit_node] = semiring.plus(best[exit_node], value)
            elif value < best[exit_node]:  # type: ignore[operator]
                best[exit_node] = value
        return best

    def is_empty(self) -> bool:
        """Return ``True`` when no entry node reaches any exit node."""
        return not self.values


class LocalQueryEvaluator:
    """Evaluates :class:`LocalQuerySpec` subqueries against a fragment site.

    Args:
        semiring: the path problem (defaults to shortest paths).
        use_shortcuts: disable to evaluate on the bare fragment subgraph
            (ablation runs).
        use_compact: evaluate the two standard semirings with the compact
            kernels over the site's cached ``CompactGraph`` (the default).
            ``False`` forces the original dict-based per-source searches —
            kept as the benchmark baseline and for sites without a compact
            form.  Custom semirings always use the dict-based fixpoint.
        backend: pin a reachability kernel backend (``bigint``, ``numpy`` or
            ``chain``) instead of letting :func:`repro.closure.select_kernel`
            choose by shape; answers are identical either way.

    The evaluator accepts either a full :class:`FragmentSite` or the
    plain-data :class:`CompactFragmentSite` a resident worker holds; the
    latter supports compact evaluation only.
    """

    def __init__(
        self,
        *,
        semiring: Optional[Semiring] = None,
        use_shortcuts: bool = True,
        use_compact: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._use_shortcuts = use_shortcuts
        self._use_compact = use_compact
        self._backend = backend

    @property
    def semiring(self) -> Semiring:
        """The path problem being evaluated."""
        return self._semiring

    def evaluate(
        self, site: FragmentSite | CompactFragmentSite, spec: LocalQuerySpec
    ) -> LocalQueryResult:
        """Evaluate ``spec`` on ``site`` and return the entry-to-exit path values.

        The returned statistics carry ``elapsed_seconds``, timed here so the
        measurement happens in whichever process runs the kernel — a worker's
        in-process timing ships back with the result, needing no clock
        agreement with the coordinator.
        """
        started = perf_counter()
        result = LocalQueryResult(fragment_id=site.fragment_id, semiring=self._semiring)
        compact_only = isinstance(site, CompactFragmentSite)
        if compact_only and self._semiring.name not in COMPACT_SEMIRINGS:
            raise ValueError(
                f"a compact fragment site only supports the {COMPACT_SEMIRINGS} semirings"
            )
        if (self._use_compact or compact_only) and self._semiring.name in COMPACT_SEMIRINGS:
            result = self._evaluate_compact(site, spec, result)
        else:
            result = self._evaluate_dict(site, spec, result)
        result.statistics.elapsed_seconds = perf_counter() - started
        return result

    # ----------------------------------------------------------- kernel path

    def _evaluate_compact(
        self,
        site: FragmentSite | CompactFragmentSite,
        spec: LocalQuerySpec,
        result: LocalQueryResult,
    ) -> LocalQueryResult:
        graph = site.compact(use_shortcuts=self._use_shortcuts)
        result.overlay = graph.has_overlay()
        result.estimated_iterations = site.local_iterations()
        entries = [
            (node, node_id)
            for node in spec.entry_nodes
            for node_id in (graph.try_node_id(node),)
            if node_id >= 0
        ]
        exits = [
            (node, node_id)
            for node in spec.exit_nodes
            for node_id in (graph.try_node_id(node),)
            if node_id >= 0
        ]
        if not entries or not exits:
            return result
        if self._semiring.name == "reachability":
            exit_mask = 0
            for _, exit_id in exits:
                exit_mask |= 1 << exit_id
            rows, chosen = reachability_rows(
                graph,
                [entry_id for _, entry_id in entries],
                backend=self._backend,
                context="local_query",
                stop_mask=exit_mask,
            )
            result.backend = chosen
            for entry, entry_id in entries:
                visited = rows[entry_id]
                produced = 0
                for exit_node, exit_id in exits:
                    if (visited >> exit_id) & 1:
                        result.values[(entry, exit_node)] = True
                        produced += 1
                result.statistics.record_round(visited.bit_count(), produced)
        else:
            result.backend = "dijkstra"
            target_ids = [exit_id for _, exit_id in exits]
            for entry, entry_id in entries:
                distances, _, settled = array_dijkstra(graph, entry_id, target_ids=target_ids)
                produced = 0
                for exit_node, exit_id in exits:
                    if distances[exit_id] != inf:
                        result.values[(entry, exit_node)] = distances[exit_id]
                        produced += 1
                result.statistics.record_round(settled, produced)
        return result

    # ------------------------------------------------- dict-based strategies

    def _evaluate_dict(
        self, site: FragmentSite, spec: LocalQuerySpec, result: LocalQueryResult
    ) -> LocalQueryResult:
        graph = site.augmented_subgraph() if self._use_shortcuts else site.subgraph
        result.backend = "dict"
        entry_nodes = [node for node in spec.entry_nodes if graph.has_node(node)]
        exit_nodes = {node for node in spec.exit_nodes if graph.has_node(node)}
        result.estimated_iterations = hop_diameter(site.subgraph) + 1
        if not entry_nodes or not exit_nodes:
            return result
        if self._semiring.name == "shortest_path":
            self._evaluate_shortest_path(graph, entry_nodes, exit_nodes, result)
        elif self._semiring.name == "reachability":
            self._evaluate_reachability(graph, entry_nodes, exit_nodes, result)
        else:
            self._evaluate_generic(graph, entry_nodes, exit_nodes, result)
        return result

    def _evaluate_shortest_path(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        for entry in entry_nodes:
            distances, _ = dijkstra(graph, entry, targets=set(exit_nodes))
            produced = 0
            for exit_node in exit_nodes:
                if exit_node in distances:
                    result.values[(entry, exit_node)] = distances[exit_node]
                    produced += 1
            result.statistics.record_round(len(distances), produced)

    def _evaluate_reachability(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        for entry in entry_nodes:
            levels = bfs_levels(graph, entry)
            produced = 0
            for exit_node in exit_nodes:
                if exit_node in levels:
                    result.values[(entry, exit_node)] = True
                    produced += 1
            result.statistics.record_round(len(levels), produced)

    def _evaluate_generic(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        from ..closure import seminaive_transitive_closure

        closure = seminaive_transitive_closure(graph, semiring=self._semiring, sources=entry_nodes)
        result.statistics = closure.statistics
        for (source, target), value in closure.values.items():
            if target in exit_nodes:
                result.values[(source, target)] = value
