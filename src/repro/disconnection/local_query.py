"""Per-fragment local query evaluation.

Each site evaluates a restricted transitive closure over its own fragment:
"the best path value from every entry node to every exit node".  The entry
nodes act as the selection the paper calls a *keyhole* — only paths travelling
through the disconnection set have to be examined — and the fragment subgraph
is augmented with the complementary-information shortcuts so paths that leave
the fragment (or the chain) are still accounted for, without communication.

Any single-processor algorithm may be used for this step (Sec. 2.1); the
evaluator picks a per-source search (Dijkstra or BFS) for the two standard
semirings and falls back to a restricted semi-naive fixpoint otherwise.  The
work counters it returns (iterations ≈ fragment diameter, tuples produced)
feed the parallel cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..closure import ClosureStatistics, Semiring, shortest_path_semiring
from ..graph import DiGraph, bfs_levels, dijkstra, hop_diameter
from .catalog import FragmentSite
from .planner import LocalQuerySpec

Node = Hashable
PathValue = object


@dataclass
class LocalQueryResult:
    """The result of one per-fragment subquery.

    Attributes:
        fragment_id: the site that produced the result.
        values: mapping ``(entry_node, exit_node) -> best path value``.
        statistics: work counters for the local evaluation.
        estimated_iterations: the number of fixpoint iterations a semi-naive
            evaluation of this subquery needs (≈ the fragment diameter); used
            by the simulator's cost model.
    """

    fragment_id: int
    values: Dict[Tuple[Node, Node], PathValue] = field(default_factory=dict)
    statistics: ClosureStatistics = field(default_factory=ClosureStatistics)
    estimated_iterations: int = 0

    def exit_values(self) -> Dict[Node, PathValue]:
        """Return the best value per exit node over all entry nodes (for reporting)."""
        best: Dict[Node, PathValue] = {}
        for (_, exit_node), value in self.values.items():
            if exit_node not in best or value < best[exit_node]:  # type: ignore[operator]
                best[exit_node] = value
        return best

    def is_empty(self) -> bool:
        """Return ``True`` when no entry node reaches any exit node."""
        return not self.values


class LocalQueryEvaluator:
    """Evaluates :class:`LocalQuerySpec` subqueries against a :class:`FragmentSite`."""

    def __init__(self, *, semiring: Optional[Semiring] = None, use_shortcuts: bool = True) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._use_shortcuts = use_shortcuts

    @property
    def semiring(self) -> Semiring:
        """The path problem being evaluated."""
        return self._semiring

    def evaluate(self, site: FragmentSite, spec: LocalQuerySpec) -> LocalQueryResult:
        """Evaluate ``spec`` on ``site`` and return the entry-to-exit path values."""
        graph = site.augmented_subgraph() if self._use_shortcuts else site.subgraph
        entry_nodes = [node for node in spec.entry_nodes if graph.has_node(node)]
        exit_nodes = {node for node in spec.exit_nodes if graph.has_node(node)}
        result = LocalQueryResult(fragment_id=site.fragment_id)
        result.estimated_iterations = hop_diameter(site.subgraph) + 1
        if not entry_nodes or not exit_nodes:
            return result
        if self._semiring.name == "shortest_path":
            self._evaluate_shortest_path(graph, entry_nodes, exit_nodes, result)
        elif self._semiring.name == "reachability":
            self._evaluate_reachability(graph, entry_nodes, exit_nodes, result)
        else:
            self._evaluate_generic(graph, entry_nodes, exit_nodes, result)
        return result

    # ------------------------------------------------------------ strategies

    def _evaluate_shortest_path(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        for entry in entry_nodes:
            distances, _ = dijkstra(graph, entry, targets=set(exit_nodes))
            produced = 0
            for exit_node in exit_nodes:
                if exit_node in distances:
                    result.values[(entry, exit_node)] = distances[exit_node]
                    produced += 1
            result.statistics.record_round(len(distances), produced)

    def _evaluate_reachability(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        for entry in entry_nodes:
            levels = bfs_levels(graph, entry)
            produced = 0
            for exit_node in exit_nodes:
                if exit_node in levels:
                    result.values[(entry, exit_node)] = True
                    produced += 1
            result.statistics.record_round(len(levels), produced)

    def _evaluate_generic(
        self,
        graph: DiGraph,
        entry_nodes: List[Node],
        exit_nodes: set,
        result: LocalQueryResult,
    ) -> None:
        from ..closure import seminaive_transitive_closure

        closure = seminaive_transitive_closure(graph, semiring=self._semiring, sources=entry_nodes)
        result.statistics = closure.statistics
        for (source, target), value in closure.values.items():
            if target in exit_nodes:
                result.values[(source, target)] = value
