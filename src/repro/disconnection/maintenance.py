"""Update handling: maintaining a deployed fragmentation under edge changes.

The paper names "the careful treatment of updates" as the second cost of the
disconnection set approach (Sec. 2.1): whenever the base relation changes, the
affected fragment must be updated and the complementary information of the
disconnection sets it participates in may have to be recomputed.  As long as
updates are not too frequent, this cost is amortised over many queries.

:class:`FragmentedDatabase` implements exactly that contract:

* edge insertions are routed to the fragment owning (or adjacent to) the
  endpoints; brand-new nodes extend the fragment chosen by locality,
* edge deletions are routed to the owning fragment,
* with ``incremental=True`` (the serving default) a live engine is maintained
  **in place** by the :mod:`repro.incremental` subsystem: only the dirty
  fragment's compact state is rebuilt, only the border rows an edge change
  can provably affect are re-searched, and the per-fragment
  :class:`~repro.incremental.versions.VersionVector` plus
  :class:`~repro.incremental.delta.DeltaLog` record exactly what moved,
* otherwise (or when an update falls outside the incremental envelope) the
  engine is rebuilt lazily and the complementary information recomputed —
  the classic full-invalidation path, still the correctness baseline.

The class deliberately does not re-run the fragmentation algorithm on every
update: the paper treats fragmentation design as an offline decision, and
re-fragmenting per update would defeat the amortisation argument.
``refragment()`` is the explicit reorganisation entry point — and it is no
longer catastrophic: with a live engine and a standard semiring the new
layout is applied *in place* by :class:`~repro.refragmentation.live.LiveRefragmenter`
(ids aligned so surviving fragments keep their sites, complementary
information repaired per disconnection set, only changed fragments rebuilt),
and the applied layout is recorded in the delta log so replicas can replay
across the reorganisation instead of resnapshotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..exceptions import FragmentationError
from ..fragmentation import Fragmentation, Fragmenter
from ..graph import CompactGraph, DiGraph
from ..incremental.delta import DeltaLog, DeltaRecord, EdgeChange, changes_to_delta
from ..incremental.versions import VersionVector
from .catalog import CompactFragmentSite
from .complementary import ComplementaryInformation, precompute_complementary_information
from .engine import DisconnectionSetEngine

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass(frozen=True)
class UpdateEvent:
    """One applied change to the fragmented base relation.

    Listeners registered with :meth:`FragmentedDatabase.add_update_listener`
    receive these events after the change is applied — the hook a serving
    layer uses to invalidate caches and re-pin worker state.

    Attributes:
        kind: ``"insert"``, ``"delete"``, ``"reweight"`` or ``"refragment"``.
        source, target: the affected edge's endpoints (``None`` for
            ``refragment``, which affects every fragment).
        fragment_id: the fragment that absorbed the change (``None`` for
            ``refragment``).
        dirty_fragments: every fragment whose prepared state moved; with an
            incremental apply this is the scoped set a listener should
            invalidate, otherwise it mirrors the affected fragment.
        incremental: ``True`` when the change was absorbed in place (the
            engine object survived); ``False`` means the engine will be
            rebuilt and listeners should invalidate globally.
    """

    kind: str
    source: Optional[Node] = None
    target: Optional[Node] = None
    fragment_id: Optional[int] = None
    dirty_fragments: Tuple[int, ...] = ()
    incremental: bool = False


@dataclass
class UpdateStatistics:
    """Bookkeeping of the maintenance work triggered by updates."""

    edges_inserted: int = 0
    edges_deleted: int = 0
    complementary_refreshes: int = 0
    affected_fragment_pairs: int = 0
    engine_rebuilds: int = 0
    incremental_updates: int = 0
    pairs_repaired: int = 0
    rows_recomputed: int = 0
    refragments: int = 0
    scoped_refragments: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return {
            "edges_inserted": self.edges_inserted,
            "edges_deleted": self.edges_deleted,
            "complementary_refreshes": self.complementary_refreshes,
            "affected_fragment_pairs": self.affected_fragment_pairs,
            "engine_rebuilds": self.engine_rebuilds,
            "incremental_updates": self.incremental_updates,
            "pairs_repaired": self.pairs_repaired,
            "rows_recomputed": self.rows_recomputed,
            "refragments": self.refragments,
            "scoped_refragments": self.scoped_refragments,
        }


class FragmentedDatabase:
    """A mutable, fragmented graph database with disconnection-set querying.

    Args:
        fragmentation: the initial fragmentation to deploy.
        semiring: the path problem queries will use (defaults to shortest
            paths).
        complementary: optionally reuse already-precomputed complementary
            information for the *initial* state (e.g. from a snapshot); the
            first :meth:`engine` call then costs no search work.  Updates
            still trigger the usual lazy recomputation.
        compact_sites: optionally seed the initial engine's per-fragment
            compact kernel graphs (snapshot reload); after an update the
            rebuilt engine re-derives only the affected fragments' compact
            forms lazily.
        incremental: maintain a live engine in place on update (scoped
            complementary repair + per-fragment compact rebuilds) instead of
            tearing it down.  Updates outside the incremental envelope fall
            back to the classic rebuild automatically.
        version_vector: seed the per-fragment version vector (snapshot
            reload, so a restored service resumes mid-stream).
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
        compact_sites: Optional[Dict[int, "CompactFragmentSite"]] = None,
        incremental: bool = False,
        version_vector: Optional[VersionVector] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._graph = fragmentation.graph.copy()
        self._fragment_edges: List[Set[Edge]] = [
            set(fragment.edges) for fragment in fragmentation.fragments
        ]
        self._algorithm = fragmentation.algorithm
        self._stale = True
        self._engine: Optional[DisconnectionSetEngine] = None
        self._listeners: List[Callable[[UpdateEvent], None]] = []
        self.statistics = UpdateStatistics()
        self._incremental = incremental
        self._maintainer = None  # lazily bound to the live engine generation
        self._mirror: Optional[CompactGraph] = None  # resident whole-graph compact mirror
        self.version_vector = version_vector.copy() if version_vector else VersionVector()
        self.delta_log = DeltaLog()
        self.last_delta = None  # the AppliedDelta of the newest incremental update
        self.last_refragment = None  # the RefragmentResult of the newest scoped redraw
        if complementary is not None:
            self._engine = DisconnectionSetEngine(
                fragmentation,
                semiring=self._semiring,
                complementary=complementary,
                compact_sites=compact_sites,
            )
            self._stale = False

    # ------------------------------------------------------------ listeners

    def add_update_listener(self, listener: Callable[[UpdateEvent], None]) -> None:
        """Register a callback invoked after every applied update.

        The serving layer hooks its cache invalidation here; listeners run
        synchronously in registration order and must not mutate the database.
        """
        self._listeners.append(listener)

    def _notify(self, event: UpdateEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------- accessors

    @property
    def graph(self) -> DiGraph:
        """The current base graph (a live object; mutate only through this class)."""
        return self._graph

    @property
    def incremental(self) -> bool:
        """Whether updates maintain a live engine in place when possible."""
        return self._incremental

    def fragmentation(self) -> Fragmentation:
        """Return the current fragmentation as an immutable snapshot."""
        populated = [edges for edges in self._fragment_edges if edges]
        return Fragmentation(self._graph, populated, algorithm=self._algorithm)

    def current_engine(self) -> Optional[DisconnectionSetEngine]:
        """Return the live engine if one exists and is fresh (no rebuild)."""
        return self._engine if not self._stale else None

    def compact_mirror(self) -> CompactGraph:
        """Return the resident whole-graph compact mirror (built lazily once).

        One :class:`CompactGraph` of the entire base graph, shared by the
        incremental maintainer's repair searches, complementary
        precomputation, and :class:`~repro.refragmentation.live.LiveRefragmenter`.
        After every applied update the database splices the change into it as
        an O(delta) overlay patch — consumers never pay a whole-graph
        recompile again.
        """
        if self._mirror is None:
            self._mirror = CompactGraph.from_digraph(self._graph)
        return self._mirror

    def _sync_mirror(self, changes: List[EdgeChange]) -> None:
        """Splice applied changes into the resident mirror (O(delta)).

        A failure drops the mirror instead of propagating: the next
        :meth:`compact_mirror` call recompiles it from the base graph, so a
        stale mirror can never outlive the update that broke it.
        """
        if self._mirror is None:
            return
        try:
            self._mirror.apply_delta(changes_to_delta(changes))
        except Exception:
            self._mirror = None

    def engine(self) -> DisconnectionSetEngine:
        """Return a query engine for the current state (rebuilt lazily after updates)."""
        if self._stale or self._engine is None:
            fragmentation = self.fragmentation()
            previous = self._engine.catalog.complementary if self._engine is not None else None
            complementary = precompute_complementary_information(
                fragmentation,
                semiring=self._semiring,
                store_paths=bool(previous is not None and previous.paths),
                compact=self.compact_mirror(),
            )
            self._engine = DisconnectionSetEngine(
                fragmentation, semiring=self._semiring, complementary=complementary
            )
            self.statistics.engine_rebuilds += 1
            self.statistics.complementary_refreshes += len(fragmentation.disconnection_sets())
            self._stale = False
        return self._engine

    def edge_count(self) -> int:
        """Return the number of directed edges currently stored."""
        return self._graph.edge_count()

    # --------------------------------------------------------------- updates

    def insert_edge(
        self,
        source: Node,
        target: Node,
        weight: float = 1.0,
        *,
        symmetric: bool = False,
    ) -> int:
        """Insert an edge and return the fragment id it was assigned to.

        The edge goes to a fragment already containing one of its endpoints
        (preferring a fragment containing both); edges between two previously
        unknown nodes go to the currently smallest fragment.  Inserting an
        edge that already exists reweights it in its owning fragment.
        """
        changes = [self._insert_change(source, target, weight)]
        if symmetric:
            changes.append(self._insert_change(target, source, weight))
        owner = changes[0].fragment_id
        self.statistics.edges_inserted += len(changes)
        dirty, incremental = self._apply_changes("insert", changes)
        self._notify(
            UpdateEvent(
                kind="insert",
                source=source,
                target=target,
                fragment_id=owner,
                dirty_fragments=dirty,
                incremental=incremental,
            )
        )
        return owner

    def delete_edge(self, source: Node, target: Node, *, symmetric: bool = False) -> int:
        """Delete an edge and return the fragment id it was removed from.

        Raises:
            FragmentationError: if the edge is not stored in any fragment.
        """
        owner = self._owner_of_edge(source, target)
        if owner is None:
            raise FragmentationError(f"edge ({source!r}, {target!r}) is not stored")
        changes = [
            EdgeChange(
                op="delete",
                source=source,
                target=target,
                old_weight=self._graph.edge_weight(source, target),
                fragment_id=owner,
            )
        ]
        if symmetric and self._graph.has_edge(target, source):
            reverse_owner = self._owner_of_edge(target, source)
            if reverse_owner is not None:
                changes.append(
                    EdgeChange(
                        op="delete",
                        source=target,
                        target=source,
                        old_weight=self._graph.edge_weight(target, source),
                        fragment_id=reverse_owner,
                    )
                )
        self.statistics.edges_deleted += len(changes)
        dirty, incremental = self._apply_changes("delete", changes)
        self._notify(
            UpdateEvent(
                kind="delete",
                source=source,
                target=target,
                fragment_id=owner,
                dirty_fragments=dirty,
                incremental=incremental,
            )
        )
        return owner

    def update_edge_weight(self, source: Node, target: Node, weight: float) -> int:
        """Change the weight of an existing edge; returns its fragment id."""
        owner = self._owner_of_edge(source, target)
        if owner is None:
            raise FragmentationError(f"edge ({source!r}, {target!r}) is not stored")
        changes = [
            EdgeChange(
                op="reweight",
                source=source,
                target=target,
                weight=float(weight),
                old_weight=self._graph.edge_weight(source, target),
                fragment_id=owner,
            )
        ]
        dirty, incremental = self._apply_changes("reweight", changes)
        self._notify(
            UpdateEvent(
                kind="reweight",
                source=source,
                target=target,
                fragment_id=owner,
                dirty_fragments=dirty,
                incremental=incremental,
            )
        )
        return owner

    def replay_record(self, record: "DeltaRecord") -> Tuple[int, ...]:
        """Re-apply one update recorded in another database's delta log.

        This is the snapshot catch-up path: a database restored from a
        snapshot taken at delta sequence ``n`` replays the live log's tail
        (``records_since(n)``) instead of forcing a fresh snapshot.  Replay
        reuses the recorded elementary :class:`EdgeChange` list — including
        each change's original owning fragment — so the replayed state
        matches the live database exactly, and it flows through the same
        :meth:`_apply_changes` path as a first-hand update: the incremental
        maintainer absorbs it in place when possible, listeners fire, the
        version vector moves, and the local delta log records it under the
        same sequence number (provided :meth:`DeltaLog.resume_at` aligned
        the numbering).

        ``refragment`` records carry the complete new fragment edge lists
        (already id-aligned), so replay *crosses* a reorganisation: the
        recorded layout is re-adopted through :meth:`refragment`, after which
        every later record's fragment ids mean the same thing here as in the
        source database.  Only legacy change-free records (written before
        layouts were recorded) remain unreplayable.

        Returns the dirty fragment ids.

        Raises:
            ValueError: for a change-free record with no recorded layout;
                the caller must resynchronise from a snapshot taken after
                the reorganisation instead of replaying across it.
        """
        if record.kind == "refragment" and record.layout is not None:
            self.refragment(
                layout=[list(edges) for edges in record.layout],
                algorithm=record.algorithm or "replayed",
            )
            replayed = self.delta_log.last()
            return replayed.dirty_fragments if replayed is not None else ()
        if record.kind == "refragment" or not record.changes:
            raise ValueError(
                f"cannot replay record {record.sequence} ({record.kind!r}): it "
                "reorganised the source's fragments and carries no layout or "
                "edge changes — resynchronise from a snapshot taken after it"
            )
        changes = list(record.changes)
        for change in changes:
            if change.op == "insert":
                self.statistics.edges_inserted += 1
            elif change.op == "delete":
                self.statistics.edges_deleted += 1
        dirty, incremental = self._apply_changes(record.kind, changes)
        first = changes[0]
        self._notify(
            UpdateEvent(
                kind=record.kind,
                source=first.source,
                target=first.target,
                fragment_id=first.fragment_id,
                dirty_fragments=dirty,
                incremental=incremental,
            )
        )
        return dirty

    def refragment(
        self,
        fragmenter: Optional[Fragmenter] = None,
        *,
        layout: Optional[List[List[Edge]]] = None,
        algorithm: Optional[str] = None,
        aligned: bool = True,
    ) -> Fragmentation:
        """Redraw the fragment boundaries over the current graph.

        Either re-runs a fragmentation algorithm (``fragmenter``) or adopts
        an explicit ``layout``: already id-aligned by default (the delta-log
        replay path), or a raw proposal to be aligned here
        (``aligned=False`` — how a caller executes exactly the layout an
        advisor already computed and judged, without re-running the
        fragmenter).  With a live engine and a standard semiring the redraw is
        applied *in place* by the :class:`~repro.refragmentation.live.LiveRefragmenter`:
        fragment ids are aligned to the deployed layout by edge overlap, only
        the fragments whose edges or neighbourhood moved are rebuilt, the
        complementary information is repaired per disconnection set, and
        listeners receive a scoped, ``incremental=True`` event naming exactly
        the dirty fragments.  Outside that envelope the classic full rebuild
        applies (everything stale, epoch advanced).

        Both paths append a ``refragment`` delta record carrying the aligned
        fragment edge lists, so a replica replaying this database's log
        follows the reorganisation instead of falling off it.

        Raises:
            ValueError: when neither ``fragmenter`` nor ``layout`` is given.
        """
        from ..refragmentation.live import align_layout

        if layout is not None:
            new_layout = [set(edges) for edges in layout]
            if not aligned:
                new_layout = align_layout(self._fragment_edges, new_layout)
            new_algorithm = algorithm or self._algorithm
        elif fragmenter is not None:
            proposed = fragmenter.fragment(self._graph.copy())
            new_layout = align_layout(
                self._fragment_edges, [set(f.edges) for f in proposed.fragments]
            )
            new_algorithm = proposed.algorithm
        else:
            raise ValueError("refragment needs a fragmenter or an explicit layout")
        self.statistics.refragments += 1
        recorded_layout = tuple(
            tuple(sorted(edges, key=repr)) for edges in new_layout
        )

        result = self._refragment_in_place(new_layout, new_algorithm)
        if result is not None:
            dirty = result.dirty_fragments
            self._fragment_edges = [set(edges) for edges in new_layout]
            self._algorithm = new_algorithm
            self.last_delta = None
            self.last_refragment = result
            self._maintainer = None  # rebind to the new fragmentation lazily
            self.statistics.scoped_refragments += 1
            self.statistics.affected_fragment_pairs += result.pairs_recomputed
            self.statistics.rows_recomputed += result.report.rows_recomputed
            self.version_vector.bump_all(dirty)
            self.delta_log.append(
                "refragment",
                dirty_fragments=dirty,
                incremental=True,
                versions={fid: self.version_vector.version_of(fid) for fid in dirty},
                epoch=self.version_vector.epoch,
                layout=recorded_layout,
                algorithm=new_algorithm,
            )
            self._notify(
                UpdateEvent(
                    kind="refragment", dirty_fragments=dirty, incremental=True
                )
            )
            return self.fragmentation()

        # Classic path: everything is stale, the next engine() call rebuilds.
        self._fragment_edges = [set(edges) for edges in new_layout]
        self._algorithm = new_algorithm
        self._stale = True
        self._maintainer = None
        self.last_delta = None
        self.last_refragment = None
        self.version_vector.advance_epoch()
        self.delta_log.append(
            "refragment",
            incremental=False,
            epoch=self.version_vector.epoch,
            layout=recorded_layout,
            algorithm=new_algorithm,
        )
        self._notify(UpdateEvent(kind="refragment"))
        return self.fragmentation()

    def _refragment_in_place(
        self, new_layout: List[Set[Edge]], algorithm: str
    ) -> Optional["RefragmentResult"]:
        """Try the scoped redraw against the live engine; ``None`` means fall back."""
        if not self._incremental or self._stale or self._engine is None:
            return None
        if any(not edges for edges in new_layout):
            return None  # an empty slot would violate the Fragmentation contract
        from ..refragmentation.live import IncrementalFallback, LiveRefragmenter

        try:
            refragmenter = LiveRefragmenter(self._engine, mirror=self.compact_mirror())
            new_fragmentation = Fragmentation(
                self._graph, new_layout, algorithm=algorithm
            )
            return refragmenter.apply(new_fragmentation)
        except IncrementalFallback:
            return None
        except Exception:
            # A failure mid-apply may have half-patched the complementary
            # information; the classic path below discards it with the
            # engine, so correctness never depends on the scoped apply.
            return None

    # ------------------------------------------------------------- internals

    def _insert_change(self, source: Node, target: Node, weight: float) -> EdgeChange:
        """Describe one edge insertion (an existing edge becomes a reweight)."""
        existing_owner = self._owner_of_edge(source, target)
        if existing_owner is not None:
            return EdgeChange(
                op="reweight",
                source=source,
                target=target,
                weight=float(weight),
                old_weight=self._graph.edge_weight(source, target),
                fragment_id=existing_owner,
            )
        owner = self._choose_owner(source, target)
        return EdgeChange(
            op="insert", source=source, target=target, weight=float(weight), fragment_id=owner
        )

    def _apply_changes(
        self, kind: str, changes: List[EdgeChange]
    ) -> Tuple[Tuple[int, ...], bool]:
        """Mutate the base state for ``changes``, incrementally when possible.

        Returns the dirty fragment ids and whether the live engine absorbed
        the update in place.
        """
        maintainer = self._ensure_maintainer()
        began = False
        if maintainer is not None:
            try:
                maintainer.begin(changes)
                began = True
            except Exception:
                # Any pre-mutation failure (expected fallback or not) simply
                # routes this update through the classic rebuild.
                maintainer = None
                self._maintainer = None
        for change in changes:
            self._mutate(change)
        self._sync_mirror(changes)
        applied = None
        if maintainer is not None and began:
            try:
                applied = maintainer.complete(kind, changes)
            except Exception:
                # The graph is already mutated; a failed in-place apply —
                # the expected IncrementalFallback or anything unexpected
                # mid-repair — must never leave the old engine live.  The
                # classic path below marks it stale, and the rebuild discards
                # any half-patched complementary state.
                self._maintainer = None
        if applied is not None:
            dirty = applied.dirty_fragments
            self.version_vector.bump_all(dirty)
            self.last_delta = applied
            self.statistics.incremental_updates += 1
            self.statistics.pairs_repaired += len(applied.pairs_changed)
            self.statistics.rows_recomputed += applied.report.rows_recomputed
            self.statistics.affected_fragment_pairs += len(applied.pairs_changed)
            self.delta_log.append(
                kind,
                changes=tuple(changes),
                dirty_fragments=dirty,
                incremental=True,
                versions={fid: self.version_vector.version_of(fid) for fid in dirty},
                epoch=self.version_vector.epoch,
            )
            return dirty, True
        # Classic path: mark everything stale and let engine() rebuild.
        dirty = tuple(sorted({change.fragment_id for change in changes}))
        if any(not edges for edges in self._fragment_edges):
            # A fragment emptied out.  fragmentation() renumbers the
            # surviving fragments densely, so the raw edge-set list must be
            # compacted the same way — otherwise every later owner lookup
            # would hand out indices the rebuilt catalog does not have.
            self._fragment_edges = [edges for edges in self._fragment_edges if edges]
        for fragment_id in dirty:
            self._mark_affected(fragment_id)
        self.last_delta = None
        self.version_vector.advance_epoch()
        self.delta_log.append(
            kind,
            changes=tuple(changes),
            dirty_fragments=dirty,
            incremental=False,
            epoch=self.version_vector.epoch,
        )
        return dirty, False

    def _mutate(self, change: EdgeChange) -> None:
        """Apply one elementary change to the graph and fragment edge sets."""
        if change.op == "delete":
            self._fragment_edges[change.fragment_id].discard((change.source, change.target))
            self._graph.remove_edge(change.source, change.target)
        else:  # insert or reweight: DiGraph.add_edge upserts the weight
            self._graph.add_edge(change.source, change.target, change.weight)
            self._fragment_edges[change.fragment_id].add((change.source, change.target))

    def _ensure_maintainer(self):
        """Return a maintainer bound to the live engine, or ``None``."""
        if not self._incremental:
            return None
        from ..incremental.maintainer import IncrementalMaintainer, supports_incremental

        if not supports_incremental(self):
            return None
        assert self._engine is not None  # supports_incremental checked it
        if self._maintainer is None or self._maintainer.engine is not self._engine:
            self._maintainer = IncrementalMaintainer(self, self._engine)
        return self._maintainer

    def _choose_owner(self, source: Node, target: Node) -> int:
        both: List[int] = []
        either: List[int] = []
        for index, edges in enumerate(self._fragment_edges):
            nodes = {node for edge in edges for node in edge}
            has_source = source in nodes
            has_target = target in nodes
            if has_source and has_target:
                both.append(index)
            elif has_source or has_target:
                either.append(index)
        if both:
            return both[0]
        if either:
            return either[0]
        return min(range(len(self._fragment_edges)), key=lambda index: len(self._fragment_edges[index]))

    def _owner_of_edge(self, source: Node, target: Node) -> Optional[int]:
        for index, edges in enumerate(self._fragment_edges):
            if (source, target) in edges:
                return index
        return None

    def _mark_affected(self, fragment_id: int) -> None:
        """Record that the disconnection sets of ``fragment_id`` need refreshing."""
        try:
            fragmentation = self.fragmentation()
            self.statistics.affected_fragment_pairs += len(
                fragmentation.adjacent_fragments(fragment_id)
            )
        except FragmentationError:
            pass
        self._stale = True
