"""Update handling: maintaining a deployed fragmentation under edge changes.

The paper names "the careful treatment of updates" as the second cost of the
disconnection set approach (Sec. 2.1): whenever the base relation changes, the
affected fragment must be updated and the complementary information of the
disconnection sets it participates in may have to be recomputed.  As long as
updates are not too frequent, this cost is amortised over many queries.

:class:`FragmentedDatabase` implements exactly that contract:

* edge insertions are routed to the fragment owning (or adjacent to) the
  endpoints; brand-new nodes extend the fragment chosen by locality,
* edge deletions are routed to the owning fragment,
* the complementary information is recomputed *lazily* and only for the
  fragment pairs whose answers may have changed — for an intra-fragment
  update these are the disconnection sets of one fragment, never all of them,
* an update log records how much recomputation each change triggered, which
  the update-cost benchmark reports.

The class deliberately does not re-run the fragmentation algorithm: the paper
treats fragmentation design as an offline decision, and re-fragmenting on
every update would defeat the amortisation argument.  ``refragment()`` is
provided for explicit, operator-triggered reorganisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..closure import Semiring, shortest_path_semiring
from ..exceptions import FragmentationError
from ..fragmentation import Fragmentation, Fragmenter
from ..graph import DiGraph
from .catalog import CompactFragmentSite
from .complementary import ComplementaryInformation, precompute_complementary_information
from .engine import DisconnectionSetEngine

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass(frozen=True)
class UpdateEvent:
    """One applied change to the fragmented base relation.

    Listeners registered with :meth:`FragmentedDatabase.add_update_listener`
    receive these events after the change is applied — the hook a serving
    layer uses to invalidate caches and re-pin worker state.

    Attributes:
        kind: ``"insert"``, ``"delete"``, ``"reweight"`` or ``"refragment"``.
        source, target: the affected edge's endpoints (``None`` for
            ``refragment``, which affects every fragment).
        fragment_id: the fragment that absorbed the change (``None`` for
            ``refragment``).
    """

    kind: str
    source: Optional[Node] = None
    target: Optional[Node] = None
    fragment_id: Optional[int] = None


@dataclass
class UpdateStatistics:
    """Bookkeeping of the maintenance work triggered by updates."""

    edges_inserted: int = 0
    edges_deleted: int = 0
    complementary_refreshes: int = 0
    affected_fragment_pairs: int = 0
    engine_rebuilds: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return {
            "edges_inserted": self.edges_inserted,
            "edges_deleted": self.edges_deleted,
            "complementary_refreshes": self.complementary_refreshes,
            "affected_fragment_pairs": self.affected_fragment_pairs,
            "engine_rebuilds": self.engine_rebuilds,
        }


class FragmentedDatabase:
    """A mutable, fragmented graph database with disconnection-set querying.

    Args:
        fragmentation: the initial fragmentation to deploy.
        semiring: the path problem queries will use (defaults to shortest
            paths).
        complementary: optionally reuse already-precomputed complementary
            information for the *initial* state (e.g. from a snapshot); the
            first :meth:`engine` call then costs no search work.  Updates
            still trigger the usual lazy recomputation.
        compact_sites: optionally seed the initial engine's per-fragment
            compact kernel graphs (snapshot reload); after an update the
            rebuilt engine re-derives only the affected fragments' compact
            forms lazily.
    """

    def __init__(
        self,
        fragmentation: Fragmentation,
        *,
        semiring: Optional[Semiring] = None,
        complementary: Optional[ComplementaryInformation] = None,
        compact_sites: Optional[Dict[int, "CompactFragmentSite"]] = None,
    ) -> None:
        self._semiring = semiring or shortest_path_semiring()
        self._graph = fragmentation.graph.copy()
        self._fragment_edges: List[Set[Edge]] = [
            set(fragment.edges) for fragment in fragmentation.fragments
        ]
        self._algorithm = fragmentation.algorithm
        self._stale = True
        self._engine: Optional[DisconnectionSetEngine] = None
        self._listeners: List[Callable[[UpdateEvent], None]] = []
        self.statistics = UpdateStatistics()
        if complementary is not None:
            self._engine = DisconnectionSetEngine(
                fragmentation,
                semiring=self._semiring,
                complementary=complementary,
                compact_sites=compact_sites,
            )
            self._stale = False

    # ------------------------------------------------------------ listeners

    def add_update_listener(self, listener: Callable[[UpdateEvent], None]) -> None:
        """Register a callback invoked after every applied update.

        The serving layer hooks its cache invalidation here; listeners run
        synchronously in registration order and must not mutate the database.
        """
        self._listeners.append(listener)

    def _notify(self, event: UpdateEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------- accessors

    @property
    def graph(self) -> DiGraph:
        """The current base graph (a live object; mutate only through this class)."""
        return self._graph

    def fragmentation(self) -> Fragmentation:
        """Return the current fragmentation as an immutable snapshot."""
        populated = [edges for edges in self._fragment_edges if edges]
        return Fragmentation(self._graph, populated, algorithm=self._algorithm)

    def engine(self) -> DisconnectionSetEngine:
        """Return a query engine for the current state (rebuilt lazily after updates)."""
        if self._stale or self._engine is None:
            fragmentation = self.fragmentation()
            complementary = precompute_complementary_information(
                fragmentation, semiring=self._semiring
            )
            self._engine = DisconnectionSetEngine(
                fragmentation, semiring=self._semiring, complementary=complementary
            )
            self.statistics.engine_rebuilds += 1
            self.statistics.complementary_refreshes += len(fragmentation.disconnection_sets())
            self._stale = False
        return self._engine

    def edge_count(self) -> int:
        """Return the number of directed edges currently stored."""
        return self._graph.edge_count()

    # --------------------------------------------------------------- updates

    def insert_edge(
        self,
        source: Node,
        target: Node,
        weight: float = 1.0,
        *,
        symmetric: bool = False,
    ) -> int:
        """Insert an edge and return the fragment id it was assigned to.

        The edge goes to a fragment already containing one of its endpoints
        (preferring a fragment containing both); edges between two previously
        unknown nodes go to the currently smallest fragment.
        """
        owner = self._choose_owner(source, target)
        self._graph.add_edge(source, target, weight)
        self._fragment_edges[owner].add((source, target))
        self.statistics.edges_inserted += 1
        if symmetric:
            self._graph.add_edge(target, source, weight)
            self._fragment_edges[owner].add((target, source))
            self.statistics.edges_inserted += 1
        self._mark_affected(owner)
        self._notify(UpdateEvent(kind="insert", source=source, target=target, fragment_id=owner))
        return owner

    def delete_edge(self, source: Node, target: Node, *, symmetric: bool = False) -> int:
        """Delete an edge and return the fragment id it was removed from.

        Raises:
            FragmentationError: if the edge is not stored in any fragment.
        """
        owner = self._owner_of_edge(source, target)
        if owner is None:
            raise FragmentationError(f"edge ({source!r}, {target!r}) is not stored")
        self._fragment_edges[owner].discard((source, target))
        self._graph.remove_edge(source, target)
        self.statistics.edges_deleted += 1
        if symmetric and self._graph.has_edge(target, source):
            reverse_owner = self._owner_of_edge(target, source)
            if reverse_owner is not None:
                self._fragment_edges[reverse_owner].discard((target, source))
            self._graph.remove_edge(target, source)
            self.statistics.edges_deleted += 1
        self._mark_affected(owner)
        self._notify(UpdateEvent(kind="delete", source=source, target=target, fragment_id=owner))
        return owner

    def update_edge_weight(self, source: Node, target: Node, weight: float) -> int:
        """Change the weight of an existing edge; returns its fragment id."""
        owner = self._owner_of_edge(source, target)
        if owner is None:
            raise FragmentationError(f"edge ({source!r}, {target!r}) is not stored")
        self._graph.add_edge(source, target, weight)
        self._mark_affected(owner)
        self._notify(UpdateEvent(kind="reweight", source=source, target=target, fragment_id=owner))
        return owner

    def refragment(self, fragmenter: Fragmenter) -> Fragmentation:
        """Re-run a fragmentation algorithm over the current graph (explicit reorganisation)."""
        fragmentation = fragmenter.fragment(self._graph.copy())
        self._fragment_edges = [set(fragment.edges) for fragment in fragmentation.fragments]
        self._algorithm = fragmentation.algorithm
        self._stale = True
        self._notify(UpdateEvent(kind="refragment"))
        return self.fragmentation()

    # ------------------------------------------------------------- internals

    def _choose_owner(self, source: Node, target: Node) -> int:
        both: List[int] = []
        either: List[int] = []
        for index, edges in enumerate(self._fragment_edges):
            nodes = {node for edge in edges for node in edge}
            has_source = source in nodes
            has_target = target in nodes
            if has_source and has_target:
                both.append(index)
            elif has_source or has_target:
                either.append(index)
        if both:
            return both[0]
        if either:
            return either[0]
        return min(range(len(self._fragment_edges)), key=lambda index: len(self._fragment_edges[index]))

    def _owner_of_edge(self, source: Node, target: Node) -> Optional[int]:
        for index, edges in enumerate(self._fragment_edges):
            if (source, target) in edges:
                return index
        return None

    def _mark_affected(self, fragment_id: int) -> None:
        """Record that the disconnection sets of ``fragment_id`` need refreshing."""
        try:
            fragmentation = self.fragmentation()
            self.statistics.affected_fragment_pairs += len(
                fragmentation.adjacent_fragments(fragment_id)
            )
        except FragmentationError:
            pass
        self._stale = True
