"""Path-problem semirings.

The disconnection set approach is parameterised by the *path problem* being
solved: plain reachability ("is A connected to B?"), shortest path ("what is
the cheapest connection?"), and bill-of-material style aggregations are all
transitive-closure queries that differ only in how path values are combined.
A closed semiring captures that variation: edge values are combined along a
path with ``times`` and alternative paths are combined with ``plus``.

The complementary information of the disconnection set approach depends on
the path problem (Sec. 2.1: "these properties depend on the particular path
problem considered"), so the engine carries the semiring through
precomputation, local evaluation and assembly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Semiring:
    """A closed semiring ``(plus, times, zero, one)`` over path values.

    Attributes:
        name: human-readable identifier.
        plus: combines the values of *alternative* paths (e.g. ``min``).
        times: combines the values of *consecutive* edges (e.g. ``+``).
        zero: the value of "no path" (identity of ``plus``).
        one: the value of the empty path (identity of ``times``).
        edge_value: maps an edge weight to a path value (defaults to identity).
        is_better: strict improvement test used by iterative algorithms to
            decide whether a newly derived value replaces the old one.
    """

    name: str
    plus: Callable[[object, object], object]
    times: Callable[[object, object], object]
    zero: object
    one: object
    edge_value: Callable[[float], object] = lambda weight: weight
    is_better: Optional[Callable[[object, object], bool]] = None

    def improves(self, candidate: object, incumbent: object) -> bool:
        """Return ``True`` if ``candidate`` strictly improves on ``incumbent``."""
        if self.is_better is not None:
            return self.is_better(candidate, incumbent)
        return self.plus(candidate, incumbent) == candidate and candidate != incumbent


def reachability_semiring() -> Semiring:
    """Boolean reachability: any path counts, values are True/False."""
    return Semiring(
        name="reachability",
        plus=lambda a, b: a or b,
        times=lambda a, b: a and b,
        zero=False,
        one=True,
        edge_value=lambda weight: True,
        is_better=lambda candidate, incumbent: bool(candidate) and not bool(incumbent),
    )


def shortest_path_semiring() -> Semiring:
    """Shortest paths: path value is the sum of edge weights, alternatives take the minimum."""
    return Semiring(
        name="shortest_path",
        plus=min,
        times=lambda a, b: a + b,
        zero=math.inf,
        one=0.0,
        edge_value=float,
        is_better=lambda candidate, incumbent: candidate < incumbent,  # type: ignore[operator]
    )


def widest_path_semiring() -> Semiring:
    """Widest (maximum-capacity) paths: bottleneck along a path, best alternative wins."""
    return Semiring(
        name="widest_path",
        plus=max,
        times=min,
        zero=0.0,
        one=math.inf,
        edge_value=float,
        is_better=lambda candidate, incumbent: candidate > incumbent,  # type: ignore[operator]
    )


def path_count_semiring() -> Semiring:
    """Count the number of distinct (simple-use) derivations of a connection.

    A bill-of-materials style aggregation: "in how many ways is part A used
    inside assembly B?".  Note this semiring is not idempotent, so iterative
    algorithms must bound the iteration count on cyclic graphs; the layered
    DAG generators in :mod:`repro.generators.structured` are its natural
    inputs.
    """
    return Semiring(
        name="path_count",
        plus=lambda a, b: a + b,
        times=lambda a, b: a * b,
        zero=0,
        one=1,
        edge_value=lambda weight: 1,
        is_better=lambda candidate, incumbent: candidate != incumbent,
    )
