"""Closure kernels specialised to the compact (CSR) graph representation.

These are the hot loops behind every layer of the reproduction: per-fragment
local queries, complementary-information precomputation, the resident worker
pool, and the centralised baselines.  Each kernel operates purely on dense
int ids over a :class:`~repro.graph.compact.CompactGraph` and translates its
results back through the graph's interner, so callers keep receiving original
node keys.

Three kernel families cover the semiring space:

* **bitset BFS** for reachability — the frontier is one Python int used as a
  bitset; each round ORs the precomputed successor masks of the frontier's
  set bits, so a whole adjacency row is absorbed word-parallel per operation
  (the SSC-style bitarray evaluation of multicore main-memory closures),
* **array-heap Dijkstra** for shortest paths — distances live in a flat
  float list indexed by node id; no per-node hashing on the hot path,
* **semi-naive fixpoint over int pairs** for arbitrary semirings — the
  differential evaluation of :mod:`repro.closure.iterative`, minus the
  per-edge dict lookups.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..graph.compact import CompactGraph
from .backends import (
    BACKEND_BIGINT,
    BACKEND_CHAIN,
    BACKEND_NUMPY,
    chain_index,
    packed_matrix,
    record_selection,
    select_kernel,
    set_active_backend,
)
from .base import ClosureResult, ClosureStatistics, Pair
from .semiring import Semiring, reachability_semiring, shortest_path_semiring

Node = Hashable

DEFAULT_MAX_ITERATIONS = 10_000


# ------------------------------------------------------------- bitset kernels


def bitset_reachable(
    graph: CompactGraph,
    source_id: int,
    *,
    stop_mask: int = 0,
    backward: bool = False,
) -> int:
    """Return the bitset of ids reachable from ``source_id`` (itself included).

    Args:
        graph: the compact graph.
        source_id: the start node's dense id.
        stop_mask: optional bitset of target ids; the expansion stops early
            once every target bit is covered (the keyhole optimisation of the
            per-fragment searches, where only the exit border matters).
        backward: expand against the edges instead — the result is the set of
            ids that *reach* ``source_id`` (the delta-repair question "whose
            stored values might flow through this edge?").
    """
    masks = graph.predecessor_masks() if backward else graph.successor_masks()
    visited = 1 << source_id
    frontier = visited
    while frontier:
        if stop_mask and (visited & stop_mask) == stop_mask:
            break
        reached = 0
        while frontier:
            low = frontier & -frontier
            reached |= masks[low.bit_length() - 1]
            frontier ^= low
        frontier = reached & ~visited
        visited |= frontier
    return visited


def bitset_levels(graph: CompactGraph, source_id: int) -> Dict[int, int]:
    """Return hop distances from ``source_id`` by id (bitset frontier BFS)."""
    masks = graph.successor_masks()
    levels: Dict[int, int] = {}
    visited = 1 << source_id
    frontier = visited
    depth = 0
    while frontier:
        scan = frontier
        while scan:
            low = scan & -scan
            levels[low.bit_length() - 1] = depth
            scan ^= low
        reached = 0
        scan = frontier
        while scan:
            low = scan & -scan
            reached |= masks[low.bit_length() - 1]
            scan ^= low
        frontier = reached & ~visited
        visited |= frontier
        depth += 1
    return levels


def mask_to_ids(mask: int) -> List[int]:
    """Expand an int-as-bitset into the list of set bit positions."""
    ids: List[int] = []
    while mask:
        low = mask & -mask
        ids.append(low.bit_length() - 1)
        mask ^= low
    return ids


def ids_to_mask(ids: Iterable[int]) -> int:
    """Fold dense ids into one int-as-bitset."""
    mask = 0
    for node_id in ids:
        mask |= 1 << node_id
    return mask


# ------------------------------------------------------- backend dispatch


def reachability_rows(
    graph: CompactGraph,
    source_ids: Sequence[int],
    *,
    whole_graph: bool = False,
    backend: Optional[str] = None,
    context: str = "closure",
    stop_mask: int = 0,
) -> Tuple[Dict[int, int], str]:
    """Return visited bitsets for ``source_ids`` via the selected backend.

    The single dispatch point of the reachability kernels: every caller —
    per-source closures, local queries, complementary sweeps — funnels
    through here, gets ``{source_id: visited_mask}`` rows whose bits are
    identical across backends (source always included, exactly like
    :func:`bitset_reachable`), and shows up in the
    ``repro_kernel_selections_total`` counter under ``context``.

    Args:
        graph: the compact graph.
        source_ids: the dense ids whose rows are requested.
        whole_graph: hint that the caller wants an all-pairs closure (the
            numpy backend then squares the whole matrix instead of sweeping).
        backend: explicit pin, overriding the shape heuristic.
        context: selection-counter label (``closure``, ``local_query``, …).
        stop_mask: keyhole bitset for the big-int BFS — each row's expansion
            stops once every target bit is covered.  The indexed backends
            ignore it (their rows are already materialised), so it only ever
            trims work, never answers.

    Returns:
        ``(rows, chosen_backend)``.
    """
    chosen = select_kernel(
        graph, sources=len(source_ids), whole_graph=whole_graph, override=backend
    )
    record_selection(chosen, context)
    # Published for the sampling profiler: any stack sampled between here
    # and the finally is attributed to the chosen backend.
    set_active_backend(chosen)
    try:
        if chosen == BACKEND_NUMPY:
            matrix = packed_matrix(graph)
            if whole_graph and len(source_ids) == graph.node_count():
                packed_rows = matrix.closure_rows()
                rows = {sid: matrix.row_to_mask(packed_rows[sid]) for sid in source_ids}
            else:
                packed_rows = matrix.multi_source_rows(source_ids)
                rows = {
                    sid: matrix.row_to_mask(packed_rows[index])
                    for index, sid in enumerate(source_ids)
                }
            return rows, chosen
        if chosen == BACKEND_CHAIN:
            index = chain_index(graph)
            return {sid: index.reachable_mask(sid) for sid in source_ids}, chosen
        return (
            {
                sid: bitset_reachable(graph, sid, stop_mask=stop_mask)
                for sid in source_ids
            },
            BACKEND_BIGINT,
        )
    finally:
        set_active_backend(None)


# ------------------------------------------------------------ dijkstra kernel


def array_dijkstra(
    graph: CompactGraph,
    source_id: int,
    *,
    target_ids: Optional[Iterable[int]] = None,
    backward: bool = False,
) -> Tuple[List[float], List[int], int]:
    """Run Dijkstra over dense ids with flat distance/predecessor arrays.

    Args:
        graph: the compact graph (non-negative weights assumed; the mutable
            front-end validates weights on ingestion).
        source_id: the start id.
        target_ids: optional ids to settle; the search stops once all of
            them are settled.
        backward: relax against the edges — ``distances[i]`` becomes the
            shortest distance *from* id ``i`` *to* ``source_id`` (the
            delta-repair question "how far is every border node from the
            changed edge?").

    Returns:
        ``(distances, predecessors, settled)`` where ``distances[i]`` is the
        shortest distance to id ``i`` (``inf`` when unreached),
        ``predecessors[i]`` is the previous id on one shortest path (``-1``
        for the source and unreached nodes), and ``settled`` counts the
        settled nodes (the work figure the cost model consumes).
    """
    n = graph.node_count()
    offsets, targets, weights, over, base_nodes = graph.adjacency_view(backward=backward)
    dist = [inf] * n
    pred = [-1] * n
    done = bytearray(n)
    remaining = set(target_ids) if target_ids is not None else None
    dist[source_id] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source_id)]
    settled = 0
    while heap:
        distance, node_id = heapq.heappop(heap)
        if done[node_id]:
            continue
        done[node_id] = 1
        settled += 1
        if remaining is not None:
            remaining.discard(node_id)
            if not remaining:
                break
        row = over.get(node_id) if over is not None else None
        if row is not None:
            for target_id, edge_weight in row:
                if done[target_id]:
                    continue
                candidate = distance + edge_weight
                if candidate < dist[target_id]:
                    dist[target_id] = candidate
                    pred[target_id] = node_id
                    heapq.heappush(heap, (candidate, target_id))
            continue
        if node_id >= base_nodes:
            continue
        for index in range(offsets[node_id], offsets[node_id + 1]):
            target_id = targets[index]
            if done[target_id]:
                continue
            candidate = distance + weights[index]
            if candidate < dist[target_id]:
                dist[target_id] = candidate
                pred[target_id] = node_id
                heapq.heappush(heap, (candidate, target_id))
    return dist, pred, settled


def reconstruct_id_path(predecessors: Sequence[int], source_id: int, target_id: int) -> List[int]:
    """Rebuild the id sequence of a path from an array-Dijkstra predecessor array.

    Raises:
        ValueError: when no path to ``target_id`` was recorded (its
            predecessor chain hits the ``-1`` sentinel before the source).
    """
    path = [target_id]
    node_id = target_id
    while node_id != source_id:
        node_id = predecessors[node_id]
        if node_id < 0:
            raise ValueError(
                f"no path from id {source_id} to id {target_id} in the predecessor array"
            )
        path.append(node_id)
    path.reverse()
    return path


# ------------------------------------------------------- semi-naive fixpoint


def seminaive_closure_ids(
    graph: CompactGraph,
    semiring: Semiring,
    *,
    source_ids: Optional[Iterable[int]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[Dict[Tuple[int, int], object], ClosureStatistics]:
    """Semi-naive fixpoint over int-id pairs for an arbitrary semiring.

    Mirrors :func:`repro.closure.iterative.seminaive_transitive_closure` but
    joins the delta against the CSR arrays instead of dict adjacency.
    """
    offsets, targets, weights, over, base_nodes = graph.adjacency_view()
    edge_value = semiring.edge_value
    plus = semiring.plus
    times = semiring.times
    restrict = set(source_ids) if source_ids is not None else None

    def row_entries(node_id: int) -> Iterable[Tuple[int, float]]:
        if over is not None:
            row = over.get(node_id)
            if row is not None:
                return row
        if node_id >= base_nodes:
            return ()
        return [
            (targets[index], weights[index])
            for index in range(offsets[node_id], offsets[node_id + 1])
        ]

    values: Dict[Tuple[int, int], object] = {}
    for source_id in range(graph.node_count()):
        if restrict is not None and source_id not in restrict:
            continue
        for target_id, weight in row_entries(source_id):
            pair = (source_id, target_id)
            candidate = edge_value(weight)
            incumbent = values.get(pair)
            values[pair] = candidate if incumbent is None else plus(incumbent, candidate)
    delta = dict(values)
    stats = ClosureStatistics()
    while delta and stats.iterations < max_iterations:
        candidates: Dict[Tuple[int, int], object] = {}
        for (a, b), left in delta.items():
            for target_id, weight in row_entries(b):
                candidate = times(left, edge_value(weight))
                pair = (a, target_id)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else plus(incumbent, candidate)
        improved: Dict[Tuple[int, int], object] = {}
        for pair, candidate in candidates.items():
            incumbent = values.get(pair)
            if incumbent is None:
                values[pair] = candidate
                improved[pair] = candidate
            else:
                combined = plus(incumbent, candidate)
                if combined != incumbent:
                    values[pair] = combined
                    improved[pair] = combined
        stats.record_round(len(candidates), len(improved))
        delta = improved
    return values, stats


# --------------------------------------------------------- node-level facade


def compact_reachability_closure(
    graph: CompactGraph,
    *,
    sources: Optional[Iterable[Node]] = None,
    backend: Optional[str] = None,
) -> ClosureResult:
    """Reachability closure rows via the dispatched kernel (node-keyed result).

    Matches :func:`repro.closure.warshall.bfs_closure` exactly: per-source
    search semantics, where the trivial ``(source, source)`` fact is never
    reported (the source is its own BFS root at hop distance zero).  The
    backend — bitset BFS, packed bit matrix, or chain index — is chosen by
    shape unless ``backend`` pins one; answers are identical either way.
    """
    source_ids = _resolve_source_ids(graph, sources)
    rows, _ = reachability_rows(
        graph, source_ids, whole_graph=sources is None, backend=backend
    )
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source_id in source_ids:
        visited = rows[source_id]
        source = graph.node_of(source_id)
        produced = 0
        for target_id in mask_to_ids(visited):
            if target_id == source_id:
                continue
            values[(source, graph.node_of(target_id))] = True
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(
        values=values, semiring_name=reachability_semiring().name, statistics=stats
    )


def compact_shortest_path_closure(
    graph: CompactGraph,
    *,
    sources: Optional[Iterable[Node]] = None,
    targets: Optional[Set[Node]] = None,
) -> ClosureResult:
    """Shortest-path closure rows via the array-Dijkstra kernel (node-keyed)."""
    source_ids = _resolve_source_ids(graph, sources)
    target_ids = None
    if targets is not None:
        target_ids = {graph.try_node_id(node) for node in targets}
        target_ids.discard(-1)
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source_id in source_ids:
        dist, _, settled = array_dijkstra(graph, source_id, target_ids=target_ids)
        source = graph.node_of(source_id)
        produced = 0
        for target_id, distance in enumerate(dist):
            if distance == inf or target_id == source_id:
                continue
            if target_ids is not None and target_id not in target_ids:
                continue
            values[(source, graph.node_of(target_id))] = distance
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(
        values=values, semiring_name=shortest_path_semiring().name, statistics=stats
    )


def compact_closure(
    graph: CompactGraph,
    *,
    semiring: Optional[Semiring] = None,
    sources: Optional[Iterable[Node]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ClosureResult:
    """Closure rows for any semiring, dispatching to the fastest kernel.

    Reachability and shortest paths hit the specialised kernels; every other
    semiring runs the id-level semi-naive fixpoint.  Results are keyed by
    original nodes, so this is a drop-in for the ``DiGraph`` algorithms.
    """
    semiring = semiring or shortest_path_semiring()
    if semiring.name == "reachability":
        return compact_reachability_closure(graph, sources=sources)
    if semiring.name == "shortest_path":
        return compact_shortest_path_closure(graph, sources=sources)
    source_ids = _resolve_source_ids(graph, sources) if sources is not None else None
    id_values, stats = seminaive_closure_ids(
        graph, semiring, source_ids=source_ids, max_iterations=max_iterations
    )
    values: Dict[Pair, object] = {
        (graph.node_of(a), graph.node_of(b)): value for (a, b), value in id_values.items()
    }
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def _resolve_source_ids(graph: CompactGraph, sources: Optional[Iterable[Node]]) -> List[int]:
    """Map requested sources to ids, skipping unknown nodes (dict-path parity)."""
    if sources is None:
        return list(range(graph.node_count()))
    ids: List[int] = []
    for node in sources:
        node_id = graph.try_node_id(node)
        if node_id >= 0:
            ids.append(node_id)
    return ids
