"""Shared types for the graph-level transitive closure algorithms.

The algorithms in this package operate directly on
:class:`~repro.graph.digraph.DiGraph` objects (the relational formulations
live in :mod:`repro.relational.fixpoint`).  They all return a
:class:`ClosureResult`, which contains the closure as a mapping from
``(source, target)`` to the path value of the chosen semiring, together with
an evaluation-statistics record that the parallel cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from .semiring import Semiring

Node = Hashable
Pair = Tuple[Node, Node]


@dataclass
class ClosureStatistics:
    """Work counters for one closure evaluation.

    Attributes:
        iterations: number of fixpoint rounds executed.
        tuples_produced: total number of (source, target, value) facts derived,
            counting duplicates across rounds — this is the paper's "size of
            the intermediate results" workload driver.
        delta_sizes: number of new facts per round.
        elapsed_seconds: wall-clock seconds spent in the kernel; measured in
            whichever process ran the evaluation, so worker-side timings
            survive the trip back over the result channel.
    """

    iterations: int = 0
    tuples_produced: int = 0
    delta_sizes: List[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def record_round(self, produced: int, new: int) -> None:
        """Record one round that produced ``produced`` facts, ``new`` of them novel."""
        self.iterations += 1
        self.tuples_produced += produced
        self.delta_sizes.append(new)

    def merge(self, other: "ClosureStatistics") -> "ClosureStatistics":
        """Return combined statistics (used when summing per-fragment work)."""
        merged = ClosureStatistics(
            iterations=max(self.iterations, other.iterations),
            tuples_produced=self.tuples_produced + other.tuples_produced,
            delta_sizes=self.delta_sizes + other.delta_sizes,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
        )
        return merged


@dataclass
class ClosureResult:
    """The result of evaluating a transitive-closure query on a graph.

    Attributes:
        values: mapping from (source, target) to the semiring path value; only
            pairs whose value differs from the semiring's ``zero`` appear.
        semiring_name: name of the semiring used.
        statistics: evaluation work counters.
    """

    values: Dict[Pair, object]
    semiring_name: str
    statistics: ClosureStatistics = field(default_factory=ClosureStatistics)

    def value(self, source: Node, target: Node, semiring: Optional[Semiring] = None) -> object:
        """Return the path value for ``(source, target)``.

        When the pair is absent the semiring ``zero`` is returned if a
        semiring is supplied, otherwise ``None``.
        """
        if (source, target) in self.values:
            return self.values[(source, target)]
        return semiring.zero if semiring is not None else None

    def reaches(self, source: Node, target: Node) -> bool:
        """Return ``True`` if a path from ``source`` to ``target`` was derived."""
        return (source, target) in self.values

    def pairs(self) -> Set[Pair]:
        """Return the set of connected pairs."""
        return set(self.values)

    def size(self) -> int:
        """Return the number of connected pairs."""
        return len(self.values)

    def restricted_to_sources(self, sources: Set[Node]) -> "ClosureResult":
        """Return the sub-result whose source endpoint lies in ``sources``."""
        return ClosureResult(
            values={pair: value for pair, value in self.values.items() if pair[0] in sources},
            semiring_name=self.semiring_name,
            statistics=self.statistics,
        )
