"""uint64-packed bit-matrix reachability kernels (optional numpy backend).

The pure-Python bitset BFS absorbs one adjacency row per big-int OR; this
module stores the whole adjacency as an ``(n, ceil(n / 64))`` ``uint64``
matrix so numpy does the same work word-parallel across *many* rows at once:

* single-source frontiers gather the frontier's rows and fold them with one
  vectorised OR-reduce per round,
* the multi-source variant keeps one packed visited row per source and sweeps
  the union frontier once per round, so complementary precomputation expands
  all border sources together instead of one BFS per border node,
* the whole-graph closure runs identity-augmented repeated squaring — paths
  of length up to ``2^r`` covered after ``r`` rounds.

Rows convert losslessly to the int-as-bitset masks of
:mod:`repro.closure.kernels` (little-endian byte order both sides), so every
caller sees bit-identical answers regardless of backend.  numpy itself stays
an *optional* dependency: this module imports lazily and the dispatcher in
:mod:`repro.closure.backends` falls back to the big-int path when it is
absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..graph.compact import CompactGraph

PACKED_STATE_FORMAT = "packed-bit-matrix-v1"


def numpy_loaded() -> bool:
    """Return ``True`` when the numpy import succeeded (no env policy applied)."""
    return _np is not None


def _require_numpy():
    if _np is None:  # pragma: no cover - exercised on the no-numpy CI leg
        raise RuntimeError("the packed bit-matrix backend requires numpy")
    return _np


class PackedBitMatrix:
    """The adjacency of one :class:`CompactGraph` as packed ``uint64`` rows.

    ``rows[i]`` packs the successor bitset of node id ``i``: bit ``j`` lives
    in word ``j >> 6`` at position ``j & 63`` — the little-endian layout of a
    Python int's ``to_bytes``, which is what makes mask interop a straight
    ``tobytes``/``from_bytes`` round-trip.
    """

    __slots__ = ("rows", "node_count", "words")

    def __init__(self, rows, node_count: int) -> None:
        self.rows = rows
        self.node_count = node_count
        self.words = rows.shape[1] if node_count else 0

    @classmethod
    def from_graph(cls, graph: CompactGraph) -> "PackedBitMatrix":
        """Pack the graph's forward CSR into the bit matrix (vectorised)."""
        np = _require_numpy()
        n = graph.node_count()
        words = max(1, (n + 63) >> 6)
        rows = np.zeros((n, words), dtype=np.uint64)
        if n:
            offsets, targets, _ = graph.forward_csr
            if len(targets):
                degrees = np.diff(np.asarray(offsets, dtype=np.int64))
                sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
                target_ids = np.asarray(targets, dtype=np.int64)
                bits = np.uint64(1) << (target_ids & 63).astype(np.uint64)
                np.bitwise_or.at(rows, (sources, target_ids >> 6), bits)
        return cls(rows, n)

    # ------------------------------------------------------------- traversal

    def reachable_row(self, source_id: int, stop_row=None):
        """Return the packed visited row from ``source_id`` (itself included).

        ``stop_row`` mirrors the big-int kernel's ``stop_mask`` keyhole: the
        expansion halts once every target bit is covered.
        """
        np = _require_numpy()
        visited = np.zeros(self.words, dtype=np.uint64)
        visited[source_id >> 6] = np.uint64(1) << np.uint64(source_id & 63)
        frontier_ids: List[int] = [source_id]
        rows = self.rows
        while frontier_ids:
            if stop_row is not None and not bool((stop_row & ~visited).any()):
                break
            reached = np.bitwise_or.reduce(rows[frontier_ids], axis=0)
            fresh = reached & ~visited
            if not fresh.any():
                break
            visited |= fresh
            frontier_ids = _row_ids(fresh)
        return visited

    def multi_source_rows(self, source_ids: Sequence[int]):
        """Return one packed visited row per source, expanded in one sweep.

        Each round takes the union of all per-source frontiers, and every
        union member broadcasts its adjacency row into exactly the sources
        whose frontier contains it — one vectorised OR per active node
        instead of one BFS per source.
        """
        np = _require_numpy()
        count = len(source_ids)
        visited = np.zeros((count, self.words), dtype=np.uint64)
        if count == 0:
            return visited
        ids = np.asarray(source_ids, dtype=np.int64)
        visited[np.arange(count), ids >> 6] = np.uint64(1) << (ids & 63).astype(np.uint64)
        frontier = visited.copy()
        rows = self.rows
        while True:
            union = np.bitwise_or.reduce(frontier, axis=0)
            active = _row_ids(union)
            if not active:
                break
            reached = np.zeros_like(visited)
            for node_id in active:
                holders = (
                    (frontier[:, node_id >> 6] >> np.uint64(node_id & 63)) & np.uint64(1)
                ).astype(bool)
                reached[holders] |= rows[node_id]
            frontier = reached & ~visited
            if not frontier.any():
                break
            visited |= frontier
        return visited

    def closure_rows(self):
        """Return all-pairs packed visited rows via repeated squaring.

        The reflexive diagonal is added first so composing the matrix with
        itself covers paths of every length ``<= 2^r`` after ``r`` rounds;
        the diagonal itself matches visited-set semantics (a source always
        sees itself) without fabricating cycle facts.
        """
        np = _require_numpy()
        n = self.node_count
        reach = self.rows.copy()
        if n == 0:
            return reach
        ids = np.arange(n, dtype=np.int64)
        reach[ids, ids >> 6] |= np.uint64(1) << (ids & 63).astype(np.uint64)
        while True:
            squared = reach.copy()
            for node_id in range(n):
                holders = (
                    (reach[:, node_id >> 6] >> np.uint64(node_id & 63)) & np.uint64(1)
                ).astype(bool)
                squared[holders] |= reach[node_id]
            if np.array_equal(squared, reach):
                return reach
            reach = squared

    # ------------------------------------------------------------ row patching

    def patch_rows(self, row_masks: Dict[int, int], node_count: int) -> bool:
        """Overwrite the packed rows named in ``row_masks`` in place.

        The O(delta) write path calls this with the post-splice successor
        bitset of every touched row.  Returns ``False`` (caller must evict
        and rebuild) when the delta interned new nodes — the matrix's word
        width and row count are frozen at build time.
        """
        if node_count != self.node_count:
            return False
        for node_id, mask in row_masks.items():
            self.rows[node_id] = self.mask_to_row(mask)
        return True

    # ---------------------------------------------------------- mask interop

    def row_to_mask(self, row) -> int:
        """Convert one packed row to the kernels' int-as-bitset form."""
        return int.from_bytes(row.tobytes(), "little")

    def mask_to_row(self, mask: int):
        """Convert an int-as-bitset into a packed row (e.g. a stop mask)."""
        np = _require_numpy()
        data = mask.to_bytes(self.words * 8, "little")
        return np.frombuffer(data, dtype=np.uint64).copy()

    # ----------------------------------------------------------- plain state

    def to_state(self) -> Dict[str, object]:
        """Return the matrix as a plain-data dictionary (snapshot wire format)."""
        return {
            "format": PACKED_STATE_FORMAT,
            "node_count": self.node_count,
            "words": self.words,
            "rows": self.rows.tobytes(),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "PackedBitMatrix":
        """Rebuild a matrix from :meth:`to_state` output.

        Raises:
            ValueError: when the state's format tag is not understood.
        """
        np = _require_numpy()
        if state.get("format") != PACKED_STATE_FORMAT:
            raise ValueError(
                f"packed bit-matrix state format {state.get('format')!r} is not supported"
            )
        node_count = int(state["node_count"])  # type: ignore[arg-type]
        words = int(state["words"])  # type: ignore[arg-type]
        rows = np.frombuffer(state["rows"], dtype=np.uint64).reshape(node_count, words).copy()
        return cls(rows, node_count)

    def __repr__(self) -> str:
        return f"PackedBitMatrix(nodes={self.node_count}, words={self.words})"


def _row_ids(row) -> List[int]:
    """Expand one packed row into the list of set bit positions.

    ``unpackbits`` over the row's little-endian byte view yields bit ``i`` of
    the stream at stream position ``i``, exactly the dense node id.
    """
    np = _require_numpy()
    bits = np.unpackbits(row.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).tolist()
