"""Warshall/Floyd-style closure and per-source search algorithms.

Complements the iterative fixpoints with the two other families of
single-processor algorithms the paper's reference [16] surveys:

* the Warshall dynamic-programming closure (dense, cubic, one pass),
* per-source graph searches (BFS for reachability, Dijkstra for shortest
  paths), which are the algorithms of choice when the query is restricted to
  a small set of start nodes — exactly the situation inside a fragment where
  the search starts from a disconnection set.

Above :data:`COMPACT_NODE_THRESHOLD` nodes these functions transparently
compile the graph to its compact (CSR) form and run the kernels of
:mod:`repro.closure.kernels` — identical values, dramatically cheaper hot
loops.  Tiny inputs keep the original dict-based algorithms (their statistics
are part of the paper-facing contract and the compile cost would dominate);
``use_compact`` overrides the choice either way.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from ..graph import CompactGraph, DiGraph, bfs_levels, dijkstra
from .base import ClosureResult, ClosureStatistics, Pair
from .kernels import compact_reachability_closure, compact_shortest_path_closure
from .semiring import Semiring, reachability_semiring, shortest_path_semiring

Node = Hashable

COMPACT_NODE_THRESHOLD = 64

COMPACT_SEMIRINGS = ("shortest_path", "reachability")


def _auto_compact(graph: DiGraph, use_compact: Optional[bool]) -> bool:
    """Decide whether to dispatch to the compact kernels."""
    if use_compact is not None:
        return use_compact
    return graph.node_count() >= COMPACT_NODE_THRESHOLD


def warshall_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    use_compact: Optional[bool] = None,
) -> ClosureResult:
    """Compute the closure with the Warshall/Floyd triple loop.

    Works for any semiring whose ``plus`` is idempotent (reachability,
    shortest path, widest path).  The statistics report one "iteration" per
    pivot node, with tuples_produced counting the relaxations applied.

    For the two standard semirings, graphs at or above
    :data:`COMPACT_NODE_THRESHOLD` nodes are answered by the compact
    per-source kernels instead of the cubic pivot loop — identical values,
    including the cyclic ``(a, a)`` facts the pivot loop derives (the
    statistics then count per-source search work, not pivots).
    """
    semiring = semiring or shortest_path_semiring()
    if semiring.name in COMPACT_SEMIRINGS and _auto_compact(graph, use_compact):
        from .iterative import seminaive_transitive_closure  # late: it imports us back

        # The seminaive compact evaluation yields exactly the idempotent
        # closure the pivot loop computes, cycle facts included.
        return seminaive_transitive_closure(graph, semiring=semiring, use_compact=True)
    values: Dict[Pair, object] = {}
    for u, v, weight in graph.weighted_edges():
        candidate = semiring.edge_value(weight)
        incumbent = values.get((u, v))
        values[(u, v)] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
    stats = ClosureStatistics()
    nodes = graph.nodes()
    for pivot in nodes:
        produced = 0
        improved = 0
        into_pivot = [(a, values[(a, pivot)]) for a in nodes if (a, pivot) in values]
        from_pivot = [(c, values[(pivot, c)]) for c in nodes if (pivot, c) in values]
        for a, left in into_pivot:
            for c, right in from_pivot:
                candidate = semiring.times(left, right)
                produced += 1
                incumbent = values.get((a, c))
                if incumbent is None:
                    values[(a, c)] = candidate
                    improved += 1
                else:
                    combined = semiring.plus(incumbent, candidate)
                    if combined != incumbent:
                        values[(a, c)] = combined
                        improved += 1
        stats.record_round(produced, improved)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def bfs_closure(
    graph: DiGraph,
    *,
    sources: Optional[Iterable[Node]] = None,
    use_compact: Optional[bool] = None,
) -> ClosureResult:
    """Compute the reachability closure by one BFS per source node.

    When ``sources`` is given, only those rows of the closure are produced —
    the per-fragment searches of the disconnection set approach restrict their
    sources to the incoming disconnection set exactly like this.  At or above
    :data:`COMPACT_NODE_THRESHOLD` nodes the per-source search runs as the
    bitset BFS kernel over the compact graph.
    """
    semiring = reachability_semiring()
    if _auto_compact(graph, use_compact):
        return compact_reachability_closure(CompactGraph.from_digraph(graph), sources=sources)
    source_list = list(sources) if sources is not None else graph.nodes()
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source in source_list:
        if not graph.has_node(source):
            continue
        levels = bfs_levels(graph, source)
        produced = 0
        for target, distance in levels.items():
            if target == source and distance == 0:
                continue
            values[(source, target)] = True
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def dijkstra_closure(
    graph: DiGraph,
    *,
    sources: Optional[Iterable[Node]] = None,
    targets: Optional[Set[Node]] = None,
    use_compact: Optional[bool] = None,
) -> ClosureResult:
    """Compute the shortest-path closure by one Dijkstra run per source.

    Args:
        graph: the graph.
        sources: restrict the closure rows to these start nodes (defaults to
            all nodes).
        targets: when given, each per-source run stops once all targets are
            settled, and only target columns are retained — this is the
            "border-to-border" computation used for complementary
            information.
        use_compact: force the array-heap kernel over the compact graph on
            or off; by default graphs at or above
            :data:`COMPACT_NODE_THRESHOLD` nodes use it.
    """
    semiring = shortest_path_semiring()
    if _auto_compact(graph, use_compact):
        return compact_shortest_path_closure(
            CompactGraph.from_digraph(graph), sources=sources, targets=targets
        )
    source_list = list(sources) if sources is not None else graph.nodes()
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source in source_list:
        if not graph.has_node(source):
            continue
        distances, _ = dijkstra(graph, source, targets=targets)
        produced = 0
        for target, distance in distances.items():
            if target == source:
                continue
            if targets is not None and target not in targets:
                continue
            values[(source, target)] = distance
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)
