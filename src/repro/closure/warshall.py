"""Warshall/Floyd-style closure and per-source search algorithms.

Complements the iterative fixpoints with the two other families of
single-processor algorithms the paper's reference [16] surveys:

* the Warshall dynamic-programming closure (dense, cubic, one pass),
* per-source graph searches (BFS for reachability, Dijkstra for shortest
  paths), which are the algorithms of choice when the query is restricted to
  a small set of start nodes — exactly the situation inside a fragment where
  the search starts from a disconnection set.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from ..graph import DiGraph, bfs_levels, dijkstra
from .base import ClosureResult, ClosureStatistics, Pair
from .semiring import Semiring, reachability_semiring, shortest_path_semiring

Node = Hashable


def warshall_closure(graph: DiGraph, *, semiring: Optional[Semiring] = None) -> ClosureResult:
    """Compute the closure with the Warshall/Floyd triple loop.

    Works for any semiring whose ``plus`` is idempotent (reachability,
    shortest path, widest path).  The statistics report one "iteration" per
    pivot node, with tuples_produced counting the relaxations applied.
    """
    semiring = semiring or shortest_path_semiring()
    values: Dict[Pair, object] = {}
    for u, v, weight in graph.weighted_edges():
        candidate = semiring.edge_value(weight)
        incumbent = values.get((u, v))
        values[(u, v)] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
    stats = ClosureStatistics()
    nodes = graph.nodes()
    for pivot in nodes:
        produced = 0
        improved = 0
        into_pivot = [(a, values[(a, pivot)]) for a in nodes if (a, pivot) in values]
        from_pivot = [(c, values[(pivot, c)]) for c in nodes if (pivot, c) in values]
        for a, left in into_pivot:
            for c, right in from_pivot:
                candidate = semiring.times(left, right)
                produced += 1
                incumbent = values.get((a, c))
                if incumbent is None:
                    values[(a, c)] = candidate
                    improved += 1
                else:
                    combined = semiring.plus(incumbent, candidate)
                    if combined != incumbent:
                        values[(a, c)] = combined
                        improved += 1
        stats.record_round(produced, improved)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def bfs_closure(graph: DiGraph, *, sources: Optional[Iterable[Node]] = None) -> ClosureResult:
    """Compute the reachability closure by one BFS per source node.

    When ``sources`` is given, only those rows of the closure are produced —
    the per-fragment searches of the disconnection set approach restrict their
    sources to the incoming disconnection set exactly like this.
    """
    semiring = reachability_semiring()
    source_list = list(sources) if sources is not None else graph.nodes()
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source in source_list:
        if not graph.has_node(source):
            continue
        levels = bfs_levels(graph, source)
        produced = 0
        for target, distance in levels.items():
            if target == source and distance == 0:
                continue
            values[(source, target)] = True
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def dijkstra_closure(
    graph: DiGraph,
    *,
    sources: Optional[Iterable[Node]] = None,
    targets: Optional[Set[Node]] = None,
) -> ClosureResult:
    """Compute the shortest-path closure by one Dijkstra run per source.

    Args:
        graph: the graph.
        sources: restrict the closure rows to these start nodes (defaults to
            all nodes).
        targets: when given, each per-source run stops once all targets are
            settled, and only target columns are retained — this is the
            "border-to-border" computation used for complementary
            information.
    """
    semiring = shortest_path_semiring()
    source_list = list(sources) if sources is not None else graph.nodes()
    values: Dict[Pair, object] = {}
    stats = ClosureStatistics()
    for source in source_list:
        if not graph.has_node(source):
            continue
        distances, _ = dijkstra(graph, source, targets=targets)
        produced = 0
        for target, distance in distances.items():
            if target == source:
                continue
            if targets is not None and target not in targets:
                continue
            values[(source, target)] = distance
            produced += 1
        stats.record_round(produced, produced)
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)
