"""Transitive closure algorithms over graphs, generalised by path-problem semirings.

These are the single-processor algorithms a site runs on its fragment, and
the centralised baselines the parallel disconnection set strategy is compared
against.
"""

from .backends import (
    BACKEND_BIGINT,
    BACKEND_CHAIN,
    BACKEND_NUMPY,
    KERNEL_BACKENDS,
    KERNEL_SELECTIONS_COUNTER,
    chain_index,
    graph_shape,
    merge_selection_metrics,
    numpy_available,
    packed_matrix,
    record_selection,
    select_kernel,
    selection_counts,
)
from .base import ClosureResult, ClosureStatistics
from .chain import ChainIndex, strongly_connected_components
from .kernels import (
    array_dijkstra,
    bitset_levels,
    bitset_reachable,
    compact_closure,
    compact_reachability_closure,
    compact_shortest_path_closure,
    ids_to_mask,
    mask_to_ids,
    reachability_rows,
    reconstruct_id_path,
    seminaive_closure_ids,
)
from .packed import PackedBitMatrix
from .iterative import (
    naive_transitive_closure,
    seminaive_transitive_closure,
    smart_transitive_closure,
)
from .path_problems import (
    bill_of_materials,
    connection_matrix,
    diameter_in_iterations,
    is_connected,
    reachability_closure,
    shortest_path_closure,
    shortest_path_cost,
    shortest_path_route,
)
from .semiring import (
    Semiring,
    path_count_semiring,
    reachability_semiring,
    shortest_path_semiring,
    widest_path_semiring,
)
from .warshall import bfs_closure, dijkstra_closure, warshall_closure

__all__ = [
    "BACKEND_BIGINT",
    "BACKEND_CHAIN",
    "BACKEND_NUMPY",
    "ChainIndex",
    "ClosureResult",
    "ClosureStatistics",
    "KERNEL_BACKENDS",
    "KERNEL_SELECTIONS_COUNTER",
    "PackedBitMatrix",
    "Semiring",
    "array_dijkstra",
    "chain_index",
    "graph_shape",
    "merge_selection_metrics",
    "numpy_available",
    "packed_matrix",
    "reachability_rows",
    "record_selection",
    "select_kernel",
    "selection_counts",
    "strongly_connected_components",
    "bfs_closure",
    "bill_of_materials",
    "bitset_levels",
    "bitset_reachable",
    "compact_closure",
    "compact_reachability_closure",
    "compact_shortest_path_closure",
    "connection_matrix",
    "diameter_in_iterations",
    "dijkstra_closure",
    "ids_to_mask",
    "is_connected",
    "mask_to_ids",
    "naive_transitive_closure",
    "reconstruct_id_path",
    "seminaive_closure_ids",
    "path_count_semiring",
    "reachability_closure",
    "reachability_semiring",
    "seminaive_transitive_closure",
    "shortest_path_closure",
    "shortest_path_cost",
    "shortest_path_route",
    "shortest_path_semiring",
    "smart_transitive_closure",
    "warshall_closure",
    "widest_path_semiring",
]
