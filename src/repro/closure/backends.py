"""Pluggable reachability kernel backends and the shape-based dispatcher.

Three interchangeable backends answer the same question — "which ids does
this source reach?" — with bit-identical int-as-bitset rows:

* ``bigint``: the original pure-Python bitset BFS of
  :mod:`repro.closure.kernels` (always available, the fallback),
* ``numpy``: the packed ``uint64`` bit matrix of
  :mod:`repro.closure.packed` — word-parallel OR across whole row blocks,
  multi-source sweeps, squaring for whole-graph closures (optional, gated on
  the ``numpy`` import and :data:`ENV_DISABLE_NUMPY`),
* ``chain``: the SCC condensation + chain decomposition index of
  :mod:`repro.closure.chain` — O(k)-word labels, chosen when the
  condensation is small relative to the graph.

:func:`select_kernel` picks per call from the graph's *shape* (node count,
density, condensation ratio) and the query's fan-out; callers never change.
Each decision increments the ``repro_kernel_selections_total`` counter on a
module-level registry that services and resident workers fold into their own
metrics (:func:`merge_selection_metrics`), so traces and scrapes show which
kernel served each span.

Derived structures (packed matrix, chain index, condensation stats) cache on
the :class:`~repro.graph.compact.CompactGraph` itself and persist through its
plain ``state()`` — a warm service or resident worker reloads them instead of
re-deriving.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from ..graph.compact import CompactGraph
from ..observability.metrics import MetricsRegistry
from .chain import ChainIndex, strongly_connected_components
from .packed import PackedBitMatrix, numpy_loaded

BACKEND_BIGINT = "bigint"
BACKEND_NUMPY = "numpy"
BACKEND_CHAIN = "chain"

KERNEL_BACKENDS = (BACKEND_BIGINT, BACKEND_NUMPY, BACKEND_CHAIN)

ENV_BACKEND_OVERRIDE = "REPRO_KERNEL_BACKEND"
ENV_DISABLE_NUMPY = "REPRO_DISABLE_NUMPY"

# Derived-cache keys on CompactGraph (also the snapshot wire keys).
PACKED_KEY = "packed_matrix"
CHAIN_KEY = "chain_index"
SHAPE_KEY = "shape"

SHAPE_STATE_FORMAT = "graph-shape-v1"

# Selection thresholds.  Below SMALL_GRAPH_NODES a visited set is one or two
# machine words and the big-int kernel is unbeatable; the chain index wins
# once the condensation collapses at least half the graph; the packed matrix
# wins on wide fan-out or large node counts where Python's per-bit frontier
# scan dominates.
SMALL_GRAPH_NODES = 48
CHAIN_MAX_CONDENSATION_RATIO = 0.5
NUMPY_MIN_NODES = 192
NUMPY_MIN_FANOUT = 4

KERNEL_SELECTIONS_COUNTER = "repro_kernel_selections_total"

_selection_registry = MetricsRegistry()
_selections = _selection_registry.counter(
    KERNEL_SELECTIONS_COUNTER,
    "Closure kernel backend selections by dispatch context.",
    labelnames=("backend", "context"),
)

# The backend currently executing a kernel, readable from other threads —
# the sampling profiler's tag source.  A one-element list, not a lock: the
# kernel thread writes around each dispatch, the profiler thread reads, and
# a torn read costs at most one mis-tagged sample.
_active_backend: list = [None]


def set_active_backend(backend: Optional[str]) -> None:
    """Mark ``backend`` as the one executing a kernel (``None`` to clear)."""
    _active_backend[0] = backend


def active_backend() -> Optional[str]:
    """The backend executing a kernel right now, or ``None``."""
    return _active_backend[0]


# ------------------------------------------------------------- availability


def numpy_available() -> bool:
    """Return ``True`` when the numpy backend may be used.

    Requires a successful ``numpy`` import *and* the
    :data:`ENV_DISABLE_NUMPY` escape hatch to be unset — the latter is how
    the CI matrix proves the fallback path on machines that do have numpy.
    """
    if os.environ.get(ENV_DISABLE_NUMPY, "") not in ("", "0"):
        return False
    return numpy_loaded()


def backend_override() -> Optional[str]:
    """Return the process-wide backend pin from :data:`ENV_BACKEND_OVERRIDE`."""
    name = os.environ.get(ENV_BACKEND_OVERRIDE, "").strip().lower()
    return name if name in KERNEL_BACKENDS else None


# ------------------------------------------------------- derived structures


def graph_shape(graph: CompactGraph) -> Dict[str, object]:
    """Return (and cache) the shape facts the dispatcher keys on.

    The condensation size comes from one Tarjan pass, run at most once per
    graph lifetime and persisted with the graph's state, so dispatch cost
    amortises to a dict lookup.
    """
    shape = graph.derived_get(SHAPE_KEY)
    if shape is not None:
        return shape
    state = graph.derived_state(SHAPE_KEY)
    if isinstance(state, dict) and state.get("format") == SHAPE_STATE_FORMAT:
        graph.derived_set(SHAPE_KEY, dict(state))
        return graph.derived_get(SHAPE_KEY)
    if graph.has_overlay():
        graph.compact_now(reason="shape_probe")
    n = graph.node_count()
    m = graph.edge_count()
    _, comp_count = strongly_connected_components(graph)
    shape = {
        "format": SHAPE_STATE_FORMAT,
        "node_count": n,
        "edge_count": m,
        "density": (m / (n * n)) if n else 0.0,
        "scc_count": comp_count,
        "condensation_ratio": (comp_count / n) if n else 1.0,
    }
    graph.derived_set(SHAPE_KEY, shape)
    return shape


def packed_matrix(graph: CompactGraph) -> PackedBitMatrix:
    """Return (and cache) the graph's packed bit matrix, reloading persisted state."""
    matrix = graph.derived_get(PACKED_KEY)
    if matrix is not None:
        return matrix
    state = graph.derived_state(PACKED_KEY)
    if state is not None:
        try:
            matrix = PackedBitMatrix.from_state(state)
        except (ValueError, RuntimeError):
            matrix = None  # stale format or numpy missing: rebuild below
    if matrix is None:
        if graph.has_overlay():
            # Building the packed matrix scans raw CSR; fold the overlay
            # first so the build sees every spliced row (a *cached* matrix
            # is row-patched by apply_delta and never forces this).
            graph.compact_now(reason="packed_matrix")
        matrix = PackedBitMatrix.from_graph(graph)
    graph.derived_set(PACKED_KEY, matrix)
    return matrix


def chain_index(graph: CompactGraph) -> ChainIndex:
    """Return (and cache) the graph's chain index, reloading persisted state."""
    index = graph.derived_get(CHAIN_KEY)
    if index is not None:
        return index
    state = graph.derived_state(CHAIN_KEY)
    if state is not None:
        try:
            index = ChainIndex.from_state(state)
        except ValueError:
            index = None
    if index is None:
        if graph.has_overlay():
            graph.compact_now(reason="chain_index")
        index = ChainIndex.from_graph(graph)
    graph.derived_set(CHAIN_KEY, index)
    return index


# ------------------------------------------------------------- the dispatch


def select_kernel(
    graph: CompactGraph,
    *,
    sources: int = 1,
    whole_graph: bool = False,
    override: Optional[str] = None,
) -> str:
    """Choose the reachability backend for one kernel invocation.

    Args:
        graph: the compact graph the kernel will run on.
        sources: the query fan-out (how many rows will be requested).
        whole_graph: ``True`` for an all-pairs closure, where per-row set-up
            cost amortises completely.
        override: pin a backend explicitly (callers' ``backend=`` knobs);
            falls back to :data:`ENV_BACKEND_OVERRIDE`, then the heuristic.
            A pinned ``numpy`` degrades to ``bigint`` when numpy is absent,
            so pins are safe to persist in configs.

    Returns:
        One of :data:`KERNEL_BACKENDS`.
    """
    pinned = override if override in KERNEL_BACKENDS else backend_override()
    if pinned is not None:
        if pinned == BACKEND_NUMPY and not numpy_available():
            return BACKEND_BIGINT
        return pinned
    if graph.has_overlay():
        # The big-int kernel reads straight through overlay-maintained
        # masks; choosing it keeps a freshly-updated graph answering at
        # full speed instead of paying a compaction + index rebuild on the
        # first query after a write burst.
        return BACKEND_BIGINT
    n = graph.node_count()
    if n < SMALL_GRAPH_NODES:
        return BACKEND_BIGINT
    shape = graph_shape(graph)
    if shape["condensation_ratio"] <= CHAIN_MAX_CONDENSATION_RATIO:
        return BACKEND_CHAIN
    if numpy_available() and (
        whole_graph or n >= NUMPY_MIN_NODES or sources >= NUMPY_MIN_FANOUT
    ):
        return BACKEND_NUMPY
    return BACKEND_BIGINT


def record_selection(backend: str, context: str) -> None:
    """Count one dispatch decision (folded into service/worker registries)."""
    _selections.inc(backend=backend, context=context)


def selection_counts() -> Dict[Tuple[str, str], int]:
    """Return the current ``(backend, context) -> count`` series (tests, benchmarks)."""
    return {key: int(value) for key, value in _selections.series().items()}


def merge_selection_metrics(registry: MetricsRegistry) -> None:
    """Drain the module-level selection counters into ``registry``.

    Drain-and-merge keeps the delta semantics of the worker metric pipeline:
    a resident worker folds before shipping its own drained registry, the
    coordinator folds before serving a scrape, and nothing double-counts.
    """
    payload = _selection_registry.drain()
    if payload:
        registry.merge_dict(payload)
