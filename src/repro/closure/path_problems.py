"""High-level path-problem entry points.

These wrap the closure algorithms behind the questions the paper's
introduction motivates: "Is A connected to B?", "What is the cost of the
shortest path between A and B?" and bill-of-material aggregations.  They are
the *centralised* answers; :mod:`repro.disconnection` answers the same
questions through the fragmented, parallel strategy, and the integration tests
check both agree.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..exceptions import DisconnectedError
from ..graph import DiGraph, shortest_path as graph_shortest_path
from .base import ClosureResult
from .iterative import seminaive_transitive_closure
from .semiring import path_count_semiring, reachability_semiring, shortest_path_semiring
from .warshall import bfs_closure, dijkstra_closure

Node = Hashable


def is_connected(graph: DiGraph, source: Node, target: Node) -> bool:
    """Answer "is ``source`` connected to ``target``?" on the whole graph."""
    if not graph.has_node(source) or not graph.has_node(target):
        return False
    if source == target:
        return True
    result = bfs_closure(graph, sources=[source])
    return result.reaches(source, target)


def shortest_path_cost(graph: DiGraph, source: Node, target: Node) -> float:
    """Return the cost of the cheapest path from ``source`` to ``target``.

    Raises:
        DisconnectedError: if no path exists.
    """
    result = dijkstra_closure(graph, sources=[source], targets={target})
    value = result.value(source, target)
    if value is None:
        if source == target and graph.has_node(source):
            return 0.0
        raise DisconnectedError(f"{target!r} is not reachable from {source!r}")
    return float(value)  # type: ignore[arg-type]


def shortest_path_route(graph: DiGraph, source: Node, target: Node) -> Tuple[float, List[Node]]:
    """Return ``(cost, node_sequence)`` of a cheapest path."""
    return graph_shortest_path(graph, source, target)


def reachability_closure(graph: DiGraph) -> ClosureResult:
    """Return the full reachability closure of ``graph``."""
    return seminaive_transitive_closure(graph, semiring=reachability_semiring())


def shortest_path_closure(graph: DiGraph) -> ClosureResult:
    """Return the full all-pairs shortest-path closure of ``graph``."""
    return dijkstra_closure(graph)


def bill_of_materials(graph: DiGraph, *, max_depth: int = 64) -> ClosureResult:
    """Count, for every (assembly, part) pair, the number of distinct usage paths.

    The graph must be acyclic (a part hierarchy); ``max_depth`` bounds the
    iteration as a safety net because the counting semiring is not
    idempotent.
    """
    return seminaive_transitive_closure(
        graph, semiring=path_count_semiring(), max_iterations=max_depth
    )


def connection_matrix(graph: DiGraph) -> Dict[Node, Dict[Node, bool]]:
    """Return a nested-dict reachability matrix (convenience for reporting)."""
    closure = reachability_closure(graph)
    matrix: Dict[Node, Dict[Node, bool]] = {node: {} for node in graph.nodes()}
    for (source, target) in closure.pairs():
        matrix[source][target] = True
    return matrix


def diameter_in_iterations(graph: DiGraph, *, use_compact: Optional[bool] = None) -> int:
    """Return the number of semi-naive rounds needed to close ``graph``.

    This is the experimentally observed counterpart of the paper's claim that
    "the number of iterations required before reaching a fixpoint is given by
    the maximum diameter of the graph".

    The round count is a pure function of the graph — the longest *shortest*
    derivation over all closure facts: hop distance for ``(u, v)`` pairs,
    shortest cycle length for the ``(u, u)`` facts, and at least one round
    whenever any edge exists (the first round always runs before the delta
    empties).  The compact path therefore computes it from per-source
    bitset-BFS levels instead of actually iterating the dict fixpoint —
    identical numbers, kernel speed; ``use_compact=False`` forces the
    literal measurement (and stays the cross-check in the tests).
    """
    from ..graph import CompactGraph
    from .kernels import bitset_levels
    from .warshall import _auto_compact

    if not _auto_compact(graph, use_compact):
        result = seminaive_transitive_closure(
            graph, semiring=reachability_semiring(), use_compact=False
        )
        return result.statistics.iterations
    compact = CompactGraph.from_digraph(graph)
    if compact.edge_count() == 0:
        return 0
    longest = 1
    for source_id in range(compact.node_count()):
        levels = bitset_levels(compact, source_id)
        for depth in levels.values():
            if depth > longest:
                longest = depth
        shortest_cycle = None
        for predecessor_id, _ in compact.predecessor_ids(source_id):
            depth = levels.get(predecessor_id)
            if depth is not None and (shortest_cycle is None or depth < shortest_cycle):
                shortest_cycle = depth
        if shortest_cycle is not None and shortest_cycle + 1 > longest:
            longest = shortest_cycle + 1
    return longest
