"""Iterative transitive-closure algorithms: naive, semi-naive and smart.

These are the graph-level counterparts of the relational fixpoints in
:mod:`repro.relational.fixpoint`, generalised over a path-problem semiring.
They are used both as the *local* algorithm each processor runs on its
fragment ("for evaluating the recursive subquery on a fragment any suitable
single-processor algorithm may be chosen", Sec. 2.1) and as the centralised
baselines the parallel strategy is compared against.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from ..graph import DiGraph
from .base import ClosureResult, ClosureStatistics, Pair
from .semiring import Semiring, shortest_path_semiring

Node = Hashable

DEFAULT_MAX_ITERATIONS = 10_000


def _edge_values(graph: DiGraph, semiring: Semiring, sources: Optional[Set[Node]]) -> Dict[Pair, object]:
    """Return the single-edge path values, optionally restricted to given sources."""
    values: Dict[Pair, object] = {}
    for u, v, weight in graph.weighted_edges():
        if sources is not None and u not in sources:
            continue
        candidate = semiring.edge_value(weight)
        incumbent = values.get((u, v))
        values[(u, v)] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
    return values


def _absorb(
    values: Dict[Pair, object],
    candidates: Dict[Pair, object],
    semiring: Semiring,
) -> Dict[Pair, object]:
    """Fold candidate facts into ``values``; return the facts that improved."""
    improved: Dict[Pair, object] = {}
    for pair, candidate in candidates.items():
        incumbent = values.get(pair)
        if incumbent is None:
            values[pair] = candidate
            improved[pair] = candidate
        else:
            combined = semiring.plus(incumbent, candidate)
            if combined != incumbent:
                values[pair] = combined
                improved[pair] = combined
    return improved


def naive_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    sources: Optional[Iterable[Node]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ClosureResult:
    """Compute the closure by naive iteration (whole closure re-joined each round).

    Args:
        graph: the graph to close.
        semiring: the path problem (defaults to shortest paths).
        sources: optional restriction of the closure to paths starting at
            these nodes — the "magic cone" selection induced by a
            disconnection set.
        max_iterations: safety bound for non-idempotent semirings on cyclic
            graphs.
    """
    semiring = semiring or shortest_path_semiring()
    source_set = set(sources) if sources is not None else None
    values = _edge_values(graph, semiring, source_set)
    base = _edge_values(graph, semiring, None)
    stats = ClosureStatistics()
    while stats.iterations < max_iterations:
        candidates: Dict[Pair, object] = {}
        for (a, b), left in values.items():
            for (b2, c), right in base.items():
                if b2 != b:
                    continue
                candidate = semiring.times(left, right)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        if not improved:
            break
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def seminaive_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    sources: Optional[Iterable[Node]] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ClosureResult:
    """Compute the closure by semi-naive (differential) iteration.

    Only facts that improved in the previous round are extended in the next
    one.  With the default shortest-path semiring this is Bellman-Ford-style
    label correcting expressed as a datalog-ish fixpoint; the number of rounds
    is bounded by the graph diameter, the quantity the paper's fragmentation
    argument revolves around.
    """
    semiring = semiring or shortest_path_semiring()
    source_set = set(sources) if sources is not None else None
    values = _edge_values(graph, semiring, source_set)
    delta: Dict[Pair, object] = dict(values)
    # Index the base edges by their source node for the delta join.
    base_by_source: Dict[Node, list] = {}
    for u, v, weight in graph.weighted_edges():
        base_by_source.setdefault(u, []).append((v, semiring.edge_value(weight)))
    stats = ClosureStatistics()
    while delta and stats.iterations < max_iterations:
        candidates: Dict[Pair, object] = {}
        for (a, b), left in delta.items():
            for c, edge_value in base_by_source.get(b, ()):
                candidate = semiring.times(left, edge_value)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        delta = improved
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)


def smart_transitive_closure(
    graph: DiGraph,
    *,
    semiring: Optional[Semiring] = None,
    max_iterations: int = 64,
) -> ClosureResult:
    """Compute the closure by repeated squaring (logarithmic number of rounds).

    Each round composes the current closure with itself, so paths of length up
    to ``2^k`` are covered after ``k`` rounds.  Source restriction is not
    supported because squaring needs the full intermediate closure.
    """
    semiring = semiring or shortest_path_semiring()
    values = _edge_values(graph, semiring, None)
    stats = ClosureStatistics()
    while stats.iterations < max_iterations:
        by_source: Dict[Node, list] = {}
        for (a, b), value in values.items():
            by_source.setdefault(a, []).append((b, value))
        candidates: Dict[Pair, object] = {}
        for (a, b), left in values.items():
            for c, right in by_source.get(b, ()):
                candidate = semiring.times(left, right)
                pair = (a, c)
                incumbent = candidates.get(pair)
                candidates[pair] = candidate if incumbent is None else semiring.plus(incumbent, candidate)
        improved = _absorb(values, candidates, semiring)
        stats.record_round(len(candidates), len(improved))
        if not improved:
            break
    return ClosureResult(values=values, semiring_name=semiring.name, statistics=stats)
